"""Command-line interface for the Thetis reproduction.

The subcommands cover the end-to-end workflow on files:

* ``generate`` — build a synthetic benchmark corpus (KG + lake + links
  + queries) and write it to a directory;
* ``link``     — entity-link a data lake against a knowledge graph;
* ``stats``    — print Table-2 style corpus statistics;
* ``search``   — run semantic table search for an entity-tuple query;
* ``serve``    — run the online HTTP/JSON query service;
* ``index``    — build/load/inspect a persistent segmented corpus index
  (``search --index DIR`` and ``serve --index DIR`` then cold-start by
  memmapping it instead of compiling);
* ``cluster``  — sharded scatter-gather serving: run the coordinator
  front door (``cluster serve``), shard-scoring workers
  (``cluster worker``), or inspect fleet health (``cluster status``);
* ``lint``     — run the built-in static analyzer over the codebase.

Example session::

    thetis generate --out corpus/ --tables 500
    thetis stats --lake corpus/lake.json --mapping corpus/mapping.json
    thetis search --lake corpus/lake.json --graph corpus/graph.json \\
        --mapping corpus/mapping.json --tuple kg:baseball/player/0 -k 5
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.benchgen import PROFILES, build_benchmark
from repro.core.cache import DEFAULT_SIMILARITY_CACHE_SIZE
from repro.core.kernel import ENGINE_KINDS
from repro.core.query import Query
from repro.datalake.io import load_lake, save_lake
from repro.datalake.stats import corpus_statistics
from repro.kg.io import load_graph, save_graph
from repro.linking.io import load_mapping, save_mapping
from repro.linking.linker import LabelLinker
from repro.system import Thetis


def _cmd_generate(args: argparse.Namespace) -> int:
    profile = PROFILES[args.profile]
    bench = build_benchmark(
        profile,
        num_tables=args.tables,
        num_query_pairs=args.queries,
        seed=args.seed,
    )
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    save_graph(bench.graph, out / "graph.json")
    save_lake(bench.lake, out / "lake.json")
    save_mapping(bench.mapping, out / "mapping.json")
    from repro.benchgen.io import save_queries

    save_queries(bench.queries, out / "queries.json")
    stats = bench.statistics()
    print(stats.format_row(profile.name))
    print(f"wrote graph/lake/mapping/queries to {out}/")
    return 0


def _cmd_link(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    lake = load_lake(args.lake)
    if args.contextual:
        from repro.linking import ContextualLinker

        mapping = ContextualLinker(graph).link_lake(lake)
    else:
        linker = LabelLinker(graph, fuzzy=not args.exact_only)
        mapping = linker.link_lake(lake)
    save_mapping(mapping, args.out)
    print(f"linked {len(mapping)} cells across {len(lake)} tables "
          f"-> {args.out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    lake = load_lake(args.lake)
    mapping = load_mapping(args.mapping) if args.mapping else None
    stats = corpus_statistics(lake, mapping)
    print(stats.format_row(Path(args.lake).stem))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    if args.graph:
        from repro.kg.analytics import profile_graph, top_types

        graph = load_graph(args.graph)
        print(profile_graph(graph).format_report())
        print("most frequent types:")
        for name, count in top_types(graph, k=args.top):
            print(f"  {name:<24} {count:,}")
    if args.lake:
        from repro.datalake.profiling import profile_table

        lake = load_lake(args.lake)
        mapping = load_mapping(args.mapping) if args.mapping else None
        table_ids = (
            args.table if args.table else lake.table_ids()[: args.top]
        )
        for table_id in table_ids:
            print(profile_table(lake.get(table_id), mapping).format_report())
    if not args.graph and not args.lake:
        print("nothing to profile: pass --graph and/or --lake",
              file=sys.stderr)
        return 2
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.benchgen.io import load_queries
    from repro.lsh import LSHConfig, LSHTuner, TypeSignatureScheme, \
        frequent_types

    graph = load_graph(args.graph)
    lake = load_lake(args.lake)
    mapping = load_mapping(args.mapping)
    thetis = Thetis(lake, graph, mapping)
    query_set = load_queries(args.queries)
    sample = list(query_set.all_queries().values())[: args.sample]
    excluded = frequent_types(mapping, graph, lake.table_ids())
    tuner = LSHTuner(
        thetis.engine("types"),
        scheme_factory=lambda n: TypeSignatureScheme(
            graph, n, excluded_types=excluded
        ),
        k=args.k,
    )
    specs = args.config or ["32,8", "128,8", "30,10"]
    configs = tuple(
        LSHConfig(*map(int, spec.split(","))) for spec in specs
    )
    for outcome in tuner.sweep(sample, configs, votes_options=(1, 3)):
        print(outcome.format_row())
    best = tuner.recommend(sample, configs, votes_options=(1, 3),
                           min_retention=args.min_retention)
    print(f"recommended: {best.config} votes={best.votes}")
    return 0


def _parse_tuples(raw_tuples: Sequence[str]) -> Query:
    tuples: List[List[str]] = []
    for raw in raw_tuples:
        entities = [part.strip() for part in raw.split(",") if part.strip()]
        if entities:
            tuples.append(entities)
    return Query(tuples)


def _cmd_search(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    lake = load_lake(args.lake)
    mapping = load_mapping(args.mapping)
    with Thetis(
        lake, graph, mapping,
        workers=args.workers,
        search_backend=args.backend,
        cache_size=args.cache_size,
        engine_kind=args.engine,
        index_dir=args.index,
    ) as thetis:
        if args.method == "embeddings":
            thetis.train_embeddings(
                dimensions=args.dimensions, seed=args.seed
            )
        query = _parse_tuples(args.tuple)
        results = thetis.search(
            query, k=args.k, method=args.method, use_lsh=args.lsh,
            votes=args.votes, mode=args.mode, task=args.task,
        )
        for rank, scored in enumerate(results, start=1):
            caption = lake.get(scored.table_id).metadata.get("caption", "")
            print(f"{rank:>3}. {scored.table_id:<24} "
                  f"{scored.score:.4f}  {caption}")
        if args.explain and len(results) > 0:
            best = results.table_ids(1)[0]
            print()
            print(thetis.explain(query, best,
                                 method=args.method).render(graph))
        if args.cache_stats:
            from repro.core.cache import format_cache_stats

            print()
            print("cache statistics:")
            print(format_cache_stats(thetis.cache_stats(args.method)))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.serve import ServeConfig, ThetisServer

    graph = load_graph(args.graph)
    lake = load_lake(args.lake)
    mapping = load_mapping(args.mapping)
    thetis = Thetis(
        lake, graph, mapping,
        workers=args.workers,
        search_backend=args.backend,
        cache_size=args.cache_size,
        engine_kind=args.engine,
        index_dir=args.index,
    )
    if args.method == "embeddings":
        thetis.train_embeddings(dimensions=args.dimensions, seed=args.seed)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        default_method=args.method,
        max_batch_size=args.max_batch,
        flush_interval=args.flush_interval,
        max_queue_depth=args.queue_depth,
        request_timeout=args.timeout,
        batch_workers=args.batch_workers,
        warm_on_start=not args.no_warm,
        prefilter_guardrail_every=args.guardrail_every,
    )

    async def run() -> None:
        server = ThetisServer(thetis, config)
        await server.start()
        print(f"serving {len(lake)} tables on "
              f"http://{config.host}:{server.port} "
              f"(method={args.method}, batch<= {config.max_batch_size}, "
              f"queue<= {config.max_queue_depth})")
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover (non-POSIX)
                pass
        try:
            await stop.wait()
        finally:
            print("draining and shutting down ...", file=sys.stderr)
            await server.shutdown()

    asyncio.run(run())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.baselines import BM25TableSearch, text_query_from_labels
    from repro.benchgen.io import load_queries
    from repro.eval import (
        ExperimentRunner,
        build_ground_truth,
        compare_systems,
        write_markdown_report,
    )

    graph = load_graph(args.graph)
    lake = load_lake(args.lake)
    mapping = load_mapping(args.mapping)
    query_set = load_queries(args.queries)
    thetis = Thetis(
        lake, graph, mapping,
        workers=args.workers,
        cache_size=args.cache_size,
        engine_kind=args.engine,
    )
    bm25 = BM25TableSearch(lake)
    queries = query_set.all_queries()
    truths = {
        qid: build_ground_truth(
            lake, mapping, query,
            query_category=query_set.categories.get(qid),
            query_domain=query_set.domains.get(qid),
        )
        for qid, query in queries.items()
    }
    runner = ExperimentRunner(queries, truths)
    reports = runner.run_all(
        {
            "STST": lambda q, k: thetis.search(q, k=k),
            "STST+LSH": lambda q, k: thetis.search(q, k=k, use_lsh=True,
                                                   votes=3),
            "BM25": lambda q, k: bm25.search(
                text_query_from_labels(q, graph), k=k
            ),
        },
        k=args.k,
    )
    comparisons = {
        "STST vs BM25 (NDCG)": compare_systems(
            [o.ndcg for o in reports["STST"].outcomes],
            [o.ndcg for o in reports["BM25"].outcomes],
        ),
        "STST+LSH vs STST (NDCG)": compare_systems(
            [o.ndcg for o in reports["STST+LSH"].outcomes],
            [o.ndcg for o in reports["STST"].outcomes],
        ),
    }
    for report in reports.values():
        print(report.format_row())
    path = write_markdown_report(
        args.out,
        f"Semantic table search benchmark (k={args.k})",
        reports,
        comparisons,
        notes=[
            f"corpus: {args.lake} ({len(lake)} tables)",
            f"queries: {args.queries} ({len(queries)})",
        ],
    )
    print(f"report written to {path}")
    thetis.close()
    return 0


def _run_node(start_banner: str, server: object) -> int:
    """Run an asyncio cluster node until SIGINT/SIGTERM (serve idiom)."""
    import asyncio
    import signal

    async def run() -> None:
        await server.start()  # type: ignore[attr-defined]
        print(start_banner.format(server=server))
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover (non-POSIX)
                pass
        try:
            await stop.wait()
        finally:
            print("shutting down ...", file=sys.stderr)
            await server.shutdown()  # type: ignore[attr-defined]

    asyncio.run(run())
    return 0


def _cmd_cluster_serve(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterConfig, ClusterCoordinator

    config = ClusterConfig(
        host=args.host,
        port=args.port,
        control_port=args.control_port,
        replication=args.replication,
        heartbeat_interval=args.heartbeat_interval,
        dead_after=args.dead_after,
        shard_timeout=args.shard_timeout,
        min_workers=args.min_workers,
    )
    coordinator = ClusterCoordinator(config)
    banner = (
        f"coordinator: http://{config.host}:{{server.port}} "
        f"(control {{server.control_port}}, "
        f"replication={config.replication})"
    )
    return _run_node(banner, coordinator)


def _cmd_cluster_worker(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterWorker, WorkerConfig

    graph = load_graph(args.graph)
    lake = load_lake(args.lake)
    mapping = load_mapping(args.mapping)
    thetis = Thetis(
        lake, graph, mapping,
        cache_size=args.cache_size,
        engine_kind=args.engine,
        index_dir=args.index,
    )
    config = WorkerConfig(
        worker_id=args.worker_id,
        host=args.host,
        port=args.port,
        coordinator_host=args.coordinator_host,
        coordinator_port=args.coordinator_port,
        advertise_host=args.advertise_host,
        method=args.method,
        warm_on_start=not args.no_warm,
    )
    worker = ClusterWorker(thetis, config)
    banner = (
        f"worker {config.worker_id}: {len(lake)} tables on "
        f"{config.host}:{{server.port}} "
        f"(coordinator {args.coordinator_host}:{args.coordinator_port})"
    )
    return _run_node(banner, worker)


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    import http.client

    connection = http.client.HTTPConnection(
        args.host, args.port, timeout=args.timeout
    )
    try:
        connection.request("GET", "/cluster/status")
        response = connection.getresponse()
        body = response.read().decode("utf-8")
    finally:
        connection.close()
    if response.status != 200:
        print(f"error: coordinator replied {response.status}: {body}",
              file=sys.stderr)
        return 1
    print(json.dumps(json.loads(body), indent=2, sort_keys=True))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run as run_lint

    return run_lint(args)


def _index_sigma(args: argparse.Namespace, thetis: Thetis):
    """The similarity the index is built/validated against."""
    if args.method == "embeddings":
        thetis.train_embeddings(dimensions=args.dimensions, seed=args.seed)
    return thetis.engine(args.method).sigma


def _cmd_index_build(args: argparse.Namespace) -> int:
    from repro.core.kernel import SegmentedCorpusIndex, save_index

    graph = load_graph(args.graph)
    lake = load_lake(args.lake)
    mapping = load_mapping(args.mapping)
    with Thetis(lake, graph, mapping, engine_kind="vectorized") as thetis:
        sigma = _index_sigma(args, thetis)
        index = SegmentedCorpusIndex.compile(
            lake, mapping, sigma, segment_tables=args.segment_tables
        )
        summary = save_index(index, args.out)
    print(f"indexed {summary['live_tables']} tables into "
          f"{summary['segments']} segment(s), "
          f"{summary['array_bytes']:,} array bytes -> {args.out}")
    return 0


def _cmd_index_load(args: argparse.Namespace) -> int:
    import time

    from repro.core.kernel import SegmentedCorpusIndex, load_index

    graph = load_graph(args.graph)
    lake = load_lake(args.lake)
    mapping = load_mapping(args.mapping)
    with Thetis(lake, graph, mapping, engine_kind="vectorized") as thetis:
        sigma = _index_sigma(args, thetis)
        start = time.perf_counter()
        index = load_index(args.index, sigma, mapping)
        load_seconds = time.perf_counter() - start
        stats = index.stats()
        mirrors = index.mirrors([table.table_id for table in lake])
        print(f"loaded {stats.live_tables} tables / {stats.segments} "
              f"segment(s) in {load_seconds * 1000:.1f} ms "
              f"(mirrors lake: {mirrors})")
        if args.compare_compile:
            start = time.perf_counter()
            SegmentedCorpusIndex.compile(lake, mapping, sigma)
            compile_seconds = time.perf_counter() - start
            speedup = compile_seconds / max(load_seconds, 1e-9)
            print(f"compile from scratch: {compile_seconds * 1000:.1f} ms "
                  f"({speedup:.1f}x slower than load)")
    return 0


def _cmd_index_inspect(args: argparse.Namespace) -> int:
    from repro.core.kernel import inspect_index

    summary = inspect_index(args.index, verify=args.verify)
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="thetis",
        description="Semantic table search in semantic data lakes",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="generate a synthetic benchmark corpus"
    )
    generate.add_argument("--out", required=True, help="output directory")
    generate.add_argument("--profile", choices=sorted(PROFILES),
                          default="wt2015")
    generate.add_argument("--tables", type=int, default=500)
    generate.add_argument("--queries", type=int, default=10,
                          help="number of 1-/5-tuple query pairs")
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=_cmd_generate)

    link = sub.add_parser("link", help="entity-link a lake against a KG")
    link.add_argument("--graph", required=True)
    link.add_argument("--lake", required=True)
    link.add_argument("--out", required=True, help="mapping output path")
    link.add_argument("--exact-only", action="store_true",
                      help="disable fuzzy label matching")
    link.add_argument("--contextual", action="store_true",
                      help="disambiguate ambiguous labels by column "
                           "type coherence")
    link.set_defaults(func=_cmd_link)

    stats = sub.add_parser("stats", help="print corpus statistics")
    stats.add_argument("--lake", required=True)
    stats.add_argument("--mapping", default=None)
    stats.set_defaults(func=_cmd_stats)

    profile = sub.add_parser(
        "profile", help="profile a knowledge graph and/or tables"
    )
    profile.add_argument("--graph", default=None)
    profile.add_argument("--lake", default=None)
    profile.add_argument("--mapping", default=None)
    profile.add_argument("--table", action="append", default=None,
                         help="specific table id(s) to profile")
    profile.add_argument("--top", type=int, default=5,
                         help="top types / table count limit")
    profile.set_defaults(func=_cmd_profile)

    tune = sub.add_parser(
        "tune", help="auto-tune LSH configuration on sample queries"
    )
    tune.add_argument("--graph", required=True)
    tune.add_argument("--lake", required=True)
    tune.add_argument("--mapping", required=True)
    tune.add_argument("--queries", required=True,
                      help="queries.json written by 'generate'")
    tune.add_argument("--config", action="append",
                      default=None, help="candidate as 'vectors,band'")
    tune.add_argument("--sample", type=int, default=5)
    tune.add_argument("-k", type=int, default=10)
    tune.add_argument("--min-retention", type=float, default=0.9)
    tune.set_defaults(func=_cmd_tune)

    bench = sub.add_parser(
        "bench", help="run a BM25-vs-semantic benchmark, write a report"
    )
    bench.add_argument("--graph", required=True)
    bench.add_argument("--lake", required=True)
    bench.add_argument("--mapping", required=True)
    bench.add_argument("--queries", required=True)
    bench.add_argument("--out", required=True, help="markdown report path")
    bench.add_argument("-k", type=int, default=10)
    bench.add_argument("--workers", type=int, default=1,
                       help="shard exact scoring across N workers")
    bench.add_argument("--cache-size", type=int,
                       default=DEFAULT_SIMILARITY_CACHE_SIZE,
                       help="similarity-cache entry bound")
    bench.add_argument("--engine", choices=ENGINE_KINDS, default="scalar",
                       help="scoring engine implementation")
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser(
        "serve", help="run the online HTTP/JSON query service"
    )
    serve.add_argument("--graph", required=True)
    serve.add_argument("--lake", required=True)
    serve.add_argument("--mapping", required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="0 picks an ephemeral port")
    serve.add_argument("--method", choices=["types", "embeddings"],
                       default="types")
    serve.add_argument("--dimensions", type=int, default=32,
                       help="embedding width when --method embeddings")
    serve.add_argument("--workers", type=int, default=1,
                       help="shard exact scoring across N workers")
    serve.add_argument("--backend", choices=["thread", "process"],
                       default="thread")
    serve.add_argument("--cache-size", type=int,
                       default=DEFAULT_SIMILARITY_CACHE_SIZE)
    serve.add_argument("--engine", choices=ENGINE_KINDS, default="scalar",
                       help="scoring engine implementation (vectorized = "
                            "batched numpy kernel over a compiled corpus "
                            "index)")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="queries coalesced per engine pass")
    serve.add_argument("--flush-interval", type=float, default=0.002,
                       help="micro-batch coalescing window (seconds)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="admission bound; 503 beyond it")
    serve.add_argument("--timeout", type=float, default=30.0,
                       help="per-request deadline (seconds; 504 past it)")
    serve.add_argument("--batch-workers", type=int, default=1,
                       help="threads executing query batches")
    serve.add_argument("--no-warm", action="store_true",
                       help="skip index warm-up (readyz flips immediately)")
    serve.add_argument("--index", default=None, metavar="DIR",
                       help="persisted index directory (built with "
                            "'thetis index build'); memmapped for a "
                            "zero-copy cold start — requires --engine "
                            "vectorized")
    serve.add_argument("--guardrail-every", type=int, default=0,
                       metavar="N",
                       help="cross-check every Nth prefilter-mode query "
                            "against the exact ranking and record its "
                            "recall@k in /metrics (0 disables)")
    serve.add_argument("--seed", type=int, default=0)
    serve.set_defaults(func=_cmd_serve)

    search = sub.add_parser("search", help="semantic table search")
    search.add_argument("--graph", required=True)
    search.add_argument("--lake", required=True)
    search.add_argument("--mapping", required=True)
    search.add_argument(
        "--tuple", action="append", required=True,
        help="comma-separated entity URIs; repeat for multi-tuple queries",
    )
    search.add_argument("-k", type=int, default=10)
    search.add_argument("--method", choices=["types", "embeddings"],
                        default="types")
    search.add_argument("--dimensions", type=int, default=32,
                        help="embedding width when --method embeddings")
    search.add_argument("--lsh", action="store_true",
                        help="enable LSH prefiltering")
    search.add_argument("--votes", type=int, default=1)
    search.add_argument("--task", choices=["entity", "union", "join"],
                        default="entity",
                        help="search workload: 'entity' ranks by "
                             "entity-tuple relevance (the default), "
                             "'union' by attribute unionability, 'join' "
                             "by joinable-column overlap — union and "
                             "join run on the vectorized corpus kernels")
    search.add_argument("--mode", choices=["exact", "prefilter"],
                        default="exact",
                        help="retrieval mode: 'exact' scores every table, "
                             "'prefilter' generates an LSH candidate set "
                             "and rescores only the shortlist with "
                             "bound-based early termination")
    search.add_argument("--workers", type=int, default=1,
                        help="shard exact scoring across N workers "
                             "(1 = sequential)")
    search.add_argument("--backend", choices=["thread", "process"],
                        default="thread",
                        help="worker-pool backend when --workers > 1")
    search.add_argument("--cache-size", type=int,
                        default=DEFAULT_SIMILARITY_CACHE_SIZE,
                        help="similarity-cache entry bound")
    search.add_argument("--engine", choices=ENGINE_KINDS, default="scalar",
                        help="scoring engine implementation (vectorized = "
                             "batched numpy kernel over a compiled corpus "
                             "index; identical rankings)")
    search.add_argument("--index", default=None, metavar="DIR",
                        help="persisted index directory (built with "
                             "'thetis index build'); memmapped for a "
                             "zero-copy cold start — requires --engine "
                             "vectorized")
    search.add_argument("--cache-stats", action="store_true",
                        help="print cache hit/miss statistics after "
                             "searching")
    search.add_argument("--explain", action="store_true",
                        help="explain the top result")
    search.add_argument("--seed", type=int, default=0)
    search.set_defaults(func=_cmd_search)

    index = sub.add_parser(
        "index", help="build/load/inspect a persistent segmented index"
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)

    def _index_corpus_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--graph", required=True)
        p.add_argument("--lake", required=True)
        p.add_argument("--mapping", required=True)
        p.add_argument("--method", choices=["types", "embeddings"],
                       default="types",
                       help="similarity the index is compiled against")
        p.add_argument("--dimensions", type=int, default=32,
                       help="embedding width when --method embeddings")
        p.add_argument("--seed", type=int, default=0)

    index_build = index_sub.add_parser(
        "build", help="compile the lake and persist the index to disk"
    )
    _index_corpus_arguments(index_build)
    index_build.add_argument("--out", required=True,
                             help="index output directory")
    index_build.add_argument("--segment-tables", type=int, default=0,
                             help="tables per segment (0 = one segment; "
                                  "smaller segments make later updates "
                                  "cheaper at a small scan overhead)")
    index_build.set_defaults(func=_cmd_index_build)

    index_load = index_sub.add_parser(
        "load", help="memmap-load a persisted index and report timings"
    )
    _index_corpus_arguments(index_load)
    index_load.add_argument("--index", required=True,
                            help="index directory to load")
    index_load.add_argument("--compare-compile", action="store_true",
                            help="also time a compile-from-scratch for "
                                 "the cold-start speedup")
    index_load.set_defaults(func=_cmd_index_load)

    index_inspect = index_sub.add_parser(
        "inspect", help="summarize an index directory from its header"
    )
    index_inspect.add_argument("--index", required=True,
                               help="index directory to inspect")
    index_inspect.add_argument("--verify", action="store_true",
                               help="resolve every array against the "
                                    "payload (detects truncation)")
    index_inspect.set_defaults(func=_cmd_index_inspect)

    cluster = sub.add_parser(
        "cluster",
        help="sharded scatter-gather serving: coordinator + workers",
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command",
                                         required=True)

    cluster_serve = cluster_sub.add_parser(
        "serve", help="run the data-free scatter-gather coordinator"
    )
    cluster_serve.add_argument("--host", default="127.0.0.1")
    cluster_serve.add_argument("--port", type=int, default=8080,
                               help="HTTP front-door port (0 = ephemeral)")
    cluster_serve.add_argument("--control-port", type=int, default=8081,
                               help="worker register/heartbeat port "
                                    "(0 = ephemeral)")
    cluster_serve.add_argument("--replication", type=int, default=2,
                               help="R-way shard replication on the ring")
    cluster_serve.add_argument("--heartbeat-interval", type=float,
                               default=0.5,
                               help="seconds between worker pings")
    cluster_serve.add_argument("--dead-after", type=int, default=3,
                               help="consecutive failures before a worker "
                                    "is declared dead and replicas are "
                                    "promoted")
    cluster_serve.add_argument("--shard-timeout", type=float, default=10.0,
                               help="per-shard scatter deadline (seconds)")
    cluster_serve.add_argument("--min-workers", type=int, default=1,
                               help="live workers required for /readyz")
    cluster_serve.set_defaults(func=_cmd_cluster_serve)

    cluster_worker = cluster_sub.add_parser(
        "worker", help="run one shard-scoring worker and register it"
    )
    cluster_worker.add_argument("--graph", required=True)
    cluster_worker.add_argument("--lake", required=True)
    cluster_worker.add_argument("--mapping", required=True)
    cluster_worker.add_argument("--worker-id", required=True,
                                help="stable id on the hash ring")
    cluster_worker.add_argument("--host", default="127.0.0.1")
    cluster_worker.add_argument("--port", type=int, default=0,
                                help="shard-protocol port (0 = ephemeral)")
    cluster_worker.add_argument("--coordinator-host", required=True)
    cluster_worker.add_argument("--coordinator-port", type=int,
                                required=True,
                                help="the coordinator's control port")
    cluster_worker.add_argument("--advertise-host", default=None,
                                help="host the coordinator should dial "
                                     "back (defaults to --host)")
    cluster_worker.add_argument("--method",
                                choices=["types", "embeddings"],
                                default="types")
    cluster_worker.add_argument("--engine", choices=ENGINE_KINDS,
                                default="vectorized",
                                help="scoring engine; 'vectorized' "
                                     "memmaps --index for a zero-copy "
                                     "cold start")
    cluster_worker.add_argument("--index", default=None, metavar="DIR",
                                help="persisted index directory (built "
                                     "with 'thetis index build'); "
                                     "requires --engine vectorized")
    cluster_worker.add_argument("--cache-size", type=int,
                                default=DEFAULT_SIMILARITY_CACHE_SIZE)
    cluster_worker.add_argument("--no-warm", action="store_true",
                                help="skip engine warm-up before "
                                     "registering")
    cluster_worker.set_defaults(func=_cmd_cluster_worker)

    cluster_status = cluster_sub.add_parser(
        "status", help="print the coordinator's /cluster/status document"
    )
    cluster_status.add_argument("--host", default="127.0.0.1")
    cluster_status.add_argument("--port", type=int, default=8080,
                                help="the coordinator's HTTP port")
    cluster_status.add_argument("--timeout", type=float, default=10.0)
    cluster_status.set_defaults(func=_cmd_cluster_status)

    lint = sub.add_parser(
        "lint", help="run the repro.analysis static analyzer"
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors and missing files are reported on stderr with exit
    code 1 instead of a traceback; argparse errors keep their usual
    exit code 2.
    """
    from repro.exceptions import ReproError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError, json.JSONDecodeError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""CI smoke test for the cluster scatter-gather layer.

Builds a small synthetic corpus, persists its segmented index to disk,
then boots a whole fleet in-process — one coordinator plus two workers
that cold-start by **memmapping the same index directory** — and walks
the cluster contract end to end:

1. ``/healthz``, ``/readyz``, and ``/cluster/status`` answer 200 once
   both workers have registered;
2. ``POST /search`` through the coordinator is bit-identical to direct
   ``Thetis.search`` in ``exact`` *and* ``prefilter`` mode;
3. killing a worker abruptly mid-fleet never yields a 500: the next
   response is 200 with ``"degraded": true`` and a still bit-identical
   ranking (hedged retry to the replica);
4. the heartbeat loop declares the worker dead, flips the routing
   epoch, and responses go clean (``"degraded": false``) again;
5. ``GET /metrics`` reflects the scatter traffic and the fail-over;
6. graceful shutdown tears the fleet down.

Exit code 0 on success; any failure raises and exits non-zero.

Usage: PYTHONPATH=src python scripts/cluster_smoke.py
"""

import http.client
import json
import sys
import tempfile
import time

from repro import Thetis
from repro.benchgen import WT2015_PROFILE, build_benchmark
from repro.cluster import ClusterConfig, ClusterHarness
from repro.core.kernel import SegmentedCorpusIndex, save_index


def request(port, method, path, payload=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        return response.status, (json.loads(raw) if raw else None)
    finally:
        connection.close()


def ranking(body):
    return [(r["table_id"], r["score"]) for r in body["results"]]


def expected_ranking(results):
    return [(s.table_id, s.score) for s in results]


def main() -> int:
    print("cluster_smoke: building corpus ...")
    bench = build_benchmark(
        WT2015_PROFILE, num_tables=150, num_query_pairs=2, seed=7
    )
    reference = Thetis(
        bench.lake, bench.graph, bench.mapping, engine_kind="vectorized"
    )
    query = next(iter(bench.queries.five_tuple.values()))
    payload = {"tuples": [list(t) for t in query.tuples], "k": 10}
    exact = expected_ranking(reference.search(query, k=10))
    prefiltered = expected_ranking(
        reference.search(query, k=10, mode="prefilter")
    )

    with tempfile.TemporaryDirectory(prefix="thetis-cluster-") as index_dir:
        print(f"cluster_smoke: spilling index to {index_dir} ...")
        sigma = reference.engine("types").sigma
        index = SegmentedCorpusIndex.compile(
            bench.lake, bench.mapping, sigma, segment_tables=64
        )
        summary = save_index(index, index_dir)
        print(f"cluster_smoke: {summary['live_tables']} tables / "
              f"{summary['segments']} segment(s) on disk")

        def factory(worker_index):
            # Every worker memmaps the same directory — one physical
            # copy of the corpus arrays shared through the page cache.
            return Thetis(
                bench.lake, bench.graph, bench.mapping,
                engine_kind="vectorized", index_dir=index_dir,
            )

        config = ClusterConfig(heartbeat_interval=0.2, dead_after=2)
        with ClusterHarness(factory, workers=2, config=config) as fleet:
            port = fleet.port
            print(f"cluster_smoke: coordinator on 127.0.0.1:{port}, "
                  f"2 workers registered")

            status, body = request(port, "GET", "/healthz")
            assert status == 200 and body["status"] == "ok", (status, body)
            status, body = request(port, "GET", "/readyz")
            assert status == 200 and body["workers_live"] == 2, (status, body)
            status, body = request(port, "GET", "/cluster/status")
            assert status == 200 and len(body["workers"]) == 2, (status, body)
            print("cluster_smoke: healthz/readyz/status ok")

            status, body = request(port, "POST", "/search", payload)
            assert status == 200, (status, body)
            assert body["degraded"] is False, body["cluster"]
            assert ranking(body) == exact, "exact-mode parity violation"
            info = body["cluster"]
            assert info["covered_tables"] == info["tables_total"] == 150
            print(f"cluster_smoke: exact parity ok ({len(exact)} results, "
                  f"bit-identical across {info['workers_scattered']} shards)")

            status, body = request(
                port, "POST", "/search", dict(payload, mode="prefilter")
            )
            assert status == 200, (status, body)
            assert ranking(body) == prefiltered, \
                "prefilter-mode parity violation"
            print("cluster_smoke: prefilter parity ok")

            print("cluster_smoke: killing worker-0 ...")
            fleet.crash_worker(0)
            status, body = request(port, "POST", "/search", payload)
            assert status == 200, (status, body)  # no 500s during fail-over
            assert body["degraded"] is True, body["cluster"]
            assert body["cluster"]["failed_workers"] == ["worker-0"]
            assert ranking(body) == exact, "degraded parity violation"
            print("cluster_smoke: degraded response ok "
                  "(200, degraded=true, still bit-identical)")

            deadline = time.monotonic() + 30
            body = None
            while time.monotonic() < deadline:
                status, body = request(port, "POST", "/search", payload)
                assert status == 200, (status, body)
                if not body["degraded"]:
                    break
                time.sleep(0.1)
            assert body is not None and not body["degraded"], \
                "replica promotion did not converge"
            assert ranking(body) == exact, "post-promotion parity violation"
            status, doc = request(port, "GET", "/cluster/status")
            states = {w["worker_id"]: w["state"] for w in doc["workers"]}
            assert states["worker-0"] == "dead", states
            print(f"cluster_smoke: promotion ok (epoch={doc['epoch']}, "
                  f"workers_live={doc['workers_live']})")

            status, metrics = request(port, "GET", "/metrics")
            assert status == 200, status
            cluster = metrics["cluster"]
            assert cluster["scatters_total"] >= 4
            assert cluster["shard_failures_total"] >= 1
            assert cluster["hedged_retries_total"] >= 1
            assert cluster["degraded_total"] >= 1
            assert cluster["workers_live"] == 1
            print(f"cluster_smoke: metrics ok "
                  f"(scatters={cluster['scatters_total']}, "
                  f"hedged={cluster['hedged_retries_total']}, "
                  f"degraded={cluster['degraded_total']})")

        try:
            request(port, "GET", "/healthz")
        except OSError:
            pass
        else:
            raise AssertionError("coordinator reachable after shutdown")
        print("cluster_smoke: graceful shutdown ok")

    reference.close()
    print("cluster_smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())

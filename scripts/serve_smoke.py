#!/usr/bin/env python
"""CI smoke test for the serving layer.

Builds a small synthetic corpus, boots the HTTP server on an ephemeral
port, and walks the whole serving contract end to end:

1. ``/healthz`` and ``/readyz`` answer 200 after warm-up;
2. ``POST /search`` is bit-identical to direct ``Thetis.search``;
3. a hot ``POST /tables`` swap makes the new table searchable and
   bumps the snapshot version;
4. ``GET /metrics`` reflects the traffic;
5. graceful shutdown drains and closes the engine.

Exit code 0 on success; any failure raises and exits non-zero.

Usage: PYTHONPATH=src python scripts/serve_smoke.py
"""

import http.client
import json
import sys

from repro import Thetis
from repro.benchgen import WT2015_PROFILE, build_benchmark
from repro.serve import ServeConfig, ServerThread


def request(port, method, path, payload=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        return response.status, (json.loads(raw) if raw else None)
    finally:
        connection.close()


def main() -> int:
    print("serve_smoke: building corpus ...")
    bench = build_benchmark(
        WT2015_PROFILE, num_tables=150, num_query_pairs=2, seed=7
    )
    reference = Thetis(bench.lake, bench.graph, bench.mapping)
    lake, mapping = reference.snapshot_inputs()
    served = Thetis(lake, bench.graph, mapping)

    query = next(iter(bench.queries.five_tuple.values()))
    payload = {"tuples": [list(t) for t in query.tuples], "k": 10}

    handle = ServerThread(served, ServeConfig(port=0))
    handle.start().wait_ready(timeout=120)
    port = handle.port
    print(f"serve_smoke: listening on 127.0.0.1:{port}")
    try:
        status, body = request(port, "GET", "/healthz")
        assert status == 200 and body["status"] == "ok", (status, body)
        status, body = request(port, "GET", "/readyz")
        assert status == 200 and body["status"] == "ready", (status, body)
        print("serve_smoke: healthz/readyz ok")

        status, body = request(port, "POST", "/search", payload)
        assert status == 200, (status, body)
        direct = reference.search(query, k=10)
        served_ranking = [
            (r["table_id"], r["score"]) for r in body["results"]
        ]
        expected = [(s.table_id, s.score) for s in direct]
        assert served_ranking == expected, "parity violation"
        print(f"serve_smoke: /search parity ok "
              f"({len(expected)} results, bit-identical)")

        status, body = request(port, "POST", "/tables", {
            "table": {
                "id": "SMOKE",
                "attributes": ["A"],
                "rows": [["smoke"]],
                "metadata": {"caption": "smoke table"},
            },
            "link": True,
        })
        assert status == 200 and body["snapshot_version"] == 1, (status, body)
        status, _ = request(port, "DELETE", "/tables/SMOKE")
        assert status == 200, status
        print("serve_smoke: hot add/remove swap ok")

        status, metrics = request(port, "GET", "/metrics")
        assert status == 200, status
        assert metrics["requests_total"] >= 5
        assert metrics["batches_total"] >= 1
        assert metrics["snapshot_swaps_total"] == 2
        assert metrics["snapshot_version"] == 2
        assert "/search" in metrics["latency"]
        print(f"serve_smoke: metrics ok "
              f"(requests_total={metrics['requests_total']}, "
              f"batches_total={metrics['batches_total']})")
    finally:
        handle.stop(timeout=60)

    assert served.closed, "graceful stop must close the engine"
    try:
        request(port, "GET", "/healthz")
    except OSError:
        pass
    else:
        raise AssertionError("server still reachable after shutdown")
    print("serve_smoke: graceful shutdown ok")
    print("serve_smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# CI gate: repro.analysis static checks, tier-1 tests, plus quick perf
# smokes of the parallel/cache
# layer, the vectorized scoring kernel (score parity + speedup floor),
# and the online serving layer, so regressions in the scoring substrate
# or the query service surface without running the full benchmark
# harness.
#
# Usage: scripts/ci.sh [workers]   (default: 2)

set -euo pipefail
cd "$(dirname "$0")/.."

WORKERS="${1:-2}"
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== lint: repro.analysis static checks (syntax + flow passes) =="
LINT_START=$SECONDS
python -m repro.analysis src/repro --format json --fail-on warning \
    --jobs "$WORKERS"
echo "lint wall-time: $((SECONDS - LINT_START))s"

echo
echo "== lint self-check: injected violations must fail the stage =="
python scripts/lint_selfcheck.py

echo
echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== perf smoke: parallel sharding + persistent cache (workers=$WORKERS) =="
python -m pytest -x -q -s \
    "benchmarks/bench_table3_runtime.py::test_table3_parallel_cache_speedup" \
    --quick --workers "$WORKERS" \
    --benchmark-disable

echo
echo "== kernel smoke: vectorized-vs-scalar parity + speedup =="
python -m pytest -x -q -s \
    "benchmarks/bench_kernel_speedup.py" \
    --quick \
    --benchmark-disable

echo
echo "== batch smoke: multi-query fused kernel parity + speedup =="
python -m pytest -x -q -s \
    "benchmarks/bench_batch_kernel.py" \
    --quick \
    --benchmark-disable

echo
echo "== index smoke: O(delta) updates + memmap cold start =="
python -m pytest -x -q -s \
    "benchmarks/bench_kernel_speedup.py::test_incremental_index_speedup" \
    --incremental --quick \
    --benchmark-disable

echo
echo "== serve smoke: HTTP service end-to-end on an ephemeral port =="
python scripts/serve_smoke.py

echo
echo "== serve perf smoke: throughput + latency percentiles =="
python -m pytest -x -q -s \
    "benchmarks/bench_serve_latency.py" \
    --quick \
    --benchmark-disable

echo
echo "== cluster smoke: scatter-gather fleet + kill-a-worker fail-over =="
python scripts/cluster_smoke.py

echo
echo "== prefilter smoke: candidate reduction + recall gate =="
python -m pytest -x -q -s \
    "benchmarks/bench_lsh_serve.py" \
    --quick \
    --benchmark-disable

echo
echo "== union/join smoke: task kernels parity + speedup + served tasks =="
python -m pytest -x -q -s \
    "benchmarks/bench_union_join.py" \
    --quick \
    --benchmark-disable

echo
echo "ci.sh: all checks passed"

#!/usr/bin/env python
"""CI self-check for the whole-program flow lint passes.

A lint stage that silently stopped finding anything would pass CI
forever, so this script proves the flow passes still bite: it writes a
scratch tree containing one synthetic AB/BA lock-order cycle and one
wire-to-engine taint bypass, runs ``python -m repro.analysis`` over it
exactly the way the CI lint stage runs over ``src/repro``, and fails
unless the run (a) exits non-zero and (b) reports both expected rules.

Run from the repository root (ci.sh does)::

    python scripts/lint_selfcheck.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import textwrap
from pathlib import Path

LOCK_CYCLE = """\
import threading


class Ledger:
    def __init__(self):
        self._lock = threading.Lock()
        self.journal = Journal()

    def post(self):
        with self._lock:
            self.journal.append()


class Journal:
    def __init__(self):
        self._lock = threading.Lock()
        self.ledger: "Ledger" = None

    def append(self):
        with self._lock:
            pass

    def replay(self, ledger: "Ledger"):
        with self._lock:
            ledger.post()
"""

TAINT_BYPASS = """\
from repro.cluster.protocol import read_frame


class Searcher:
    def search(self, query, k=10):
        return []


async def handle(reader, searcher: Searcher):
    message = await read_frame(reader)
    return searcher.search(message.get("query"), k=message.get("k"))
"""


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="lint-selfcheck-") as scratch:
        root = Path(scratch)
        (root / "lock_cycle.py").write_text(
            textwrap.dedent(LOCK_CYCLE), encoding="utf-8"
        )
        (root / "taint_bypass.py").write_text(
            textwrap.dedent(TAINT_BYPASS), encoding="utf-8"
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(root),
             "--no-baseline", "--format", "json", "--fail-on", "error"],
            capture_output=True, text=True,
        )
        if result.returncode == 0:
            print("lint_selfcheck: FAIL — injected violations did not "
                  "fail the lint stage", file=sys.stderr)
            print(result.stdout, file=sys.stderr)
            return 1
        try:
            document = json.loads(result.stdout)
        except json.JSONDecodeError:
            print("lint_selfcheck: FAIL — lint did not emit JSON:",
                  file=sys.stderr)
            print(result.stdout, file=sys.stderr)
            print(result.stderr, file=sys.stderr)
            return 1
        rules = {finding["rule"] for finding in document["findings"]}
        missing = {"lock-order", "wire-taint"} - rules
        if missing:
            print(f"lint_selfcheck: FAIL — expected rules {sorted(missing)} "
                  f"did not fire (got {sorted(rules)})", file=sys.stderr)
            return 1
        cycles = document["artifacts"]["lock_order"]["cycles"]
        if not cycles:
            print("lint_selfcheck: FAIL — lock-order artifacts report no "
                  "cycle for the injected AB/BA pair", file=sys.stderr)
            return 1
        print("lint_selfcheck: ok — injected lock-order cycle and taint "
              f"bypass both detected ({len(document['findings'])} "
              "finding(s))")
        return 0


if __name__ == "__main__":
    sys.exit(main())

"""Engine, baseline, and CLI behavior of repro.analysis."""

import json
import re
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline, find_baseline_file
from repro.analysis.cli import main
from repro.analysis.engine import Finding, LintEngine
from repro.analysis.rules import ALL_RULES, get_rules, rules_for_passes
from repro.exceptions import AnalysisError

REPO_ROOT = Path(__file__).resolve().parent.parent


def write(tmp_path, relpath, text):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Discovery and parsing
# ----------------------------------------------------------------------
def test_discover_recurses_and_skips_caches(tmp_path):
    write(tmp_path, "pkg/a.py", "x = 1\n")
    write(tmp_path, "pkg/sub/b.py", "y = 2\n")
    write(tmp_path, "pkg/__pycache__/c.py", "z = 3\n")
    write(tmp_path, "pkg/notes.txt", "not python\n")
    files = LintEngine.discover([tmp_path])
    names = [path.name for path in files]
    assert names == ["a.py", "b.py"]


def test_discover_missing_path_raises(tmp_path):
    with pytest.raises(AnalysisError):
        LintEngine.discover([tmp_path / "nope"])


def test_parse_error_becomes_a_finding(tmp_path):
    path = write(tmp_path, "broken.py", "def oops(:\n")
    engine = LintEngine(ALL_RULES)
    report = engine.run([path])
    assert len(report.findings) == 1
    finding = report.findings[0]
    assert finding.rule == "parse-error"
    assert finding.severity == "error"
    assert report.gates("error")


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def make_finding(path="pkg/mod.py"):
    return Finding(
        rule="unused-import",
        severity="warning",
        path=path,
        line=3,
        message="'os' is imported but never used",
    )


def baseline_document(entries):
    return json.dumps({"entries": entries})


def test_baseline_matches_by_fingerprint_not_line(tmp_path):
    path = tmp_path / ".lint-baseline.json"
    path.write_text(baseline_document([{
        "rule": "unused-import",
        "path": "pkg/mod.py",
        "message": "'os' is imported but never used",
        "reason": "kept for doctest",
    }]))
    baseline = Baseline.load(path)
    moved = Finding(
        rule="unused-import", severity="warning", path="pkg/mod.py",
        line=99, message="'os' is imported but never used",
    )
    assert baseline.matches(moved)
    assert baseline.stale_entries() == []


def test_baseline_reports_stale_entries(tmp_path):
    path = tmp_path / ".lint-baseline.json"
    path.write_text(baseline_document([{
        "rule": "unused-import",
        "path": "pkg/gone.py",
        "message": "'os' is imported but never used",
        "reason": "obsolete",
    }]))
    baseline = Baseline.load(path)
    assert not baseline.matches(make_finding())
    assert baseline.stale_entries() == [
        ("unused-import", "pkg/gone.py", "'os' is imported but never used")
    ]


def test_baseline_rejects_empty_reason_and_missing_keys(tmp_path):
    no_reason = tmp_path / "no_reason.json"
    no_reason.write_text(baseline_document([{
        "rule": "unused-import", "path": "a.py",
        "message": "m", "reason": "  ",
    }]))
    with pytest.raises(AnalysisError, match="reason"):
        Baseline.load(no_reason)
    missing = tmp_path / "missing.json"
    missing.write_text(baseline_document([{"rule": "unused-import"}]))
    with pytest.raises(AnalysisError, match="missing"):
        Baseline.load(missing)
    garbage = tmp_path / "garbage.json"
    garbage.write_text("not json")
    with pytest.raises(AnalysisError, match="valid JSON"):
        Baseline.load(garbage)


def test_find_baseline_file_searches_upward(tmp_path):
    target = write(tmp_path, "src/pkg/mod.py", "x = 1\n")
    assert find_baseline_file(target) is None
    marker = tmp_path / ".lint-baseline.json"
    marker.write_text(baseline_document([]))
    assert find_baseline_file(target) == marker


def test_engine_splits_baselined_from_active(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    write(tmp_path, "pkg/mod.py", "import os\n")
    baseline_path = tmp_path / ".lint-baseline.json"
    baseline_path.write_text(baseline_document([{
        "rule": "unused-import",
        "path": "pkg/mod.py",
        "message": "'os' is imported but never used",
        "reason": "fixture",
    }]))
    engine = LintEngine(
        get_rules(["unused-import"]),
        baseline=Baseline.load(baseline_path),
    )
    report = engine.run([tmp_path / "pkg"])
    assert report.findings == []
    assert len(report.baselined) == 1
    assert not report.gates("warning")


# ----------------------------------------------------------------------
# Severity gating
# ----------------------------------------------------------------------
def test_gates_thresholds(tmp_path):
    path = write(tmp_path, "mod.py", "import os\n")
    report = LintEngine(get_rules(["unused-import"])).run([path])
    assert report.counts()["warning"] == 1
    assert report.worst() == "warning"
    assert report.gates("info")
    assert report.gates("warning")
    assert not report.gates("error")
    assert not report.gates("never")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_clean_file_exits_zero(tmp_path, capsys):
    path = write(tmp_path, "clean.py", "VALUE = 1\n")
    assert main([str(path), "--no-baseline"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_warning_gates_by_default_but_not_on_error(tmp_path, capsys):
    path = write(tmp_path, "mod.py", "import os\n")
    assert main([str(path), "--no-baseline"]) == 1
    assert main([str(path), "--no-baseline", "--fail-on", "error"]) == 0
    assert main([str(path), "--no-baseline", "--fail-on", "never"]) == 0
    capsys.readouterr()


def test_cli_unknown_rule_id_is_usage_error(tmp_path, capsys):
    path = write(tmp_path, "mod.py", "x = 1\n")
    assert main([str(path), "--rules", "bogus"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_json_output_is_parseable(tmp_path, capsys):
    path = write(tmp_path, "mod.py", "import os\n")
    code = main([str(path), "--no-baseline", "--format", "json"])
    document = json.loads(capsys.readouterr().out)
    assert code == 1
    assert document["failed"] is True
    assert document["counts"]["warning"] == 1
    assert document["findings"][0]["rule"] == "unused-import"


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.id in out


def test_cli_rules_subset_runs_only_those(tmp_path, capsys):
    path = write(tmp_path, "mod.py", """\
        import os

        def check(value):
            raise ValueError(value)
        """)
    assert main([
        str(path), "--no-baseline", "--rules", "foreign-exception",
        "--format", "json",
    ]) == 1
    document = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in document["findings"]] == ["foreign-exception"]


def test_cli_changed_only_lints_only_dirty_files(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    env = {"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@example.com",
           "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@example.com"}
    try:
        subprocess.run(["git", "init", "-q"], check=True, cwd=tmp_path)
        write(tmp_path, "src/clean.py", "import os\n")
        subprocess.run(["git", "add", "."], check=True, cwd=tmp_path)
        subprocess.run(
            ["git", "commit", "-qm", "seed"], check=True, cwd=tmp_path,
            env={**__import__("os").environ, **env},
        )
    except (OSError, subprocess.CalledProcessError):
        pytest.skip("git unavailable")
    # clean.py (committed, unchanged) has a finding that must NOT be
    # reported; only the untracked file is linted.
    write(tmp_path, "src/dirty.py", "import json\n")
    code = main(["src", "--no-baseline", "--changed-only",
                 "--format", "json"])
    document = json.loads(capsys.readouterr().out)
    assert code == 1
    paths = {f["path"] for f in document["findings"]}
    assert paths == {"src/dirty.py"}


def test_cli_changed_only_with_no_changes_is_clean(tmp_path, monkeypatch,
                                                   capsys):
    monkeypatch.chdir(tmp_path)
    env = {"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@example.com",
           "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@example.com"}
    try:
        subprocess.run(["git", "init", "-q"], check=True, cwd=tmp_path)
        write(tmp_path, "src/clean.py", "import os\n")
        subprocess.run(["git", "add", "."], check=True, cwd=tmp_path)
        subprocess.run(
            ["git", "commit", "-qm", "seed"], check=True, cwd=tmp_path,
            env={**__import__("os").environ, **env},
        )
    except (OSError, subprocess.CalledProcessError):
        pytest.skip("git unavailable")
    assert main(["src", "--no-baseline", "--changed-only"]) == 0
    assert "nothing to lint" in capsys.readouterr().err


def git_seed(tmp_path, files):
    """``git init`` + commit ``files``; skip the test if git is missing."""
    env = {"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@example.com",
           "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@example.com"}
    try:
        subprocess.run(["git", "init", "-q"], check=True, cwd=tmp_path)
        for relpath, text in files.items():
            write(tmp_path, relpath, text)
        subprocess.run(["git", "add", "."], check=True, cwd=tmp_path)
        subprocess.run(
            ["git", "commit", "-qm", "seed"], check=True, cwd=tmp_path,
            env={**__import__("os").environ, **env},
        )
    except (OSError, subprocess.CalledProcessError):
        pytest.skip("git unavailable")


def test_cli_changed_only_handles_renames_and_deletions(tmp_path,
                                                        monkeypatch,
                                                        capsys):
    monkeypatch.chdir(tmp_path)
    git_seed(tmp_path, {
        "src/moved.py": "import os\n",
        "src/doomed.py": "import sys\n",
    })
    # A rename leaves the old path in the diff but absent on disk; a
    # plain deletion leaves only a missing path.  Neither may crash or
    # produce findings against files that no longer exist.
    subprocess.run(["git", "mv", "src/moved.py", "src/renamed.py"],
                   check=True, cwd=tmp_path)
    (tmp_path / "src" / "doomed.py").unlink()
    write(tmp_path, "src/fresh.py", "import json\n")
    code = main(["src", "--no-baseline", "--changed-only",
                 "--format", "json"])
    document = json.loads(capsys.readouterr().out)
    assert code == 1
    paths = {f["path"] for f in document["findings"]}
    assert paths == {"src/renamed.py", "src/fresh.py"}


def test_cli_changed_only_disables_flow_passes_with_notice(tmp_path,
                                                           monkeypatch,
                                                           capsys):
    monkeypatch.chdir(tmp_path)
    git_seed(tmp_path, {"src/clean.py": "VALUE = 1\n"})
    write(tmp_path, "src/dirty.py", "import json\n")
    assert main(["src", "--no-baseline", "--changed-only"]) == 1
    err = capsys.readouterr().err
    assert "disables the whole-program flow passes" in err
    assert "lock-order" in err


# ----------------------------------------------------------------------
# --prune-baseline
# ----------------------------------------------------------------------
def prunable_baseline(tmp_path):
    """A baseline with one live entry, one stale one, and a comment."""
    write(tmp_path, "pkg/mod.py", "import os\n")
    baseline_path = tmp_path / ".lint-baseline.json"
    baseline_path.write_text(json.dumps({
        "comment": "tracked debt",
        "entries": [
            {"rule": "unused-import", "path": "pkg/mod.py",
             "message": "'os' is imported but never used",
             "reason": "doctest needs it"},
            {"rule": "unused-import", "path": "pkg/gone.py",
             "message": "'sys' is imported but never used",
             "reason": "obsolete"},
        ],
    }, indent=2))
    return baseline_path


def test_cli_prune_baseline_drops_stale_preserves_rest(tmp_path,
                                                       monkeypatch,
                                                       capsys):
    monkeypatch.chdir(tmp_path)
    baseline_path = prunable_baseline(tmp_path)
    assert main(["pkg", "--prune-baseline"]) == 0
    assert "dropping" in capsys.readouterr().out
    document = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert document["comment"] == "tracked debt"
    assert [entry["path"] for entry in document["entries"]] == ["pkg/mod.py"]
    assert document["entries"][0]["reason"] == "doctest needs it"


def test_cli_prune_baseline_dry_run_leaves_file_untouched(tmp_path,
                                                          monkeypatch,
                                                          capsys):
    monkeypatch.chdir(tmp_path)
    baseline_path = prunable_baseline(tmp_path)
    before = baseline_path.read_text(encoding="utf-8")
    assert main(["pkg", "--prune-baseline", "--dry-run"]) == 0
    assert "would drop" in capsys.readouterr().out
    assert baseline_path.read_text(encoding="utf-8") == before


def test_cli_prune_baseline_reports_tight_baseline(tmp_path, monkeypatch,
                                                   capsys):
    monkeypatch.chdir(tmp_path)
    baseline_path = prunable_baseline(tmp_path)
    document = json.loads(baseline_path.read_text(encoding="utf-8"))
    document["entries"] = document["entries"][:1]  # only the live entry
    baseline_path.write_text(json.dumps(document, indent=2))
    assert main(["pkg", "--prune-baseline"]) == 0
    assert "is tight" in capsys.readouterr().out


def test_cli_prune_baseline_rejects_changed_only(tmp_path, capsys):
    assert main([str(tmp_path), "--prune-baseline", "--changed-only"]) == 2
    assert "--prune-baseline needs a full run" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Parse cache and --jobs
# ----------------------------------------------------------------------
def test_parse_cache_reuses_until_file_changes(tmp_path):
    from repro.analysis.engine import load_source

    path = write(tmp_path, "mod.py", "x = 1\n")
    first = load_source(path, "mod.py")
    assert load_source(path, "mod.py") is first
    path.write_text("x = 1\ny = 2\n", encoding="utf-8")
    reparsed = load_source(path, "mod.py")
    assert reparsed is not first
    assert "y = 2" in reparsed.text


def test_cli_jobs_output_matches_serial(tmp_path, capsys):
    for index in range(6):
        write(tmp_path, f"pkg/mod{index}.py", "import os\nimport json\n")

    def run_with(jobs):
        code = main([str(tmp_path / "pkg"), "--no-baseline",
                     "--jobs", jobs, "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        del document["elapsed_seconds"]
        return code, document

    assert run_with("1") == run_with("4")


def test_cli_reports_elapsed_time(tmp_path, capsys):
    path = write(tmp_path, "clean.py", "VALUE = 1\n")
    assert main([str(path), "--no-baseline"]) == 0
    out = capsys.readouterr().out
    assert re.search(r"\d+\.\d\ds", out)


def test_thetis_lint_subcommand_is_wired(tmp_path, capsys):
    from repro.cli import build_parser

    path = write(tmp_path, "mod.py", "import os\n")
    parser = build_parser()
    args = parser.parse_args(["lint", str(path), "--no-baseline"])
    assert args.func(args) == 1
    capsys.readouterr()


# ----------------------------------------------------------------------
# Def-span pragmas
# ----------------------------------------------------------------------
def test_pragma_on_def_line_covers_the_whole_body(tmp_path):
    path = write(tmp_path, "mod.py", """\
        import threading

        class Holder:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = []  # guarded-by: _lock

            # Caller holds the lock.
            def unsafe(self):  # lint: disable=guarded-attr-outside-lock
                first = self._data[0]
                return first

            def still_flagged(self):
                return self._data
        """)
    report = LintEngine(get_rules(["guarded-attr-outside-lock"])).run([path])
    assert len(report.findings) == 1
    assert "still_flagged" not in report.findings[0].message
    assert report.findings[0].line == path.read_text().splitlines().index(
        "        return self._data") + 1


def test_pragma_on_decorator_line_covers_decorated_def(tmp_path):
    # A decorated def starts at the decorator line; the pragma must
    # anchor there (or on the def line) and still cover the whole body.
    path = write(tmp_path, "mod.py", """\
        import threading

        def traced(fn):
            return fn

        class Holder:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = []  # guarded-by: _lock

            @traced  # lint: disable=guarded-attr-outside-lock
            def unsafe(self):
                return self._data

            @traced
            def on_def_line(self):  # lint: disable=guarded-attr-outside-lock
                return self._data

            @traced
            def still_flagged(self):
                return self._data
        """)
    report = LintEngine(get_rules(["guarded-attr-outside-lock"])).run([path])
    assert len(report.findings) == 1
    flagged_line = path.read_text().splitlines()[report.findings[0].line - 1]
    assert "return self._data" in flagged_line
    assert report.findings[0].line > 18  # the undecorated pragma-free def


def test_disable_file_pragma_covers_every_line(tmp_path):
    path = write(tmp_path, "mod.py", """\
        # lint: disable-file=unused-import
        import os
        import json
        """)
    report = LintEngine(get_rules(["unused-import"])).run([path])
    assert report.findings == []


# ----------------------------------------------------------------------
# Self-check: the shipped tree is clean against the shipped baseline
# ----------------------------------------------------------------------
def test_shipped_tree_is_clean_with_shipped_baseline(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    baseline = Baseline.load(REPO_ROOT / ".lint-baseline.json")
    # The default (flow-enabled) pass set: the lexical guarded-attr
    # rule alone would flag the helpers whose def-line pragmas were
    # retired once the flow pass started proving them held-under-lock.
    engine = LintEngine(rules_for_passes("all"), baseline=baseline)
    report = engine.run([REPO_ROOT / "src" / "repro"])
    assert report.findings == [], "\n".join(
        finding.format_text() for finding in report.findings
    )
    assert report.stale_baseline == []
    assert report.baselined  # the baseline is load-bearing, not empty


def test_ci_lint_stage_fails_on_injected_violation(tmp_path, monkeypatch,
                                                   capsys):
    """A deliberate guarded-attr violation trips the CI lint invocation."""
    write(tmp_path, "pkg/cache.py", """\
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._hits = 0  # guarded-by: _lock

            def bump(self):
                self._hits += 1
        """)
    code = main([str(tmp_path / "pkg"), "--no-baseline",
                 "--format", "json", "--fail-on", "warning"])
    document = json.loads(capsys.readouterr().out)
    assert code == 1
    assert document["counts"]["error"] == 1
    assert document["findings"][0]["rule"] == "guarded-attr-outside-lock"

"""Tests for early-terminating top-k search."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Query,
    TableSearchEngine,
    table_score_upper_bound,
    topk_search,
)
from repro.similarity import Informativeness, TypeJaccardSimilarity


@pytest.fixture()
def engine(sports_lake, sports_mapping, sports_graph):
    return TableSearchEngine(
        sports_lake,
        sports_mapping,
        TypeJaccardSimilarity(sports_graph),
        informativeness=Informativeness.from_mapping(
            sports_mapping, len(sports_lake)
        ),
    )


class TestUpperBound:
    def test_bound_dominates_exact_score(self, engine, sports_lake):
        """Soundness: bound >= exact score for every table."""
        query = Query.single("kg:player0", "kg:team0", "kg:city0")
        memo = {}
        for table in sports_lake:
            bound = table_score_upper_bound(engine, query, table, memo)
            exact = engine.score_table(query, table).score
            assert bound >= exact - 1e-9, table.table_id

    def test_bound_for_unlinked_table_is_zero(self, engine, sports_graph):
        from repro.datalake import Table

        table = Table("empty", ["A"], [["no links"]])
        assert table_score_upper_bound(
            engine, Query.single("kg:player0"), table, {}
        ) == 0.0

    def test_bound_reaches_one_for_exact_tables(self, engine, sports_lake):
        query = Query.single("kg:player0")
        bound = table_score_upper_bound(
            engine, query, sports_lake.get("T00"), {}
        )
        assert bound == pytest.approx(1.0)


class TestTopKSearch:
    def test_identical_to_brute_force(self, engine):
        query = Query.single("kg:player0", "kg:team0", "kg:city0")
        for k in (1, 3, 5, 12):
            brute = engine.search(query, k=k)
            fast = topk_search(engine, query, k)
            assert fast.table_ids() == brute.table_ids(), k
            for table_id in fast.table_ids():
                assert fast.score_of(table_id) == pytest.approx(
                    brute.score_of(table_id)
                )

    def test_multi_tuple_query(self, engine):
        query = Query([("kg:player0", "kg:team0"), ("kg:player20",)])
        assert topk_search(engine, query, 4).table_ids() == \
            engine.search(query, k=4).table_ids()

    def test_k_zero_and_negative(self, engine):
        query = Query.single("kg:player0")
        assert len(topk_search(engine, query, 0)) == 0
        assert len(topk_search(engine, query, -3)) == 0

    def test_candidates_restriction(self, engine):
        query = Query.single("kg:player0", "kg:team0")
        restricted = topk_search(engine, query, 5,
                                 candidates=["T01", "T02", "ghost"])
        assert set(restricted.table_ids()) <= {"T01", "T02"}

    def test_facade_search_topk(self, sports_lake, sports_mapping,
                                sports_graph):
        from repro import Thetis

        thetis = Thetis(sports_lake, sports_graph, sports_mapping)
        query = Query.single("kg:player3", "kg:team3")
        assert thetis.search_topk(query, k=5).table_ids() == \
            thetis.search(query, k=5).table_ids()

@settings(max_examples=20, deadline=None)
@given(st.integers(0, 31), st.integers(0, 7), st.integers(1, 8))
def test_topk_equivalence_property(player, team, k):
    """Random queries: top-k search always equals brute force."""
    from tests.conftest import (
        make_sports_graph,
        make_sports_lake,
    )
    from repro.linking import LabelLinker

    graph = test_topk_equivalence_property.__dict__.setdefault(
        "_graph", make_sports_graph()
    )
    lake = test_topk_equivalence_property.__dict__.setdefault(
        "_lake", make_sports_lake()
    )
    mapping = test_topk_equivalence_property.__dict__.setdefault(
        "_mapping", LabelLinker(graph).link_lake(lake)
    )
    engine = test_topk_equivalence_property.__dict__.setdefault(
        "_engine",
        TableSearchEngine(lake, mapping, TypeJaccardSimilarity(graph)),
    )
    query = Query.single(f"kg:player{player}", f"kg:team{team}")
    assert topk_search(engine, query, k).table_ids() == \
        engine.search(query, k=k).table_ids()

"""Tests for early-terminating top-k search."""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Query,
    TableSearchEngine,
    table_score_upper_bound,
    topk_search,
)
from repro.core.topk import TopKEntry
from repro.similarity import Informativeness, TypeJaccardSimilarity


@pytest.fixture()
def engine(sports_lake, sports_mapping, sports_graph):
    return TableSearchEngine(
        sports_lake,
        sports_mapping,
        TypeJaccardSimilarity(sports_graph),
        informativeness=Informativeness.from_mapping(
            sports_mapping, len(sports_lake)
        ),
    )


class TestUpperBound:
    def test_bound_dominates_exact_score(self, engine, sports_lake):
        """Soundness: bound >= exact score for every table."""
        query = Query.single("kg:player0", "kg:team0", "kg:city0")
        memo = {}
        for table in sports_lake:
            bound = table_score_upper_bound(engine, query, table, memo)
            exact = engine.score_table(query, table).score
            assert bound >= exact - 1e-9, table.table_id

    def test_bound_for_unlinked_table_is_zero(self, engine, sports_graph):
        from repro.datalake import Table

        table = Table("empty", ["A"], [["no links"]])
        assert table_score_upper_bound(
            engine, Query.single("kg:player0"), table, {}
        ) == 0.0

    def test_bound_reaches_one_for_exact_tables(self, engine, sports_lake):
        query = Query.single("kg:player0")
        bound = table_score_upper_bound(
            engine, query, sports_lake.get("T00"), {}
        )
        assert bound == pytest.approx(1.0)


class TestTopKSearch:
    def test_identical_to_brute_force(self, engine):
        query = Query.single("kg:player0", "kg:team0", "kg:city0")
        for k in (1, 3, 5, 12):
            brute = engine.search(query, k=k)
            fast = topk_search(engine, query, k)
            assert fast.table_ids() == brute.table_ids(), k
            for table_id in fast.table_ids():
                assert fast.score_of(table_id) == pytest.approx(
                    brute.score_of(table_id)
                )

    def test_multi_tuple_query(self, engine):
        query = Query([("kg:player0", "kg:team0"), ("kg:player20",)])
        assert topk_search(engine, query, 4).table_ids() == \
            engine.search(query, k=4).table_ids()

    def test_k_zero_and_negative(self, engine):
        query = Query.single("kg:player0")
        assert len(topk_search(engine, query, 0)) == 0
        assert len(topk_search(engine, query, -3)) == 0

    def test_candidates_restriction(self, engine):
        query = Query.single("kg:player0", "kg:team0")
        restricted = topk_search(engine, query, 5,
                                 candidates=["T01", "T02", "ghost"])
        assert set(restricted.table_ids()) <= {"T01", "T02"}

    def test_facade_search_topk(self, sports_lake, sports_mapping,
                                sports_graph):
        from repro import Thetis

        thetis = Thetis(sports_lake, sports_graph, sports_mapping)
        query = Query.single("kg:player3", "kg:team3")
        assert thetis.search_topk(query, k=5).table_ids() == \
            thetis.search(query, k=5).table_ids()

class TestTopKEntryOrdering:
    """The min-heap entry must invert the engine's (-score, id) rank."""

    def test_lower_score_is_worse(self):
        assert TopKEntry(0.5, "a") < TopKEntry(0.9, "a")
        assert not TopKEntry(0.9, "a") < TopKEntry(0.5, "a")

    def test_equal_scores_larger_id_is_worse(self):
        # The engine ranks ascending ids first among ties, so "z" is the
        # entry the heap should evict first.
        assert TopKEntry(0.5, "z") < TopKEntry(0.5, "a")
        assert not TopKEntry(0.5, "a") < TopKEntry(0.5, "z")

    def test_equality(self):
        assert TopKEntry(0.5, "a") == TopKEntry(0.5, "a")
        assert TopKEntry(0.5, "a") != TopKEntry(0.5, "b")
        assert TopKEntry(0.5, "a") != "not an entry"

    def test_heap_root_is_worst_ranked(self):
        heap = [
            TopKEntry(0.5, "b"),
            TopKEntry(0.5, "a"),
            TopKEntry(0.9, "c"),
        ]
        heapq.heapify(heap)
        # Among the tied 0.5 scores the engine ranks "a" before "b", so
        # "b" is the worst-ranked member and must sit at the root.
        assert heap[0] == TopKEntry(0.5, "b")


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from([0.25, 0.5, 0.5, 0.75, 1.0]),
            st.sampled_from(list("abcdefghij")),
        ),
        min_size=1,
        max_size=10,
        unique_by=lambda pair: pair[1],
    ),
    st.integers(1, 6),
)
def test_heap_retention_property(entries, k):
    """With deliberately tied scores, the heap keeps exactly the tables
    the engine's documented ranking would keep."""
    heap = []
    for score, table_id in entries:
        entry = TopKEntry(score, table_id)
        if len(heap) < k:
            heapq.heappush(heap, entry)
        elif heap[0] < entry:
            heapq.heapreplace(heap, entry)
    expected = sorted(entries, key=lambda pair: (-pair[0], pair[1]))[:k]
    kept = sorted(
        ((entry.score, entry.table_id) for entry in heap),
        key=lambda pair: (-pair[0], pair[1]),
    )
    assert kept == expected


class TestTiedScores:
    """Duplicate tables produce exactly tied scores; the early-terminated
    ranking must still match brute force id-for-id."""

    @pytest.fixture()
    def tied_engine(self):
        from repro.datalake import DataLake, Table
        from repro.linking import LabelLinker
        from tests.conftest import make_sports_graph

        graph = make_sports_graph()
        lake = DataLake()
        player_rows = [["Player 0", "Team 0", "City 0", 2000]]
        city_rows = [["City 1", "City 2", "City 3", 2001]]
        # Three byte-identical player tables and two identical city
        # tables: two exact score tiers, each internally tied.
        for tid in ("DUP2", "DUP0", "DUP1"):
            lake.add(Table(tid, ["Player", "Team", "City", "Year"],
                           [list(row) for row in player_rows]))
        for tid in ("LOW1", "LOW0"):
            lake.add(Table(tid, ["A", "B", "C", "Year"],
                           [list(row) for row in city_rows]))
        mapping = LabelLinker(graph).link_lake(lake)
        return TableSearchEngine(
            lake, mapping, TypeJaccardSimilarity(graph)
        )

    def test_ties_resolved_like_brute_force(self, tied_engine):
        query = Query.single("kg:player0", "kg:team0")
        for k in (1, 2, 3, 4, 5):
            fast = topk_search(tied_engine, query, k)
            brute = tied_engine.search(query, k=k)
            assert fast.table_ids() == brute.table_ids(), k

    def test_cut_inside_tie_group_keeps_ascending_ids(self, tied_engine):
        query = Query.single("kg:player0", "kg:team0")
        # k=2 cuts through the three-way tie: ascending ids win.
        assert topk_search(tied_engine, query, 2).table_ids() == \
            ["DUP0", "DUP1"]


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 31), st.integers(0, 7), st.integers(1, 8))
def test_topk_equivalence_property(player, team, k):
    """Random queries: top-k search always equals brute force."""
    from tests.conftest import (
        make_sports_graph,
        make_sports_lake,
    )
    from repro.linking import LabelLinker

    graph = test_topk_equivalence_property.__dict__.setdefault(
        "_graph", make_sports_graph()
    )
    lake = test_topk_equivalence_property.__dict__.setdefault(
        "_lake", make_sports_lake()
    )
    mapping = test_topk_equivalence_property.__dict__.setdefault(
        "_mapping", LabelLinker(graph).link_lake(lake)
    )
    engine = test_topk_equivalence_property.__dict__.setdefault(
        "_engine",
        TableSearchEngine(lake, mapping, TypeJaccardSimilarity(graph)),
    )
    query = Query.single(f"kg:player{player}", f"kg:team{team}")
    assert topk_search(engine, query, k).table_ids() == \
        engine.search(query, k=k).table_ids()

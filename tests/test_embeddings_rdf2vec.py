"""Tests for the RDF2Vec trainer on knowledge graphs."""

import numpy as np
import pytest

from repro.embeddings import RDF2VecConfig, RDF2VecTrainer, train_rdf2vec
from repro.kg import Entity, KnowledgeGraph


def _cosine(store, a, b):
    return store.cosine(a, b)


class TestRDF2Vec:
    def test_every_entity_gets_a_vector(self, sports_graph,
                                        sports_embeddings):
        for uri in sports_graph.uris():
            assert uri in sports_embeddings

    def test_dimensions_respected(self, sports_embeddings):
        assert sports_embeddings.dimensions == 16

    def test_same_team_players_closer_than_cross_domain(self, sports_graph):
        store = train_rdf2vec(sports_graph, dimensions=24, epochs=8,
                              walks_per_entity=25, walk_length=6, seed=0)
        # Players i and i+8 share a team; cities 2 hops away are not in
        # the player's neighborhood.  Compare means over several pairs so
        # the assertion is robust to embedding noise.
        same_team = np.mean(
            [store.cosine(f"kg:player{i}", f"kg:player{i + 8}")
             for i in range(8)]
        )
        cross = np.mean(
            [store.cosine(f"kg:player{i}", f"kg:city{(i + 2) % 4}")
             for i in range(8)]
        )
        assert same_team > cross

    def test_predicates_excluded_from_store(self, sports_graph):
        store = train_rdf2vec(
            sports_graph, dimensions=8, epochs=1, include_predicates=True,
            walks_per_entity=3,
        )
        assert "playsFor" not in store
        assert "kg:player0" in store

    def test_isolated_entities_still_embedded(self):
        graph = KnowledgeGraph()
        graph.add_entity(Entity("kg:a"))
        graph.add_entity(Entity("kg:b"))
        graph.add_edge("kg:a", "p", "kg:b")
        graph.add_entity(Entity("kg:lonely"))
        store = train_rdf2vec(graph, dimensions=4, epochs=1)
        assert "kg:lonely" in store

    def test_determinism(self, sports_graph):
        s1 = train_rdf2vec(sports_graph, dimensions=8, epochs=1, seed=5)
        s2 = train_rdf2vec(sports_graph, dimensions=8, epochs=1, seed=5)
        assert np.allclose(s1.vector("kg:team0"), s2.vector("kg:team0"))

    def test_config_defaults(self):
        config = RDF2VecConfig()
        assert config.dimensions == 32
        assert config.walk_length == 4

    def test_trainer_uses_config(self, sports_graph):
        trainer = RDF2VecTrainer(
            sports_graph, RDF2VecConfig(dimensions=6, epochs=1,
                                        walks_per_entity=2)
        )
        store = trainer.train()
        assert store.dimensions == 6

"""Tests for the experiment runner."""

from repro.core import Query, ResultSet, ScoredTable
from repro.eval import ExperimentRunner, GroundTruth


def _constant_system(table_ids):
    def system(query, k):
        return ResultSet(
            ScoredTable(1.0 - i / 100, tid)
            for i, tid in enumerate(table_ids)
        ).top(k)
    return system


class TestExperimentRunner:
    def _runner(self):
        queries = {
            "q1": Query.single("kg:a"),
            "q2": Query.single("kg:b"),
        }
        truths = {
            "q1": GroundTruth({"T1": 3.0, "T2": 1.0}),
            "q2": GroundTruth({"T9": 2.0}),
        }
        return ExperimentRunner(queries, truths)

    def test_perfect_system(self):
        runner = self._runner()
        report = runner.run_system(
            "perfect", _constant_system(["T1", "T2"]), k=2,
            query_ids=["q1"],
        )
        assert report.ndcg_summary()["mean"] == 1.0
        assert report.recall_summary()["mean"] == 1.0
        assert len(report.outcomes) == 1

    def test_wrong_system(self):
        runner = self._runner()
        report = runner.run_system(
            "wrong", _constant_system(["X", "Y"]), k=2
        )
        assert report.ndcg_summary()["mean"] == 0.0

    def test_all_queries_used_by_default(self):
        runner = self._runner()
        report = runner.run_system("s", _constant_system(["T1"]), k=5)
        assert {o.query_id for o in report.outcomes} == {"q1", "q2"}

    def test_missing_ground_truth_scores_zero(self):
        runner = ExperimentRunner({"q": Query.single("kg:a")}, {})
        report = runner.run_system("s", _constant_system(["T1"]), k=5)
        assert report.outcomes[0].ndcg == 0.0

    def test_timing_recorded(self):
        runner = self._runner()
        report = runner.run_system("s", _constant_system(["T1"]), k=5)
        assert report.mean_seconds() >= 0.0
        assert all(o.seconds >= 0.0 for o in report.outcomes)

    def test_run_all(self):
        runner = self._runner()
        reports = runner.run_all(
            {
                "a": _constant_system(["T1"]),
                "b": _constant_system(["T9"]),
            },
            k=3,
        )
        assert set(reports) == {"a", "b"}

    def test_format_row(self):
        runner = self._runner()
        report = runner.run_system("name", _constant_system(["T1"]), k=3)
        row = report.format_row()
        assert "name" in row
        assert "NDCG" in row

    def test_empty_report_summaries(self):
        runner = self._runner()
        report = runner.run_system("s", _constant_system([]), k=3,
                                   query_ids=[])
        assert report.mean_seconds() == 0.0
        assert report.ndcg_summary()["n"] == 0

"""Tests for column/table profiling."""

import pytest

from repro.datalake import Table
from repro.datalake.profiling import (
    ColumnKind,
    profile_column,
    profile_table,
)
from repro.linking import EntityMapping


@pytest.fixture()
def table():
    return Table(
        "T",
        ["Player", "Year", "Mixed", "Nulls"],
        [
            ["Ron Santo", 1970, "x", None],
            ["Ernie Banks", 1971, 2, None],
            ["Billy Williams", 1972, 3, None],
            [None, 1973, "y", None],
        ],
    )


@pytest.fixture()
def mapping():
    m = EntityMapping()
    m.link("T", 0, 0, "kg:santo")
    m.link("T", 1, 0, "kg:banks")
    return m


class TestProfileColumn:
    def test_text_column(self, table, mapping):
        profile = profile_column(table, 0, mapping)
        assert profile.kind is ColumnKind.TEXT
        assert profile.name == "Player"
        assert profile.null_fraction == 0.25
        assert profile.distinct_values == 3
        assert profile.entity_link_fraction == 0.5
        assert profile.is_entity_candidate

    def test_numeric_column(self, table):
        profile = profile_column(table, 1)
        assert profile.kind is ColumnKind.NUMERIC
        assert not profile.is_entity_candidate
        assert profile.entity_link_fraction == 0.0

    def test_mixed_column(self, table):
        assert profile_column(table, 2).kind is ColumnKind.MIXED

    def test_empty_column(self, table):
        profile = profile_column(table, 3)
        assert profile.kind is ColumnKind.EMPTY
        assert profile.null_fraction == 1.0
        assert profile.distinct_values == 0

    def test_zero_row_table(self):
        empty = Table("E", ["A"], [])
        profile = profile_column(empty, 0)
        assert profile.kind is ColumnKind.EMPTY
        assert profile.null_fraction == 0.0


class TestProfileTable:
    def test_partitions_columns(self, table, mapping):
        profile = profile_table(table, mapping)
        assert [c.name for c in profile.entity_columns] == [
            "Player", "Mixed",
        ]
        assert [c.name for c in profile.numeric_columns] == ["Year"]

    def test_report(self, table):
        report = profile_table(table).format_report()
        assert "Player" in report
        assert "numeric" in report

    def test_generated_tables_have_expected_shape(self, small_benchmark):
        """Generator tables: entity columns text-ish, filler numeric."""
        for table in list(small_benchmark.lake)[:20]:
            profile = profile_table(table, small_benchmark.mapping)
            assert profile.entity_columns, table.table_id
            linked_fractions = [
                c.entity_link_fraction for c in profile.columns
            ]
            # Links only ever appear in entity-candidate columns.
            for column in profile.numeric_columns:
                assert column.entity_link_fraction == 0.0
            assert any(f > 0 for f in linked_fractions)

"""Tests for NDCG / recall / precision metrics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval import dcg, ndcg_at_k, precision_at_k, recall_at_k, summarize


GAINS = {"A": 3.0, "B": 2.0, "C": 1.0}


class TestDcg:
    def test_empty(self):
        assert dcg([]) == 0.0

    def test_discounting(self):
        assert dcg([3.0, 2.0]) == pytest.approx(3.0 + 2.0 / math.log2(3))

    def test_zero_gains_skipped(self):
        assert dcg([0.0, 0.0, 1.0]) == pytest.approx(1.0 / math.log2(4))


class TestNdcg:
    def test_perfect_ranking(self):
        assert ndcg_at_k(["A", "B", "C"], GAINS, 3) == pytest.approx(1.0)

    def test_reversed_ranking_below_one(self):
        assert ndcg_at_k(["C", "B", "A"], GAINS, 3) < 1.0

    def test_irrelevant_results_zero(self):
        assert ndcg_at_k(["X", "Y"], GAINS, 2) == 0.0

    def test_empty_ground_truth(self):
        assert ndcg_at_k(["A"], {}, 10) == 0.0

    def test_k_zero(self):
        assert ndcg_at_k(["A"], GAINS, 0) == 0.0

    def test_k_smaller_than_results(self):
        # Only the top-k slice counts.
        full = ndcg_at_k(["X", "A"], GAINS, 2)
        cut = ndcg_at_k(["X", "A"], GAINS, 1)
        assert cut == 0.0
        assert full > 0.0

    @given(st.lists(st.sampled_from(["A", "B", "C", "X", "Y"]), max_size=5,
                    unique=True))
    def test_bounds(self, ranking):
        value = ndcg_at_k(ranking, GAINS, 5)
        assert 0.0 <= value <= 1.0 + 1e-12


class TestRecall:
    def test_full_recall(self):
        assert recall_at_k(["A", "B", "C"], GAINS, 3) == 1.0

    def test_partial_recall(self):
        assert recall_at_k(["A", "X", "Y"], GAINS, 3) == pytest.approx(1 / 3)

    def test_ground_truth_truncated_to_top_k(self):
        # k=1: only the single highest-gain table counts as relevant.
        assert recall_at_k(["A"], GAINS, 1) == 1.0
        assert recall_at_k(["B"], GAINS, 1) == 0.0

    def test_empty_cases(self):
        assert recall_at_k([], GAINS, 3) == 0.0
        assert recall_at_k(["A"], {}, 3) == 0.0
        assert recall_at_k(["A"], GAINS, 0) == 0.0


class TestPrecision:
    def test_all_relevant(self):
        assert precision_at_k(["A", "B"], GAINS, 2) == 1.0

    def test_half_relevant(self):
        assert precision_at_k(["A", "X"], GAINS, 2) == 0.5

    def test_empty(self):
        assert precision_at_k([], GAINS, 5) == 0.0


class TestSummarize:
    def test_empty(self):
        summary = summarize([])
        assert summary["mean"] == 0.0
        assert summary["n"] == 0

    def test_single_value(self):
        summary = summarize([0.4])
        assert summary["mean"] == summary["median"] == 0.4
        assert summary["q1"] == summary["q3"] == 0.4

    def test_quartiles(self):
        summary = summarize([0.0, 1.0, 2.0, 3.0, 4.0])
        assert summary["median"] == 2.0
        assert summary["q1"] == 1.0
        assert summary["q3"] == 3.0
        assert summary["mean"] == 2.0
        assert summary["n"] == 5

    def test_unsorted_input(self):
        assert summarize([3.0, 1.0, 2.0])["median"] == 2.0

"""Tests for the vectorized scoring kernel (corpus index + engine).

The load-bearing property is *parity*: the vectorized engine must score
every table within 1e-9 of the scalar engine across tuple semantics,
aggregation modes, similarity families, nulls, unlinked cells, tables
without rows, and entities missing embeddings.  The randomized suite
here pins that, plus the index lifecycle under dynamic lakes, snapshot
swaps, parallel sharding, and pickling.
"""

import pickle
import random

import numpy as np
import pytest

from repro.core.aggregation import RowAggregation, TupleSemantics
from repro.core.kernel import (
    ENGINE_KINDS,
    CorpusIndex,
    VectorizedTableSearchEngine,
    compile_kernel,
    engine_class,
)
from repro.core.kernel.index import (
    EmbeddingMatmulKernel,
    ScalarLoopKernel,
    TypeBitmapKernel,
)
from repro.core.parallel import ParallelSearchEngine
from repro.core.query import Query
from repro.core.search import ScoringProfile, TableSearchEngine
from repro.core.topk import topk_search
from repro.datalake import DataLake, Table
from repro.embeddings import EmbeddingStore
from repro.exceptions import ConfigurationError
from repro.linking import EntityMapping
from repro.serve.snapshot import SnapshotManager
from repro.similarity.base import (
    EntitySimilarity,
    ExactMatchSimilarity,
    WeightedCombination,
)
from repro.similarity.embedding import EmbeddingCosineSimilarity
from repro.similarity.types import MappingTypeSimilarity
from repro.system import Thetis

TOLERANCE = 1e-9

ENTITIES = [f"kg:e{i}" for i in range(40)]


class SuffixSimilarity(EntitySimilarity):
    """Custom sigma with no batched form (exercises ScalarLoopKernel)."""

    def similarity(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        return 0.5 if a[-1] == b[-1] else 0.0

    @property
    def is_symmetric(self) -> bool:
        return True


def make_types(rng):
    pool = [f"Type{i}" for i in range(12)]
    types = {}
    for uri in ENTITIES:
        if rng.random() < 0.15:
            types[uri] = frozenset()  # typeless entity
        else:
            types[uri] = frozenset(rng.sample(pool, rng.randint(1, 5)))
    return types


def make_store(rng):
    npr = np.random.default_rng(rng.randint(0, 2**31))
    vectors = {
        uri: npr.normal(size=8)
        for uri in ENTITIES
        if rng.random() >= 0.2  # ~20% of entities miss an embedding
    }
    vectors["kg:anchor"] = npr.normal(size=8)  # store is never empty
    return EmbeddingStore(vectors)


def make_sigma(kind, rng):
    if kind == "exact":
        return ExactMatchSimilarity()
    if kind == "types":
        return MappingTypeSimilarity(make_types(rng))
    if kind == "embeddings":
        return EmbeddingCosineSimilarity(make_store(rng))
    if kind == "combo":
        return WeightedCombination(
            [MappingTypeSimilarity(make_types(rng)),
             EmbeddingCosineSimilarity(make_store(rng))],
            [0.6, 0.4],
        )
    assert kind == "custom"
    return SuffixSimilarity()


def make_lake(rng, num_tables=8):
    """Random lake with nulls, unlinked cells, a rowless table (T3),
    and a table with no links at all (T5)."""
    lake, mapping = DataLake(), EntityMapping()
    for t in range(num_tables):
        columns = rng.randint(1, 5)
        num_rows = 0 if t == 3 else rng.randint(1, 6)
        rows = [
            [f"v{r}.{c}" if rng.random() < 0.8 else None
             for c in range(columns)]
            for r in range(num_rows)
        ]
        table_id = f"T{t}"
        lake.add(Table(table_id, [f"a{c}" for c in range(columns)], rows))
        if t == 5:
            continue
        for r in range(num_rows):
            for c in range(columns):
                if rows[r][c] is not None and rng.random() < 0.6:
                    mapping.link(table_id, r, c, rng.choice(ENTITIES))
    return lake, mapping


def make_queries(rng):
    return [
        Query.single(rng.choice(ENTITIES)),
        Query([rng.sample(ENTITIES, 3), rng.sample(ENTITIES, 2)]),
        Query([rng.sample(ENTITIES, 7)]),  # wider than any table
        Query([[rng.choice(ENTITIES), "kg:not-in-the-corpus"]]),
    ]


def engine_pair(lake, mapping, sigma, **kwargs):
    scalar = TableSearchEngine(lake, mapping, sigma, **kwargs)
    vector = VectorizedTableSearchEngine(lake, mapping, sigma, **kwargs)
    return scalar, vector


def assert_score_parity(scalar, vector, queries, lake):
    for query in queries:
        for table in lake:
            a = scalar.score_table(query, table)
            b = vector.score_table(query, table)
            assert a.relevant == b.relevant, table.table_id
            assert abs(a.score - b.score) <= TOLERANCE, table.table_id
            assert len(a.tuple_scores) == len(b.tuple_scores)
            for x, y in zip(a.tuple_scores, b.tuple_scores):
                assert abs(x - y) <= TOLERANCE, table.table_id


# ----------------------------------------------------------------------
# Randomized scalar-vs-vectorized parity
# ----------------------------------------------------------------------
class TestScoreParity:
    @pytest.mark.parametrize("sigma_kind", ["exact", "types", "embeddings",
                                            "combo", "custom"])
    @pytest.mark.parametrize("semantics", [TupleSemantics.PER_ENTITY,
                                           TupleSemantics.PER_ROW])
    @pytest.mark.parametrize("row_agg", [RowAggregation.MAX,
                                         RowAggregation.AVG])
    def test_score_table_parity(self, sigma_kind, semantics, row_agg):
        seeds = {"exact": 3, "types": 5, "embeddings": 7, "combo": 11,
                 "custom": 13}
        rng = random.Random(seeds[sigma_kind])
        lake, mapping = make_lake(rng)
        sigma = make_sigma(sigma_kind, rng)
        scalar, vector = engine_pair(
            lake, mapping, sigma,
            tuple_semantics=semantics, row_aggregation=row_agg,
        )
        assert_score_parity(scalar, vector, make_queries(rng), lake)

    @pytest.mark.parametrize("drop_irrelevant", [True, False])
    def test_parity_without_dropping_irrelevant(self, drop_irrelevant):
        rng = random.Random(23)
        lake, mapping = make_lake(rng)
        scalar, vector = engine_pair(
            lake, mapping, make_sigma("types", rng),
            drop_irrelevant=drop_irrelevant,
        )
        assert_score_parity(scalar, vector, make_queries(rng), lake)

    def test_parity_on_fully_unlinked_lake(self):
        lake, mapping = DataLake(), EntityMapping()
        lake.add(Table("T0", ["a"], [["x"], ["y"]]))
        scalar, vector = engine_pair(
            lake, mapping, ExactMatchSimilarity(), drop_irrelevant=False
        )
        query = Query.single(ENTITIES[0])
        a = scalar.score_table(query, lake.get("T0"))
        b = vector.score_table(query, lake.get("T0"))
        assert abs(a.score - b.score) <= TOLERANCE

    def test_search_ranking_parity(self):
        rng = random.Random(29)
        lake, mapping = make_lake(rng, num_tables=10)
        scalar, vector = engine_pair(lake, mapping, make_sigma("combo", rng))
        for query in make_queries(rng):
            a = scalar.search(query)
            b = vector.search(query)
            assert {s.table_id: s.score for s in a}.keys() == \
                {s.table_id: s.score for s in b}.keys()
            scores_a = {s.table_id: s.score for s in a}
            for scored in b:
                assert abs(scores_a[scored.table_id] - scored.score) \
                    <= TOLERANCE

    def test_search_ranking_bit_identical_for_types(self):
        # The bitmap Jaccard path is integer arithmetic end to end, so
        # even the ranking order must match the scalar engine exactly.
        rng = random.Random(31)
        lake, mapping = make_lake(rng, num_tables=10)
        sigma = make_sigma("types", rng)
        scalar, vector = engine_pair(lake, mapping, sigma)
        for query in make_queries(rng):
            a = scalar.search(query)
            b = vector.search(query)
            assert [(s.table_id, s.score) for s in a] == \
                [(s.table_id, s.score) for s in b]

    def test_topk_search_parity(self):
        rng = random.Random(37)
        lake, mapping = make_lake(rng, num_tables=10)
        scalar, vector = engine_pair(lake, mapping, make_sigma("types", rng))
        query = Query([rng.sample(ENTITIES, 3)])
        a = topk_search(scalar, query, 4)
        b = topk_search(vector, query, 4)
        assert [(s.table_id, s.score) for s in a] == \
            [(s.table_id, s.score) for s in b]

    @pytest.mark.parametrize("sigma_kind", ["exact", "types", "embeddings",
                                            "combo"])
    @pytest.mark.parametrize("semantics", [TupleSemantics.PER_ENTITY,
                                           TupleSemantics.PER_ROW])
    def test_batched_search_parity(self, sigma_kind, semantics):
        # search() takes the whole-lake batched path (one relevance
        # bincount + enumerated assignments for every table at once);
        # it must rank exactly like the scalar per-table loop across
        # semantics, tie-heavy sigmas (exact-match relevance is all 0/1
        # sums), and the wide tuple that skips enumeration entirely.
        rng = random.Random(41)
        lake, mapping = make_lake(rng, num_tables=12)
        scalar, vector = engine_pair(
            lake, mapping, make_sigma(sigma_kind, rng),
            tuple_semantics=semantics,
            row_aggregation=RowAggregation.AVG,
        )
        for query in make_queries(rng):
            a = {s.table_id: s.score for s in scalar.search(query)}
            b = {s.table_id: s.score for s in vector.search(query)}
            assert a.keys() == b.keys()
            for table_id, score in b.items():
                assert abs(a[table_id] - score) <= TOLERANCE, table_id

    def test_candidate_restricted_search_parity(self):
        # The LSH-prefilter path (candidates=...) bypasses the batch
        # and scores per table through the kernel.
        rng = random.Random(43)
        lake, mapping = make_lake(rng, num_tables=10)
        scalar, vector = engine_pair(lake, mapping, make_sigma("types", rng))
        query = Query([rng.sample(ENTITIES, 2)])
        candidates = [table.table_id for table in lake][::2]
        a = scalar.search(query, candidates=candidates)
        b = vector.search(query, candidates=candidates)
        assert [(s.table_id, s.score) for s in a] == \
            [(s.table_id, s.score) for s in b]

    def test_search_on_empty_lake(self):
        scalar, vector = engine_pair(
            DataLake(), EntityMapping(), ExactMatchSimilarity()
        )
        query = Query.single(ENTITIES[0])
        assert list(vector.search(query)) == list(scalar.search(query)) == []


# ----------------------------------------------------------------------
# The compiled index and its kernels
# ----------------------------------------------------------------------
class TestCorpusIndex:
    def test_interning_and_views(self):
        rng = random.Random(41)
        lake, mapping = make_lake(rng)
        index = CorpusIndex(lake, mapping, ExactMatchSimilarity())
        assert index.uris == sorted(index.uris)
        assert index.num_entities == len(index.uris)
        assert len(index) == len(lake)
        assert "T0" in index and "nope" not in index
        assert index.view("nope") is None
        view = index.view("T0")
        table = lake.get("T0")
        assert view.ids.shape == (table.num_rows, table.num_columns)
        # Every non-negative id round-trips through the interning.
        for r in range(table.num_rows):
            for c in range(table.num_columns):
                uri = mapping.entity_at("T0", r, c)
                if uri is None:
                    assert view.ids[r, c] == -1
                else:
                    assert index.uris[view.ids[r, c]] == uri

    def test_nnz_multiset_matches_mapping(self):
        rng = random.Random(43)
        lake, mapping = make_lake(rng)
        index = CorpusIndex(lake, mapping, ExactMatchSimilarity())
        for table in lake:
            view = index.view(table.table_id)
            for column in range(table.num_columns):
                expected = {}
                for uri in mapping.entities_in_column(
                    table.table_id, column
                ):
                    expected[uri] = expected.get(uri, 0) + 1
                mask = view.nnz_columns == column
                got = {
                    index.uris[i]: c
                    for i, c in zip(view.nnz_ids[mask],
                                    view.nnz_counts[mask])
                }
                assert got == expected

    def test_sims_row_memoized_and_read_only(self):
        rng = random.Random(47)
        lake, mapping = make_lake(rng)
        index = CorpusIndex(lake, mapping, make_sigma("types", rng))
        row = index.sims_row(ENTITIES[0])
        assert row is index.sims_row(ENTITIES[0])
        with pytest.raises(ValueError):
            row[0] = 99.0
        stats = index.row_cache_stats()
        assert stats.hits >= 1 and stats.misses >= 1

    def test_sims_row_profile_accounting(self):
        rng = random.Random(53)
        lake, mapping = make_lake(rng)
        index = CorpusIndex(lake, mapping, make_sigma("types", rng))
        profile = ScoringProfile()
        index.sims_row(ENTITIES[1], profile)
        assert profile.similarity_calls == index.num_entities
        assert profile.similarity_misses == index.num_entities
        index.sims_row(ENTITIES[1], profile)  # memo hit: calls only
        assert profile.similarity_calls == 2 * index.num_entities
        assert profile.similarity_misses == index.num_entities


class TestKernels:
    def test_dispatch(self):
        rng = random.Random(59)
        uris = list(ENTITIES)
        id_of = {uri: i for i, uri in enumerate(uris)}
        assert isinstance(
            compile_kernel(make_sigma("types", rng), uris, id_of),
            TypeBitmapKernel,
        )
        assert isinstance(
            compile_kernel(make_sigma("embeddings", rng), uris, id_of),
            EmbeddingMatmulKernel,
        )
        assert isinstance(
            compile_kernel(SuffixSimilarity(), uris, id_of),
            ScalarLoopKernel,
        )

    @pytest.mark.parametrize("kind", ["exact", "types", "embeddings",
                                      "combo", "custom"])
    def test_kernel_row_matches_scalar_sigma(self, kind):
        rng = random.Random(61)
        uris = sorted(rng.sample(ENTITIES, 25))
        id_of = {uri: i for i, uri in enumerate(uris)}
        sigma = make_sigma(kind, rng)
        kernel = compile_kernel(sigma, uris, id_of)
        for uri in uris[:5] + ["kg:not-in-the-corpus"]:
            row = kernel.row(uri)
            for other, index in id_of.items():
                assert abs(row[index] - sigma.similarity(uri, other)) \
                    <= TOLERANCE, (uri, other)

    def test_type_bitmap_exact_across_word_boundary(self):
        # >64 distinct types forces multi-word uint64 bitmaps; the
        # integer popcount Jaccard must stay bit-equal to the scalar.
        rng = random.Random(67)
        pool = [f"Wide{i}" for i in range(130)]
        types = {
            uri: frozenset(rng.sample(pool, rng.randint(1, 40)))
            for uri in ENTITIES
        }
        sigma = MappingTypeSimilarity(types)
        uris = sorted(ENTITIES)
        id_of = {uri: i for i, uri in enumerate(uris)}
        kernel = compile_kernel(sigma, uris, id_of)
        assert isinstance(kernel, TypeBitmapKernel)
        for uri in uris[:10]:
            row = kernel.row(uri)
            for other, index in id_of.items():
                assert row[index] == sigma.similarity(uri, other)


# ----------------------------------------------------------------------
# Engine lifecycle: invalidation, pickling, sharding, serving
# ----------------------------------------------------------------------
class TestEngineLifecycle:
    def test_engine_class_registry(self):
        assert engine_class("scalar") is TableSearchEngine
        assert engine_class("vectorized") is VectorizedTableSearchEngine
        assert set(ENGINE_KINDS) == {"scalar", "vectorized"}
        with pytest.raises(ConfigurationError):
            engine_class("quantum")

    def test_prepare_and_cache_stats(self):
        rng = random.Random(71)
        lake, mapping = make_lake(rng)
        engine = VectorizedTableSearchEngine(
            lake, mapping, make_sigma("types", rng)
        )
        assert "kernel_rows" not in engine.cache_stats()  # index unbuilt
        engine.prepare()
        assert engine._index is not None
        assert "kernel_rows" in engine.cache_stats()

    def test_invalidate_table_is_incremental(self):
        rng = random.Random(73)
        lake, mapping = make_lake(rng)
        engine = VectorizedTableSearchEngine(
            lake, mapping, make_sigma("types", rng)
        )
        first = engine.index()
        base_segment = first.segments[0]
        engine.invalidate_table("T0")
        # The index is updated in place of a teardown: a successor
        # instance exists immediately, shares the untouched segment by
        # reference, and carries a tombstone for the replaced copy.
        second = engine._index
        assert second is not None and second is not first
        assert second.segments[0] is base_segment
        assert second.stats().tombstones == 1
        assert "T0" in second
        # invalidate_cache stays the full-reset hammer.
        engine.invalidate_cache()
        assert engine._index is None

    def test_stale_view_triggers_rebuild(self):
        rng = random.Random(79)
        lake, mapping = make_lake(rng)
        sigma = make_sigma("types", rng)
        scalar, vector = engine_pair(lake, mapping, sigma)
        vector.prepare()
        # Mutate the lake behind the engine's back: the next score of
        # the unknown table must rebuild the index once and agree.
        lake.add(Table("T99", ["a"], [["x"], ["y"]]))
        mapping.link("T99", 0, 0, ENTITIES[0])
        mapping.link("T99", 1, 0, ENTITIES[1])
        scalar.invalidate_table("T99")
        query = Query.single(ENTITIES[0], ENTITIES[1])
        a = scalar.score_table(query, lake.get("T99"))
        b = vector.score_table(query, lake.get("T99"))
        assert abs(a.score - b.score) <= TOLERANCE
        assert "T99" in vector.index()

    def test_foreign_table_falls_back_to_scalar_path(self):
        rng = random.Random(83)
        lake, mapping = make_lake(rng)
        sigma = make_sigma("types", rng)
        scalar, vector = engine_pair(lake, mapping, sigma)
        # A table that is not in the lake at all: the vectorized engine
        # rebuilds once, still misses it, and answers via the scalar
        # path — never wrongly, only slower.
        foreign = Table("GHOST", ["a"], [["x"]])
        mapping.link("GHOST", 0, 0, ENTITIES[2])
        scalar.invalidate_cache()
        vector.invalidate_cache()
        query = Query.single(ENTITIES[2])
        a = scalar.score_table(query, foreign)
        b = vector.score_table(query, foreign)
        assert abs(a.score - b.score) <= TOLERANCE

    def test_pickle_round_trip_preserves_index_and_scores(self):
        rng = random.Random(89)
        lake, mapping = make_lake(rng)
        engine = VectorizedTableSearchEngine(
            lake, mapping, make_sigma("types", rng)
        )
        engine.prepare()
        clone = pickle.loads(pickle.dumps(engine))
        assert clone._index is not None  # compiled arrays travelled
        query = Query.single(ENTITIES[0])
        for table in lake:
            a = engine.score_table(query, table)
            b = clone.score_table(query, table)
            assert a.score == b.score

    def test_thread_sharded_parity(self):
        rng = random.Random(97)
        lake, mapping = make_lake(rng, num_tables=10)
        sigma = make_sigma("combo", rng)
        scalar, vector = engine_pair(lake, mapping, sigma)
        query = Query([rng.sample(ENTITIES, 3)])
        sequential = scalar.search(query)
        with ParallelSearchEngine(vector, workers=2,
                                  backend="thread") as parallel:
            sharded = parallel.search(query)
        scores = {s.table_id: s.score for s in sequential}
        assert scores.keys() == {s.table_id for s in sharded}
        for scored in sharded:
            assert abs(scores[scored.table_id] - scored.score) <= TOLERANCE


class TestThetisIntegration:
    def test_engine_kind_selection(self, sports_lake, sports_graph,
                                   sports_mapping):
        thetis = Thetis(sports_lake, sports_graph, sports_mapping,
                        engine_kind="vectorized")
        assert isinstance(thetis.engine("types"),
                          VectorizedTableSearchEngine)
        default = Thetis(sports_lake, sports_graph, sports_mapping)
        assert type(default.engine("types")) is TableSearchEngine
        with pytest.raises(ConfigurationError):
            Thetis(sports_lake, sports_graph, sports_mapping,
                   engine_kind="quantum")

    def test_search_parity_through_facade(self, sports_lake, sports_graph,
                                          sports_mapping, sports_embeddings):
        query = Query.single("kg:player0", "kg:team0", "kg:city0")
        results = {}
        for kind in ENGINE_KINDS:
            thetis = Thetis(sports_lake, sports_graph, sports_mapping,
                            embeddings=sports_embeddings, engine_kind=kind)
            for method in ("types", "embeddings"):
                results[(kind, method)] = thetis.search(
                    query, k=5, method=method
                )
        for method in ("types", "embeddings"):
            a = results[("scalar", method)]
            b = results[("vectorized", method)]
            assert [s.table_id for s in a] == [s.table_id for s in b]
            for x, y in zip(a, b):
                assert abs(x.score - y.score) <= TOLERANCE

    def test_add_remove_table_rebuilds_index(self, sports_lake,
                                             sports_graph, sports_mapping):
        reference = Thetis(sports_lake, sports_graph, sports_mapping)
        lake, mapping = reference.snapshot_inputs()
        thetis = Thetis(lake, sports_graph, mapping,
                        engine_kind="vectorized")
        query = Query.single("kg:player0", "kg:team0")
        baseline_ids = {s.table_id for s in thetis.search(query, k=100)}
        thetis.add_table(Table(
            "TNEW", ["Player", "Team"],
            [["Player 0", "Team 0"], ["Player 8", "Team 0"]],
        ))
        after_add = thetis.search(query, k=100)
        assert "TNEW" in {s.table_id for s in after_add}
        assert "TNEW" in thetis.engine("types").index()
        thetis.remove_table("TNEW")
        after_remove = {s.table_id for s in thetis.search(query, k=100)}
        assert after_remove == baseline_ids
        assert "TNEW" not in thetis.engine("types").index()

    def test_snapshot_swap_preserves_kind_and_warms_index(
        self, sports_lake, sports_graph, sports_mapping
    ):
        reference = Thetis(sports_lake, sports_graph, sports_mapping)
        lake, mapping = reference.snapshot_inputs()
        manager = SnapshotManager(
            Thetis(lake, sports_graph, mapping, engine_kind="vectorized"),
            warm_method="types",
        )
        try:
            manager.apply(lambda t: t.add_table(Table(
                "TSNAP", ["Player", "Team"],
                [["Player 0", "Team 0"]],
            )))
            current = manager.current.thetis
            assert current.engine_kind == "vectorized"
            engine = current.engine("types")
            assert isinstance(engine, VectorizedTableSearchEngine)
            # warm_method compiled the index off the request path.
            assert engine._index is not None
            assert "TSNAP" in engine.index()
            query = Query.single("kg:player0", "kg:team0")
            with manager.checkout() as snapshot:
                results = snapshot.thetis.search(query, k=100)
            assert "TSNAP" in {s.table_id for s in results}
            manager.apply(lambda t: t.remove_table("TSNAP"))
            assert "TSNAP" not in manager.current.thetis.engine(
                "types"
            ).index()
        finally:
            manager.close()

    def test_profile_counts_under_vectorized_engine(
        self, sports_lake, sports_graph, sports_mapping
    ):
        thetis = Thetis(sports_lake, sports_graph, sports_mapping,
                        engine_kind="vectorized")
        thetis.search(Query.single("kg:player0", "kg:team0"), k=5)
        engine = thetis.engine("types")
        profile = engine.profile
        assert profile.tables_scored > 0
        assert profile.similarity_calls > 0
        assert 0 < profile.similarity_misses <= profile.similarity_calls
        # A repeat query is answered from the row memo: calls keep
        # growing, misses do not.
        misses = profile.similarity_misses
        thetis.search(Query.single("kg:player0", "kg:team0"), k=5)
        assert profile.similarity_calls > 0
        assert profile.similarity_misses == misses
        assert 0.0 < profile.similarity_hit_rate <= 1.0
        stats = engine.cache_stats()
        assert stats["kernel_tuples"].hits > 0
        assert stats["kernel_rows"].misses > 0

"""Tests for MinHash signatures and type shingling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.lsh import MinHasher, TypeShingler, pair_shingles
from repro.similarity import jaccard


class TestPairShingles:
    def test_includes_diagonal(self):
        shingles = pair_shingles([3], num_types=10)
        assert shingles == {33}

    def test_pairs_encoded(self):
        shingles = pair_shingles([1, 2], num_types=10)
        assert shingles == {11, 12, 22}

    def test_duplicates_ignored(self):
        assert pair_shingles([1, 1, 2], 10) == pair_shingles([1, 2], 10)

    def test_empty(self):
        assert pair_shingles([], 10) == frozenset()

    def test_count_is_triangular(self):
        shingles = pair_shingles(range(5), num_types=10)
        assert len(shingles) == 5 * 6 // 2


class TestMinHasher:
    def test_signature_shape_and_determinism(self):
        hasher = MinHasher(16, seed=1)
        sig = hasher.signature({1, 2, 3})
        assert sig.shape == (16,)
        assert np.array_equal(sig, MinHasher(16, seed=1).signature({1, 2, 3}))

    def test_empty_set_returns_none(self):
        assert MinHasher(8).signature(set()) is None

    def test_identical_sets_identical_signatures(self):
        hasher = MinHasher(32)
        assert np.array_equal(
            hasher.signature({5, 9}), hasher.signature({9, 5})
        )

    def test_invalid_num_hashes(self):
        with pytest.raises(ConfigurationError):
            MinHasher(0)

    def test_estimate_jaccard_bounds(self):
        hasher = MinHasher(64, seed=2)
        a = hasher.signature({1, 2, 3, 4})
        b = hasher.signature({3, 4, 5, 6})
        estimate = hasher.estimate_jaccard(a, b)
        assert 0.0 <= estimate <= 1.0

    def test_estimate_jaccard_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            MinHasher(8).estimate_jaccard(np.zeros(8), np.zeros(4))

    @settings(max_examples=30, deadline=None)
    @given(
        st.frozensets(st.integers(0, 200), min_size=1, max_size=40),
        st.frozensets(st.integers(0, 200), min_size=1, max_size=40),
    )
    def test_estimate_tracks_true_jaccard(self, a, b):
        """With many hashes, the estimate approximates true Jaccard."""
        hasher = MinHasher(256, seed=0)
        estimate = hasher.estimate_jaccard(hasher.signature(a),
                                           hasher.signature(b))
        truth = jaccard(a, b)
        assert abs(estimate - truth) < 0.25


class TestTypeShingler:
    def test_excluded_types_removed(self):
        shingler = TypeShingler(["A", "B", "C"], excluded=["A"])
        assert "A" not in shingler
        assert shingler.shingles(["A"]) == frozenset()
        assert shingler.shingles(["A", "B"]) == shingler.shingles(["B"])

    def test_unknown_types_ignored(self):
        shingler = TypeShingler(["A", "B"])
        assert shingler.shingles(["Z"]) == frozenset()

    def test_same_types_same_shingles(self):
        shingler = TypeShingler(["A", "B", "C"])
        assert shingler.shingles(["A", "C"]) == shingler.shingles(["C", "A"])

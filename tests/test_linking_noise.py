"""Tests for coverage reduction and the noisy-linker simulator."""

import pytest

from repro.exceptions import ConfigurationError
from repro.linking import NoisyLinker, coverage_of, reduce_coverage


@pytest.fixture()
def cell_counts(sports_lake):
    return {t.table_id: t.num_cells for t in sports_lake}


class TestReduceCoverage:
    def test_caps_every_table(self, sports_mapping, cell_counts):
        reduced = reduce_coverage(sports_mapping, 0.25, cell_counts, seed=1)
        for table_id, count in cell_counts.items():
            assert reduced.linked_cell_count(table_id) <= 0.25 * count

    def test_zero_cap_removes_all(self, sports_mapping, cell_counts):
        reduced = reduce_coverage(sports_mapping, 0.0, cell_counts)
        assert len(reduced) == 0

    def test_full_cap_keeps_all(self, sports_mapping, cell_counts):
        reduced = reduce_coverage(sports_mapping, 1.0, cell_counts)
        assert len(reduced) == len(sports_mapping)

    def test_kept_links_are_correct(self, sports_mapping, cell_counts):
        reduced = reduce_coverage(sports_mapping, 0.5, cell_counts, seed=2)
        for ref, uri in reduced.all_links():
            assert sports_mapping.entity_at(*ref) == uri

    def test_invalid_cap(self, sports_mapping, cell_counts):
        with pytest.raises(ConfigurationError):
            reduce_coverage(sports_mapping, 1.5, cell_counts)

    def test_deterministic(self, sports_mapping, cell_counts):
        a = reduce_coverage(sports_mapping, 0.3, cell_counts, seed=7)
        b = reduce_coverage(sports_mapping, 0.3, cell_counts, seed=7)
        assert dict(a.all_links()) == dict(b.all_links())

    def test_coverage_of(self, sports_mapping, cell_counts):
        fractions = coverage_of(sports_mapping, cell_counts)
        # Fixture tables: 12 linked cells of 16.
        assert all(abs(f - 0.75) < 1e-12 for f in fractions.values())


class TestNoisyLinker:
    def test_parameter_validation(self, sports_graph):
        with pytest.raises(ConfigurationError):
            NoisyLinker(sports_graph, recall=1.5)
        with pytest.raises(ConfigurationError):
            NoisyLinker(sports_graph, precision=-0.1)

    def test_recall_zero_drops_everything(self, sports_graph, sports_mapping):
        noisy = NoisyLinker(sports_graph, recall=0.0).corrupt(sports_mapping)
        assert len(noisy) == 0

    def test_perfect_linker_is_identity(self, sports_graph, sports_mapping):
        linker = NoisyLinker(sports_graph, recall=1.0, precision=1.0)
        noisy = linker.corrupt(sports_mapping)
        assert dict(noisy.all_links()) == dict(sports_mapping.all_links())
        assert linker.f1(sports_mapping, noisy) == 1.0

    def test_low_precision_introduces_wrong_links(self, sports_graph,
                                                  sports_mapping):
        linker = NoisyLinker(sports_graph, recall=1.0, precision=0.0, seed=5)
        noisy = linker.corrupt(sports_mapping)
        gold = dict(sports_mapping.all_links())
        wrong = sum(1 for ref, uri in noisy.all_links() if gold[ref] != uri)
        assert wrong == len(noisy) > 0

    def test_f1_matches_configuration_roughly(self, sports_graph,
                                              sports_mapping):
        linker = NoisyLinker(sports_graph, recall=0.6, precision=0.35, seed=3)
        noisy = linker.corrupt(sports_mapping)
        f1 = linker.f1(sports_mapping, noisy)
        # Expected F1 ~ 2*p*r'/(p+r') with r' = recall*precision = 0.21.
        assert 0.05 < f1 < 0.55

    def test_f1_empty_noisy(self, sports_graph, sports_mapping):
        linker = NoisyLinker(sports_graph, recall=0.0)
        noisy = linker.corrupt(sports_mapping)
        assert linker.f1(sports_mapping, noisy) == 0.0

    def test_wrong_links_prefer_same_type(self, sports_graph, sports_mapping):
        linker = NoisyLinker(sports_graph, recall=1.0, precision=0.0, seed=9)
        noisy = linker.corrupt(sports_mapping)
        gold = dict(sports_mapping.all_links())
        same_type = 0
        total = 0
        for ref, uri in noisy.all_links():
            total += 1
            gold_types = sports_graph.get(gold[ref]).types
            if sports_graph.get(uri).types & gold_types:
                same_type += 1
        assert same_type / total > 0.9

"""Tests for the Thetis facade."""

import pytest

from repro import Query, Thetis
from repro.core import RowAggregation
from repro.exceptions import ConfigurationError
from repro.lsh import LSHConfig


@pytest.fixture(scope="module")
def thetis(sports_lake, sports_mapping, sports_graph, sports_embeddings):
    return Thetis(sports_lake, sports_graph, sports_mapping,
                  embeddings=sports_embeddings)


class TestEngines:
    def test_types_engine_cached(self, thetis):
        assert thetis.engine("types") is thetis.engine("types")

    def test_embeddings_engine(self, thetis):
        engine = thetis.engine("embeddings")
        assert engine.sigma.name == "embeddings"

    def test_unknown_method(self, thetis):
        with pytest.raises(ConfigurationError):
            thetis.engine("bogus")

    def test_embeddings_required(self, sports_lake, sports_mapping,
                                 sports_graph):
        bare = Thetis(sports_lake, sports_graph, sports_mapping)
        with pytest.raises(ConfigurationError):
            bare.engine("embeddings")

    def test_train_embeddings_attaches(self, sports_lake, sports_mapping,
                                       sports_graph):
        bare = Thetis(sports_lake, sports_graph, sports_mapping)
        store = bare.train_embeddings(dimensions=8, epochs=1,
                                      walks_per_entity=3)
        assert bare.embeddings is store
        assert bare.engine("embeddings") is not None


class TestSearch:
    def test_types_search_finds_exact_table(self, thetis):
        results = thetis.search(
            Query.single("kg:player0", "kg:team0", "kg:city0"), k=5
        )
        assert results.table_ids()[0] == "T00"

    def test_embeddings_search(self, thetis):
        results = thetis.search(
            Query.single("kg:player0", "kg:team0"), k=5,
            method="embeddings",
        )
        assert len(results) == 5

    def test_lsh_search_preserves_top_results(self, thetis):
        query = Query.single("kg:player0", "kg:team0", "kg:city0")
        exact = thetis.search(query, k=3)
        approx = thetis.search(query, k=3, use_lsh=True,
                               lsh_config=LSHConfig(32, 8))
        assert exact.table_ids()[0] == approx.table_ids()[0]

    def test_prefilter_cached_per_config(self, thetis):
        a = thetis.prefilter("types", LSHConfig(32, 8))
        b = thetis.prefilter("types", LSHConfig(32, 8))
        c = thetis.prefilter("types", LSHConfig(16, 8))
        assert a is b
        assert a is not c

    def test_prefilter_unknown_method(self, thetis):
        with pytest.raises(ConfigurationError):
            thetis.prefilter("bogus")

    def test_prefilter_requires_embeddings(self, sports_lake, sports_mapping,
                                           sports_graph):
        bare = Thetis(sports_lake, sports_graph, sports_mapping)
        with pytest.raises(ConfigurationError):
            bare.prefilter("embeddings")

    def test_row_aggregation_propagated(self, sports_lake, sports_mapping,
                                        sports_graph):
        avg = Thetis(sports_lake, sports_graph, sports_mapping,
                     row_aggregation=RowAggregation.AVG)
        assert avg.engine("types").row_aggregation is RowAggregation.AVG

"""Per-rule fixtures for the repro.analysis rule packs.

Every shipped rule gets at least one triggering fixture, one passing
fixture, and one pragma-suppressed fixture.  Fixtures are written to
``tmp_path`` under subdirectories that satisfy each rule's path scope
(``kernel/`` for the kernel-safety pack, ``core/`` for the scoped
determinism rules).
"""

import textwrap

import pytest

from repro.analysis.engine import LintEngine
from repro.analysis.rules import ALL_RULES, get_rules, rules_by_id


def lint(tmp_path, relpath, text, rules=None):
    """Lint one dedented fixture file; return the active findings."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    engine = LintEngine(get_rules(rules) if rules else ALL_RULES)
    return engine.run([path]).findings


def rule_ids(findings):
    return [finding.rule for finding in findings]


# ----------------------------------------------------------------------
# Rule catalog sanity
# ----------------------------------------------------------------------
def test_catalog_is_well_formed():
    from repro.analysis.rules import flow_rules

    registry = rules_by_id()
    # The flow pack contributes the ids only it defines (lock-order,
    # wire-taint, dtype-flow); the lexical pack keeps every one of its
    # own, including guarded-attr-outside-lock.
    assert len(registry) == len(ALL_RULES) + len(flow_rules())
    for rule in ALL_RULES + flow_rules():
        assert rule.id
        assert rule.severity in ("info", "warning", "error")
        assert rule.description


def test_get_rules_unknown_id_raises():
    from repro.exceptions import AnalysisError

    with pytest.raises(AnalysisError):
        get_rules(["no-such-rule"])


# ----------------------------------------------------------------------
# guarded-attr-outside-lock
# ----------------------------------------------------------------------
GUARDED_CLASS = """\
    import threading

    class Cache:
        def __init__(self):
            self._lock = threading.Lock()
            self._data = {{}}  # guarded-by: _lock

        def read(self):
            {body}
"""


def test_guarded_attr_flags_unlocked_access(tmp_path):
    findings = lint(
        tmp_path, "mod.py",
        GUARDED_CLASS.format(body="return self._data"),
        rules=["guarded-attr-outside-lock"],
    )
    assert rule_ids(findings) == ["guarded-attr-outside-lock"]
    assert "_data" in findings[0].message
    assert findings[0].severity == "error"


def test_guarded_attr_allows_locked_access_and_init(tmp_path):
    findings = lint(
        tmp_path, "mod.py",
        GUARDED_CLASS.format(
            body="with self._lock:\n                return self._data"
        ),
        rules=["guarded-attr-outside-lock"],
    )
    assert findings == []


def test_guarded_attr_pragma_suppresses(tmp_path):
    findings = lint(
        tmp_path, "mod.py",
        GUARDED_CLASS.format(
            body="return self._data  # lint: disable=guarded-attr-outside-lock"
        ),
        rules=["guarded-attr-outside-lock"],
    )
    assert findings == []


def test_guarded_attr_nested_function_loses_the_lock(tmp_path):
    # A closure defined under the lock runs later, without it.
    findings = lint(
        tmp_path, "mod.py",
        GUARDED_CLASS.format(
            body=(
                "with self._lock:\n"
                "                def later():\n"
                "                    return self._data\n"
                "                return later"
            )
        ),
        rules=["guarded-attr-outside-lock"],
    )
    assert rule_ids(findings) == ["guarded-attr-outside-lock"]


# ----------------------------------------------------------------------
# lock-in-async
# ----------------------------------------------------------------------
def test_lock_in_async_flags_sync_with(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        class Server:
            async def handle(self):
                with self._lock:
                    return 1
        """,
        rules=["lock-in-async"],
    )
    assert rule_ids(findings) == ["lock-in-async"]


def test_lock_in_async_ignores_sync_defs_and_async_locks(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        class Server:
            def handle_sync(self):
                with self._lock:
                    return 1

            async def handle(self):
                async with self._lock:
                    return 1

            async def stream(self, path):
                with self.tracker:
                    return 2
        """,
        rules=["lock-in-async"],
    )
    assert findings == []


def test_lock_in_async_pragma_suppresses(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        class Server:
            async def handle(self):
                with self._lock:  # lint: disable=lock-in-async
                    return 1
        """,
        rules=["lock-in-async"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# blocking-call-in-async
# ----------------------------------------------------------------------
def test_blocking_call_in_async_flags_sleep_and_open(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        import time

        async def handle():
            time.sleep(1)
            with open("x") as f:
                return f.read()
        """,
        rules=["blocking-call-in-async"],
    )
    assert rule_ids(findings) == ["blocking-call-in-async"] * 2


def test_blocking_call_allows_sync_defs_and_executor_helpers(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        import asyncio
        import time

        def sync_work():
            time.sleep(1)

        async def handle(loop):
            def in_executor():
                return open("x").read()
            await loop.run_in_executor(None, in_executor)
            await asyncio.sleep(1)
        """,
        rules=["blocking-call-in-async"],
    )
    assert findings == []


def test_blocking_call_pragma_suppresses(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        import time

        async def handle():
            time.sleep(1)  # lint: disable=blocking-call-in-async
        """,
        rules=["blocking-call-in-async"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# unseeded-random
# ----------------------------------------------------------------------
def test_unseeded_random_flags_global_state_and_seedless_rng(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        import random
        import numpy as np

        def roll():
            a = random.random()
            b = np.random.default_rng()
            c = np.random.shuffle([1, 2])
            return a, b, c
        """,
        rules=["unseeded-random"],
    )
    assert rule_ids(findings) == ["unseeded-random"] * 3


def test_unseeded_random_allows_seeded_instances(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        import random
        import numpy as np

        def roll(seed):
            rng = np.random.default_rng(seed)
            pyrng = random.Random(0)
            return rng.random(), pyrng.random()
        """,
        rules=["unseeded-random"],
    )
    assert findings == []


def test_unseeded_random_pragma_suppresses(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        import random

        def roll():
            return random.random()  # lint: disable=unseeded-random
        """,
        rules=["unseeded-random"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# unordered-set-order  (scoped to core/ and lsh/)
# ----------------------------------------------------------------------
def test_unordered_set_order_flags_core_sinks(tmp_path):
    findings = lint(
        tmp_path, "core/mod.py", """\
        def keys(mapping):
            ids = list({x for x in mapping})
            label = ",".join({"a", "b"})
            return ids, label
        """,
        rules=["unordered-set-order"],
    )
    assert rule_ids(findings) == ["unordered-set-order"] * 2


def test_unordered_set_order_allows_sorted_and_out_of_scope(tmp_path):
    clean = lint(
        tmp_path, "core/clean.py", """\
        def keys(mapping):
            return sorted({x for x in mapping})
        """,
        rules=["unordered-set-order"],
    )
    assert clean == []
    out_of_scope = lint(
        tmp_path, "util/mod.py", """\
        def keys(mapping):
            return list({x for x in mapping})
        """,
        rules=["unordered-set-order"],
    )
    assert out_of_scope == []


def test_unordered_set_order_pragma_suppresses(tmp_path):
    findings = lint(
        tmp_path, "core/mod.py", """\
        def keys(mapping):
            return list({x for x in mapping})  # lint: disable=unordered-set-order
        """,
        rules=["unordered-set-order"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# wall-clock-in-scoring  (scoped to core/)
# ----------------------------------------------------------------------
def test_wall_clock_flags_time_time_in_core(tmp_path):
    findings = lint(
        tmp_path, "core/mod.py", """\
        import time

        def score():
            return time.time()
        """,
        rules=["wall-clock-in-scoring"],
    )
    assert rule_ids(findings) == ["wall-clock-in-scoring"]


def test_wall_clock_allows_perf_counter_and_out_of_scope(tmp_path):
    clean = lint(
        tmp_path, "core/clean.py", """\
        import time

        def score():
            return time.perf_counter()
        """,
        rules=["wall-clock-in-scoring"],
    )
    assert clean == []
    out_of_scope = lint(
        tmp_path, "serve/mod.py", """\
        import time

        def stamp():
            return time.time()
        """,
        rules=["wall-clock-in-scoring"],
    )
    assert out_of_scope == []


def test_wall_clock_pragma_suppresses(tmp_path):
    findings = lint(
        tmp_path, "core/mod.py", """\
        import time

        def score():
            return time.time()  # lint: disable=wall-clock-in-scoring
        """,
        rules=["wall-clock-in-scoring"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# missing-dtype  (scoped to kernel/)
# ----------------------------------------------------------------------
def test_missing_dtype_flags_bare_allocations(tmp_path):
    findings = lint(
        tmp_path, "kernel/mod.py", """\
        import numpy as np

        def alloc(n):
            return np.zeros(n)
        """,
        rules=["missing-dtype"],
    )
    assert rule_ids(findings) == ["missing-dtype"]


def test_missing_dtype_allows_explicit_dtype_and_out_of_scope(tmp_path):
    clean = lint(
        tmp_path, "kernel/clean.py", """\
        import numpy as np

        def alloc(n):
            return np.zeros(n, dtype=np.float64)
        """,
        rules=["missing-dtype"],
    )
    assert clean == []
    out_of_scope = lint(
        tmp_path, "eval/mod.py", """\
        import numpy as np

        def alloc(n):
            return np.zeros(n)
        """,
        rules=["missing-dtype"],
    )
    assert out_of_scope == []


def test_missing_dtype_pragma_suppresses(tmp_path):
    findings = lint(
        tmp_path, "kernel/mod.py", """\
        import numpy as np

        def alloc(n):
            return np.zeros(n)  # lint: disable=missing-dtype
        """,
        rules=["missing-dtype"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# np-array-copy  (scoped to kernel/)
# ----------------------------------------------------------------------
def test_np_array_copy_flags_copy_of_existing_array(tmp_path):
    findings = lint(
        tmp_path, "kernel/mod.py", """\
        import numpy as np

        def view(existing):
            return np.array(existing)
        """,
        rules=["np-array-copy"],
    )
    assert rule_ids(findings) == ["np-array-copy"]


def test_np_array_copy_allows_asarray_literals_and_explicit_copy(tmp_path):
    findings = lint(
        tmp_path, "kernel/mod.py", """\
        import numpy as np

        def build(existing):
            a = np.asarray(existing)
            b = np.array([1, 2, 3])
            c = np.array(existing, copy=True)
            return a, b, c
        """,
        rules=["np-array-copy"],
    )
    assert findings == []


def test_np_array_copy_pragma_suppresses(tmp_path):
    findings = lint(
        tmp_path, "kernel/mod.py", """\
        import numpy as np

        def snapshot(existing):
            return np.array(existing)  # lint: disable=np-array-copy
        """,
        rules=["np-array-copy"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# float-dtype-mix  (scoped to kernel/)
# ----------------------------------------------------------------------
def test_float_dtype_mix_flags_mixed_arithmetic(tmp_path):
    findings = lint(
        tmp_path, "kernel/mod.py", """\
        import numpy as np

        def mix(n):
            narrow = np.zeros(n, dtype=np.float32)
            wide = np.zeros(n, dtype=np.float64)
            return narrow + wide
        """,
        rules=["float-dtype-mix"],
    )
    assert rule_ids(findings) == ["float-dtype-mix"]
    assert "float32" in findings[0].message


def test_float_dtype_mix_allows_matching_widths(tmp_path):
    findings = lint(
        tmp_path, "kernel/mod.py", """\
        import numpy as np

        def add(n):
            left = np.zeros(n, dtype=np.float64)
            right = np.zeros(n)
            return left + right
        """,
        rules=["float-dtype-mix"],
    )
    assert findings == []


def test_float_dtype_mix_pragma_suppresses(tmp_path):
    findings = lint(
        tmp_path, "kernel/mod.py", """\
        import numpy as np

        def mix(n):
            narrow = np.zeros(n, dtype=np.float32)
            wide = np.zeros(n, dtype=np.float64)
            return narrow + wide  # lint: disable=float-dtype-mix
        """,
        rules=["float-dtype-mix"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# memmap-explicit  (scoped to kernel/)
# ----------------------------------------------------------------------
def test_memmap_explicit_flags_missing_keywords(tmp_path):
    findings = lint(
        tmp_path, "kernel/mod.py", """\
        import numpy as np

        def open_index(path):
            return np.memmap(path, dtype=np.uint8)
        """,
        rules=["memmap-explicit"],
    )
    assert rule_ids(findings) == ["memmap-explicit"]
    assert "mode=" in findings[0].message
    assert "offset=" in findings[0].message
    assert "shape=" in findings[0].message


def test_memmap_explicit_allows_full_spec_and_out_of_scope(tmp_path):
    clean = lint(
        tmp_path, "kernel/clean.py", """\
        import numpy as np

        def open_index(path, size):
            return np.memmap(
                path, dtype=np.uint8, mode="r", offset=0, shape=(size,)
            )
        """,
        rules=["memmap-explicit"],
    )
    assert clean == []
    out_of_scope = lint(
        tmp_path, "eval/mod.py", """\
        import numpy as np

        def open_blob(path):
            return np.memmap(path)
        """,
        rules=["memmap-explicit"],
    )
    assert out_of_scope == []


def test_memmap_explicit_pragma_suppresses(tmp_path):
    findings = lint(
        tmp_path, "kernel/mod.py", """\
        import numpy as np

        def open_index(path):
            return np.memmap(path, mode="r")  # lint: disable=memmap-explicit
        """,
        rules=["memmap-explicit"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# all-mismatch
# ----------------------------------------------------------------------
def test_all_mismatch_flags_undefined_and_duplicate_exports(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        __all__ = ["exists", "missing", "exists"]

        def exists():
            return 1
        """,
        rules=["all-mismatch"],
    )
    messages = " | ".join(finding.message for finding in findings)
    assert "missing" in messages
    assert "more than once" in messages
    assert all(finding.severity == "error" for finding in findings)


def test_all_mismatch_allows_defined_and_conditional_names(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        __all__ = ["exists", "MaybeClass", "imported"]

        from os.path import join as imported

        def exists():
            return 1

        try:
            class MaybeClass:
                pass
        except ImportError:
            MaybeClass = None
        """,
        rules=["all-mismatch"],
    )
    assert findings == []


def test_all_mismatch_file_pragma_suppresses(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        # lint: disable-file=all-mismatch
        __all__ = ["missing"]
        """,
        rules=["all-mismatch"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# foreign-exception
# ----------------------------------------------------------------------
def test_foreign_exception_flags_builtin_and_local_raises(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        class LocalError(Exception):
            pass

        def check(value):
            if value < 0:
                raise ValueError("negative")
            if value > 10:
                raise LocalError("too big")
        """,
        rules=["foreign-exception"],
    )
    assert rule_ids(findings) == ["foreign-exception"] * 2


def test_foreign_exception_allows_repro_and_idiomatic_builtins(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        from repro.exceptions import ConfigurationError

        def check(value):
            if value < 0:
                raise ConfigurationError("negative")
            raise NotImplementedError
        """,
        rules=["foreign-exception"],
    )
    assert findings == []


def test_foreign_exception_pragma_suppresses(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        def check(value):
            if value < 0:
                raise ValueError("negative")  # lint: disable=foreign-exception
        """,
        rules=["foreign-exception"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# unused-import
# ----------------------------------------------------------------------
def test_unused_import_flags_dead_imports(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        import os
        from json import dumps

        def work():
            return 1
        """,
        rules=["unused-import"],
    )
    assert rule_ids(findings) == ["unused-import"] * 2


def test_unused_import_counts_all_exports_and_attribute_roots(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        from __future__ import annotations

        import os
        from json import dumps

        __all__ = ["dumps"]

        def work():
            return os.getcwd()
        """,
        rules=["unused-import"],
    )
    assert findings == []


def test_unused_import_pragma_suppresses(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        import os  # lint: disable=unused-import
        """,
        rules=["unused-import"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# dead-private-helper
# ----------------------------------------------------------------------
def test_dead_private_helper_flags_unreferenced_def(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        def _never_called():
            return 1

        def public():
            return 2
        """,
        rules=["dead-private-helper"],
    )
    assert rule_ids(findings) == ["dead-private-helper"]
    assert "_never_called" in findings[0].message


def test_dead_private_helper_allows_referenced_and_dunder(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        def _used():
            return 1

        def __dunder_like():
            return 2

        def public():
            return _used()
        """,
        rules=["dead-private-helper"],
    )
    assert findings == []


def test_dead_private_helper_def_line_pragma_suppresses(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        def _kept_for_api():  # lint: disable=dead-private-helper
            return 1
        """,
        rules=["dead-private-helper"],
    )
    assert findings == []

"""Extra tests for the SemanticBenchmark bundle and profiles."""

import pytest

from repro.benchgen import (
    SYNTHETIC_PROFILE,
    WT2015_PROFILE,
    build_benchmark,
)


class TestBenchmarkBundle:
    def test_graph_property_delegates(self, small_benchmark):
        assert small_benchmark.graph is small_benchmark.world.graph

    def test_ground_truths_cover_every_query(self, small_benchmark):
        truths = small_benchmark.ground_truths()
        assert set(truths) == set(small_benchmark.queries.all_queries())

    def test_topics_consistent_with_metadata(self, small_benchmark):
        for table_id, topic in list(small_benchmark.topics.items())[:30]:
            table = small_benchmark.lake.get(table_id)
            assert table.metadata["category"] == topic

    def test_query_categories_exist_in_corpus(self, small_benchmark):
        corpus_categories = {
            t.metadata["category"] for t in small_benchmark.lake
        }
        hit = sum(
            1 for category in small_benchmark.queries.categories.values()
            if category in corpus_categories
        )
        # Queries are sampled independently of tables, but at 200 tables
        # nearly every topic has at least one table.
        assert hit >= 0.7 * len(small_benchmark.queries.categories)

    def test_different_seeds_different_corpora(self):
        a = build_benchmark(SYNTHETIC_PROFILE, num_tables=30,
                            num_query_pairs=2, kg_scale=0.3, seed=1)
        b = build_benchmark(SYNTHETIC_PROFILE, num_tables=30,
                            num_query_pairs=2, kg_scale=0.3, seed=2)
        rows_a = a.lake.get(a.lake.table_ids()[0]).rows
        rows_b = b.lake.get(b.lake.table_ids()[0]).rows
        assert rows_a != rows_b

    def test_same_seed_identical_corpora(self):
        a = build_benchmark(WT2015_PROFILE, num_tables=25,
                            num_query_pairs=2, kg_scale=0.3, seed=5)
        b = build_benchmark(WT2015_PROFILE, num_tables=25,
                            num_query_pairs=2, kg_scale=0.3, seed=5)
        assert a.lake.table_ids() == b.lake.table_ids()
        for table_id in a.lake.table_ids():
            assert a.lake.get(table_id).rows == b.lake.get(table_id).rows
        assert dict(a.mapping.all_links()) == dict(b.mapping.all_links())
        assert a.queries.all_queries() == b.queries.all_queries()

    def test_statistics_shortcut(self, small_benchmark):
        stats = small_benchmark.statistics()
        assert stats.num_tables == len(small_benchmark.lake)
        assert stats.mean_coverage > 0.0

"""Tests for the segmented corpus index lifecycle.

The load-bearing properties:

* *mutation parity* — after any randomized sequence of table adds,
  removals, and compactions, the segmented index scores every table
  exactly like a freshly compiled monolithic index (bit-exact for the
  integer type-Jaccard kernel, <= 1e-9 against the scalar engine);
* *O(delta) updates* — an ``invalidate_table`` compiles exactly one
  table and shares every untouched segment object by reference;
* *tombstones* — removal never recompiles, never resurfaces the table,
  and keeps shared similarity/row memos warm (a removed table's rows
  simply stop being read);
* *persistence* — a save/load round trip through the memmap format
  reproduces every array bit for bit, read-only, and the loader rejects
  version/sigma mismatches and truncated payloads loudly.
"""

import json
import os
import pickle

import numpy as np
import pytest

from repro.core.kernel import (
    SegmentedCorpusIndex,
    VectorizedTableSearchEngine,
    load_index,
    save_index,
)
from repro.core.kernel.index import CorpusIndex
from repro.core.kernel.storage import (
    ARRAYS_FILENAME,
    HEADER_FILENAME,
    inspect_index,
)
from repro.core.parallel import ParallelSearchEngine
from repro.datalake import Table
from repro.exceptions import IndexStorageError
from repro.linking import EntityMapping
from repro.serve.snapshot import SnapshotManager
from repro.system import Thetis

from tests.test_core_kernel import (
    ENTITIES,
    TOLERANCE,
    engine_pair,
    make_lake,
    make_queries,
    make_sigma,
)

import random


def make_table(rng, table_id):
    """A fresh random table compatible with :func:`make_lake`."""
    columns = rng.randint(1, 4)
    rows = [
        [f"n{r}.{c}" if rng.random() < 0.8 else None
         for c in range(columns)]
        for r in range(rng.randint(1, 5))
    ]
    return Table(table_id, [f"a{c}" for c in range(columns)], rows)


def link_table(rng, mapping, table):
    for r in range(table.num_rows):
        for c in range(table.num_columns):
            if table.rows[r][c] is not None and rng.random() < 0.6:
                mapping.link(table.table_id, r, c, rng.choice(ENTITIES))


def rankings_of(engine, queries):
    return [engine.search(query, k=None) for query in queries]


def assert_ranking_parity(left, right, exact):
    for a, b in zip(left, right):
        scores_a = {s.table_id: s.score for s in a}
        scores_b = {s.table_id: s.score for s in b}
        assert scores_a.keys() == scores_b.keys()
        for table_id, score in scores_a.items():
            delta = abs(score - scores_b[table_id])
            if exact:
                assert delta == 0.0, table_id
            else:
                assert delta <= TOLERANCE, table_id


# ----------------------------------------------------------------------
# Randomized add/remove/compact property parity
# ----------------------------------------------------------------------
class TestMutationParity:
    @pytest.mark.parametrize("sigma_kind", ["types", "embeddings"])
    @pytest.mark.parametrize("seed", [1, 5, 11])
    def test_random_mutation_sequences_keep_parity(self, sigma_kind, seed):
        """Any add/remove/compact interleaving == a fresh full compile.

        Mutations mirror the ``Thetis`` flow exactly: the lake and the
        mapping change first, then ``invalidate_table`` applies the
        O(delta) index update; ``compact()`` runs the off-request-path
        merge policy at arbitrary points.
        """
        rng = random.Random(seed)
        lake, mapping = make_lake(rng, num_tables=10)
        sigma = make_sigma(sigma_kind, rng)
        scalar, vector = engine_pair(lake, mapping, sigma)
        queries = make_queries(rng)
        fresh_counter = 0

        for step in range(12):
            action = rng.choice(["add", "add", "remove", "compact"])
            if action == "add":
                fresh_counter += 1
                table = make_table(rng, f"N{fresh_counter}")
                lake.add(table)
                link_table(rng, mapping, table)
                scalar.invalidate_table(table.table_id)
                vector.invalidate_table(table.table_id)
            elif action == "remove" and len(lake) > 2:
                victim = rng.choice(lake.table_ids())
                lake.remove(victim)
                mapping.unlink_table(victim)
                scalar.invalidate_table(victim)
                vector.invalidate_table(victim)
            elif action == "compact":
                vector.compact()
            if step % 4 != 3:
                continue
            # A monolithic index compiled from the current lake state is
            # the ground truth the mutated segments must reproduce.
            reference = VectorizedTableSearchEngine(lake, mapping, sigma)
            assert_ranking_parity(
                rankings_of(vector, queries),
                rankings_of(reference, queries),
                exact=(sigma_kind == "types"),
            )
            assert_ranking_parity(
                rankings_of(vector, queries),
                rankings_of(scalar, queries),
                exact=False,
            )

        index = vector.index()
        assert index.mirrors(lake.table_ids())
        # Compaction must fully drain tombstones when forced.
        compacted = index.compacted(lake.get)
        assert compacted.stats().tombstones == 0
        assert compacted.mirrors(lake.table_ids())


# ----------------------------------------------------------------------
# Tombstones
# ----------------------------------------------------------------------
class TestTombstones:
    def test_remove_is_tombstone_only_and_readd_works(self):
        rng = random.Random(3)
        lake, mapping = make_lake(rng, num_tables=6)
        sigma = make_sigma("types", rng)
        index = SegmentedCorpusIndex.compile(lake, mapping, sigma)
        base_segment = index.segments[0]

        removed = index.without_table("T1")
        assert "T1" not in removed
        assert "T1" in index  # the receiver is untouched (functional)
        assert removed.segments[0] is base_segment  # no recompile
        assert removed.stats().tombstones == 1
        assert removed.stats().live_tables == len(lake) - 1
        assert "T1" not in removed.live_table_ids()
        assert removed.locate("T1") is None

        # Tombstoning an unknown id is a no-op returning self.
        assert removed.without_table("nope") is removed

        # Re-adding the id resurrects it through a single-table segment.
        readded = removed.with_table(lake.get("T1"))
        assert "T1" in readded
        assert readded.segments[0] is base_segment
        assert len(readded.segments) == 2
        assert readded.stats().tombstones == 1  # the dead copy remains
        segment, view = readded.locate("T1")
        assert segment is readded.segments[-1]
        assert view.table_id == "T1"

    def test_removed_table_never_scores(self):
        rng = random.Random(7)
        lake, mapping = make_lake(rng, num_tables=6)
        sigma = make_sigma("types", rng)
        _, vector = engine_pair(lake, mapping, sigma)
        queries = make_queries(rng)
        before = rankings_of(vector, queries)
        assert any("T0" in {s.table_id for s in r} for r in before)

        lake.remove("T0")
        mapping.unlink_table("T0")
        vector.invalidate_table("T0")
        after = rankings_of(vector, queries)
        for ranking in after:
            assert "T0" not in {s.table_id for s in ranking}

    def test_segment_dropped_once_fully_dead(self):
        rng = random.Random(9)
        lake, mapping = make_lake(rng, num_tables=4)
        sigma = make_sigma("types", rng)
        index = SegmentedCorpusIndex.compile(lake, mapping, sigma)
        index = index.with_table(make_table(rng, "solo"))
        assert len(index.segments) == 2
        # Tombstoning the single-table segment's only table removes the
        # whole segment instead of carrying a fully-dead husk.
        index = index.without_table("solo")
        assert len(index.segments) == 1
        assert index.stats().tombstones == 0


# ----------------------------------------------------------------------
# O(delta): adds compile one table, segments are shared by reference
# ----------------------------------------------------------------------
class TestIncrementalCost:
    def test_add_compiles_exactly_one_table(self, monkeypatch):
        rng = random.Random(13)
        lake, mapping = make_lake(rng, num_tables=8)
        sigma = make_sigma("types", rng)
        _, vector = engine_pair(lake, mapping, sigma)

        compiled_sizes = []
        original = CorpusIndex.__init__

        def spy(self, tables, *args, **kwargs):
            table_list = list(tables)
            compiled_sizes.append(len(table_list))
            original(self, table_list, *args, **kwargs)

        monkeypatch.setattr(CorpusIndex, "__init__", spy)

        first = vector.index()
        assert compiled_sizes == [len(lake)]
        base_segments = first.segments

        table = make_table(rng, "N1")
        lake.add(table)
        link_table(rng, mapping, table)
        vector.invalidate_table("N1")
        second = vector.index()
        # Only the new table was compiled; every prior segment object is
        # shared by reference with the previous generation.
        assert compiled_sizes == [len(lake) - 1, 1]
        assert second.segments[: len(base_segments)] == base_segments
        assert second.segments[0] is base_segments[0]

        lake.remove("T2")
        mapping.unlink_table("T2")
        vector.invalidate_table("T2")
        third = vector.index()
        # Removal is tombstone-only: no compile at all.
        assert compiled_sizes == [len(lake), 1]
        assert third.stats().tombstones == 1

    def test_thetis_mutations_never_trigger_full_recompile(self, monkeypatch):
        """Satellite regression: ``Thetis.add_table``/``remove_table``
        followed by ``search()`` must never recompile the whole corpus —
        the pre-segmentation behavior was a full O(lake) compile on the
        next query after every mutation."""
        rng = random.Random(17)
        lake, mapping = make_lake(rng, num_tables=8)
        from repro.kg.entity import Entity
        from repro.kg.graph import KnowledgeGraph

        graph = KnowledgeGraph()
        for uri in ENTITIES:
            graph.add_entity(Entity(uri, uri, frozenset({"TypeA"})))
        thetis = Thetis(lake, graph, mapping, engine_kind="vectorized")
        query = make_queries(rng)[0]
        thetis.search(query, k=5)

        compiled_sizes = []
        original = CorpusIndex.__init__

        def spy(self, tables, *args, **kwargs):
            table_list = list(tables)
            compiled_sizes.append(len(table_list))
            original(self, table_list, *args, **kwargs)

        monkeypatch.setattr(CorpusIndex, "__init__", spy)

        table = make_table(rng, "added-1")
        thetis.add_table(table)
        thetis.search(query, k=5)
        assert compiled_sizes == [1], (
            "add_table recompiled more than the added table: "
            f"{compiled_sizes}"
        )

        thetis.remove_table("T1")
        thetis.search(query, k=5)
        assert compiled_sizes == [1], (
            f"remove_table triggered a recompile: {compiled_sizes}"
        )
        index = thetis.engine("types").export_index()
        assert "added-1" in index and "T1" not in index
        thetis.close()

    def test_similarity_cache_and_memos_survive_removal(self):
        """Satellite: remove_table drops nothing an alive table needs.

        The pairwise similarity cache is keyed by URI pairs (table
        independent), and the per-segment row/tuple memos live on
        segments that removal shares untouched — so re-running the same
        queries after a removal must add *zero* new memo misses while
        the hit counters keep climbing.
        """
        rng = random.Random(21)
        lake, mapping = make_lake(rng, num_tables=8)
        sigma = make_sigma("types", rng)
        scalar, vector = engine_pair(lake, mapping, sigma)
        queries = make_queries(rng)

        rankings_of(scalar, queries)
        rankings_of(vector, queries)
        scalar_cache_len = len(scalar.similarity_cache)
        assert scalar_cache_len > 0
        index = vector.index()
        row_before = index.row_cache_stats()
        tuple_before = index.tuple_cache_stats()

        lake.remove("T4")
        mapping.unlink_table("T4")
        scalar.invalidate_table("T4")
        vector.invalidate_table("T4")

        rankings_of(scalar, queries)
        rankings_of(vector, queries)
        # Pairwise entries are (uri, uri)-keyed: none referenced the
        # removed table, so none was dropped and none re-computed.
        assert len(scalar.similarity_cache) == scalar_cache_len
        row_after = vector.index().row_cache_stats()
        tuple_after = vector.index().tuple_cache_stats()
        assert row_after.misses == row_before.misses
        assert tuple_after.misses == tuple_before.misses
        # The batched path memoizes per query tuple: re-running the
        # same queries over the shared segments must be pure hits.
        assert tuple_after.hits > tuple_before.hits
        assert row_after.hits >= row_before.hits


# ----------------------------------------------------------------------
# Persistence: memmap save -> load round trip
# ----------------------------------------------------------------------
ARRAY_NAMES = (
    "table_rows", "table_columns", "col_offset", "row_offset",
    "flat_ids", "col_start", "nnz_gcolumns", "nnz_gids", "nnz_gcounts",
    "nnz_toffset",
)


class TestStorageRoundTrip:
    def _mutated_index(self, rng, lake, mapping, sigma):
        index = SegmentedCorpusIndex.compile(
            lake, mapping, sigma, segment_tables=3
        )
        extra = make_table(rng, "X1")
        lake.add(extra)
        link_table(rng, mapping, extra)
        index = index.with_table(extra)
        index = index.without_table("T2")
        return index

    @pytest.mark.parametrize("sigma_kind", ["types", "embeddings",
                                            "exact", "combo"])
    def test_round_trip_is_bit_identical(self, sigma_kind, tmp_path):
        rng = random.Random(31)
        lake, mapping = make_lake(rng, num_tables=8)
        sigma = make_sigma(sigma_kind, rng)
        index = self._mutated_index(rng, lake, mapping, sigma)

        summary = save_index(index, tmp_path)
        assert summary["segments"] == len(index.segments)
        loaded = load_index(tmp_path, sigma, mapping)

        assert loaded.live_table_ids() == index.live_table_ids()
        assert loaded.dead == index.dead
        assert loaded.compactions == index.compactions
        for original, mapped in zip(index.segments, loaded.segments):
            assert original.table_ids == mapped.table_ids
            assert original.uris == mapped.uris
            for name in ARRAY_NAMES:
                left = getattr(original, name)
                right = getattr(mapped, name)
                assert left.dtype == right.dtype, name
                assert np.array_equal(left, right), name
                # Memmapped arrays must be served read-only.
                assert not right.flags.writeable, name

        queries = make_queries(rng)
        original_engine = VectorizedTableSearchEngine(lake, mapping, sigma)
        original_engine.adopt_index(index)
        loaded_engine = VectorizedTableSearchEngine(lake, mapping, sigma)
        loaded_engine.adopt_index(loaded)
        assert_ranking_parity(
            rankings_of(original_engine, queries),
            rankings_of(loaded_engine, queries),
            exact=True,
        )

    def test_inspect_matches_stats(self, tmp_path):
        rng = random.Random(33)
        lake, mapping = make_lake(rng, num_tables=6)
        sigma = make_sigma("types", rng)
        index = self._mutated_index(rng, lake, mapping, sigma)
        save_index(index, tmp_path)
        summary = inspect_index(tmp_path, verify=True)
        stats = index.stats()
        assert summary["segments"] == stats.segments
        assert summary["live_tables"] == stats.live_tables
        assert summary["entities"] == stats.entities
        assert summary["verified"] is True

    def test_empty_lake_round_trips(self, tmp_path):
        mapping = EntityMapping()
        sigma = make_sigma("types", random.Random(1))
        index = SegmentedCorpusIndex.compile([], mapping, sigma)
        save_index(index, tmp_path)
        loaded = load_index(tmp_path, sigma, mapping)
        assert len(loaded) == 0
        assert loaded.segments == ()


class TestStorageErrors:
    def _saved(self, tmp_path, sigma_kind="types", seed=41):
        rng = random.Random(seed)
        lake, mapping = make_lake(rng, num_tables=6)
        sigma = make_sigma(sigma_kind, rng)
        index = SegmentedCorpusIndex.compile(lake, mapping, sigma)
        save_index(index, tmp_path)
        return lake, mapping, sigma

    def test_missing_directory_raises(self, tmp_path):
        mapping = EntityMapping()
        sigma = make_sigma("types", random.Random(1))
        with pytest.raises(IndexStorageError):
            load_index(tmp_path / "nowhere", sigma, mapping)

    def test_version_mismatch_raises(self, tmp_path):
        _, mapping, sigma = self._saved(tmp_path)
        header_path = tmp_path / HEADER_FILENAME
        header = json.loads(header_path.read_text())
        header["version"] = 999
        header_path.write_text(json.dumps(header))
        with pytest.raises(IndexStorageError):
            load_index(tmp_path, sigma, mapping)

    def test_sigma_mismatch_raises(self, tmp_path):
        _, mapping, _ = self._saved(tmp_path, sigma_kind="types")
        other = make_sigma("embeddings", random.Random(2))
        with pytest.raises(IndexStorageError):
            load_index(tmp_path, other, mapping)

    def test_truncated_payload_raises(self, tmp_path):
        _, mapping, sigma = self._saved(tmp_path)
        arrays_path = tmp_path / ARRAYS_FILENAME
        size = os.path.getsize(arrays_path)
        with open(arrays_path, "r+b") as handle:
            handle.truncate(size // 2)
        with pytest.raises(IndexStorageError):
            load_index(tmp_path, sigma, mapping)
        with pytest.raises(IndexStorageError):
            inspect_index(tmp_path, verify=True)


# ----------------------------------------------------------------------
# Serving snapshots share segments across generations
# ----------------------------------------------------------------------
class TestSnapshotSharing:
    def test_clone_shares_unchanged_segments(self):
        rng = random.Random(51)
        lake, mapping = make_lake(rng, num_tables=8)
        # Thetis needs a graph; MappingTypeSimilarity does not, so run
        # the snapshot flow over a minimal in-memory graph instead.
        from repro.kg.entity import Entity
        from repro.kg.graph import KnowledgeGraph

        graph = KnowledgeGraph()
        for uri in ENTITIES:
            graph.add_entity(Entity(uri, uri, frozenset({"TypeA"})))
        thetis = Thetis(lake, graph, mapping, engine_kind="vectorized")
        manager = SnapshotManager(thetis, warm_method="types")
        try:
            thetis.warm("types")
            base_index = thetis.engine("types").export_index()
            assert base_index is not None
            base_segment = base_index.segments[0]

            table = make_table(rng, "fresh-1")
            manager.apply(lambda system: system.add_table(table))

            with manager.checkout() as snapshot:
                engine = snapshot.thetis.engine("types")
                index = engine.export_index()
                assert index is not None
                assert "fresh-1" in index
                # The previous generation's compiled segment is adopted
                # by reference — the swap cost only the one-table delta.
                assert base_segment in index.segments
                assert index.segments[0] is base_segment

            manager.apply(lambda system: system.remove_table("T0"))
            with manager.checkout() as snapshot:
                index = snapshot.thetis.engine("types").export_index()
                assert "T0" not in index
                assert base_segment in index.segments
        finally:
            manager.close()


# ----------------------------------------------------------------------
# Process backend: one on-disk index shared zero-copy
# ----------------------------------------------------------------------
class TestProcessSpill:
    def test_spilled_engine_pickles_without_index(self, tmp_path):
        rng = random.Random(61)
        lake, mapping = make_lake(rng, num_tables=6)
        sigma = make_sigma("types", rng)
        _, vector = engine_pair(lake, mapping, sigma)
        queries = make_queries(rng)
        expected = rankings_of(vector, queries)

        vector.spill_index(str(tmp_path))
        state = pickle.dumps(vector)
        clone = pickle.loads(state)
        # The pickle carried no compiled arrays; the clone lazily
        # re-opens the spill directory as read-only memmaps.
        assert clone._index is None
        assert_ranking_parity(
            rankings_of(clone, queries), expected, exact=True
        )
        assert clone.index().mirrors(lake.table_ids())
        vector.clear_spill()

    def test_process_pool_spills_and_cleans_up(self):
        rng = random.Random(63)
        lake, mapping = make_lake(rng, num_tables=6)
        sigma = make_sigma("types", rng)
        _, vector = engine_pair(lake, mapping, sigma)
        queries = make_queries(rng)
        sequential = rankings_of(vector, queries)

        parallel = ParallelSearchEngine(vector, workers=2, backend="process")
        try:
            results = [
                parallel.search(query, k=None) for query in queries
            ]
            spill_dir = parallel._spill_dir
            assert spill_dir is not None and os.path.isdir(spill_dir)
            assert_ranking_parity(results, sequential, exact=True)
        finally:
            parallel.close()
        assert parallel._spill_dir is None
        assert not os.path.isdir(spill_dir)

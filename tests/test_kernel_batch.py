"""Randomized bit-identity properties of the multi-query batched kernel.

``VectorizedTableSearchEngine.search_batch`` fuses a whole micro-batch
into one corpus pass per segment; the contract is that every query's
ranking is *bit-identical* (scores compared with ``==``, ties broken
``(-score, table_id)``) to what a sequential ``search`` /
``search_candidates`` call returns.  The properties here check that
over randomized batches of mixed tuple widths, in exact and prefilter
(candidate-restricted) mode, through the system-level ``search_many``
dispatch, across the canonical-dedup fan-out, and across an
add/remove corpus mutation between batches.
"""

import random

import pytest

from repro import Query, Table, Thetis
from repro.benchgen import WT2015_PROFILE, build_benchmark
from repro.core.kernel import BatchStats

SEED = 1234
K = 7


def _pairs(results):
    return [(scored.score, scored.table_id) for scored in results]


@pytest.fixture(scope="module")
def bench():
    return build_benchmark(
        WT2015_PROFILE, num_tables=150, num_query_pairs=6, seed=29
    )


@pytest.fixture(scope="module")
def thetis(bench):
    with Thetis(bench.lake, bench.graph, bench.mapping,
                engine_kind="vectorized") as system:
        yield system


@pytest.fixture(scope="module")
def entity_pool(bench):
    pool = []
    for query in bench.queries.all_queries().values():
        for entry in query.tuples:
            pool.extend(entry)
    return sorted(set(pool))


def _random_queries(rng, entity_pool, count, max_width=3):
    """Batches mix tuple widths 1..max_width and query sizes 1..3."""
    queries = []
    for _ in range(count):
        tuples = []
        for _tuple in range(rng.randint(1, 3)):
            width = rng.randint(1, max_width)
            tuples.append(tuple(rng.sample(entity_pool, width)))
        queries.append(Query(tuples))
    return queries


class TestExactParity:
    def test_batch_matches_sequential_search(self, thetis, entity_pool):
        rng = random.Random(SEED)
        engine = thetis.engine("types")
        for _round in range(5):
            queries = _random_queries(rng, entity_pool, rng.randint(1, 9))
            batched = engine.search_batch(queries, k=K)
            for query, results in zip(queries, batched):
                assert _pairs(results) == _pairs(engine.search(query, k=K))

    def test_system_search_many_matches_search(self, thetis, entity_pool):
        rng = random.Random(SEED + 1)
        queries = {
            f"q{index}": query
            for index, query in enumerate(
                _random_queries(rng, entity_pool, 6)
            )
        }
        batched = thetis.search_many(queries, k=K)
        for query_id, query in queries.items():
            assert _pairs(batched[query_id]) == \
                _pairs(thetis.search(query, k=K))


class TestCandidateParity:
    def test_batch_matches_search_candidates(self, thetis, entity_pool,
                                             bench):
        rng = random.Random(SEED + 2)
        engine = thetis.engine("types")
        table_ids = sorted(bench.lake.table_ids())
        for _round in range(4):
            queries = _random_queries(rng, entity_pool, rng.randint(2, 8))
            shortlists = []
            for _query in queries:
                size = rng.randint(0, 40)
                shortlist = [rng.choice(table_ids) for _ in range(size)]
                if rng.random() < 0.3:
                    shortlist.append("no-such-table")  # dropped, not fatal
                shortlists.append(shortlist)
            batched = engine.search_batch(queries, k=K,
                                          candidates=shortlists)
            for query, shortlist, results in zip(queries, shortlists,
                                                 batched):
                solo = engine.search_candidates(query, shortlist, k=K)
                assert _pairs(results) == _pairs(solo)

    def test_prefilter_mode_matches_sequential(self, thetis, bench):
        queries = {
            f"q{index}": query
            for index, query in enumerate(
                list(bench.queries.all_queries().values())[:5]
            )
        }
        batched = thetis.search_many(queries, k=K, mode="prefilter")
        for query_id, query in queries.items():
            solo = thetis.search(query, k=K, mode="prefilter")
            assert _pairs(batched[query_id]) == _pairs(solo)


class TestDedupFanout:
    def test_duplicates_score_once_and_fan_out(self, thetis, entity_pool):
        rng = random.Random(SEED + 3)
        engine = thetis.engine("types")
        base = _random_queries(rng, entity_pool, 3)
        batch = base + [Query(base[0].tuples), base[1], base[0]]
        stats = BatchStats()
        batched = engine.search_batch(batch, k=K, batch_stats=stats)
        counts = stats.as_dict()
        assert counts["batched_passes"] == 1
        assert counts["batched_queries"] == len(batch)
        assert counts["deduped_queries"] == 3
        for query, results in zip(batch, batched):
            assert _pairs(results) == _pairs(engine.search(query, k=K))
        # Duplicate slots share the very same ResultSet object.
        assert batched[3] is batched[0]
        assert batched[5] is batched[0]

    def test_candidate_order_is_part_of_the_key(self, thetis, entity_pool,
                                                bench):
        rng = random.Random(SEED + 4)
        engine = thetis.engine("types")
        query = _random_queries(rng, entity_pool, 1)[0]
        table_ids = sorted(bench.lake.table_ids())[:20]
        forward, backward = list(table_ids), list(reversed(table_ids))
        batched = engine.search_batch(
            [query, query], k=K, candidates=[forward, backward]
        )
        assert _pairs(batched[0]) == \
            _pairs(engine.search_candidates(query, forward, k=K))
        assert _pairs(batched[1]) == \
            _pairs(engine.search_candidates(query, backward, k=K))


class TestMutationBetweenBatches:
    def _fresh_thetis(self):
        from tests.conftest import make_sports_graph, make_sports_lake
        from repro.linking import LabelLinker

        graph = make_sports_graph()
        lake = make_sports_lake()
        mapping = LabelLinker(graph).link_lake(lake)
        return Thetis(lake, graph, mapping, engine_kind="vectorized")

    def test_parity_survives_add_and_remove(self):
        rng = random.Random(SEED + 5)
        with self._fresh_thetis() as thetis:
            engine = thetis.engine("types")
            pool = [f"kg:player{i}" for i in range(32)] + \
                [f"kg:team{i}" for i in range(8)]

            def check_round():
                queries = _random_queries(rng, pool, 6, max_width=2)
                batched = engine.search_batch(queries, k=K)
                for query, results in zip(queries, batched):
                    assert _pairs(results) == \
                        _pairs(engine.search(query, k=K))

            check_round()
            thetis.add_table(Table(
                "T99", ["Player", "Team"],
                [["Player 31", "Team 0"], ["Player 23", "Team 0"]],
            ))
            check_round()
            exact = Query.single("kg:player31", "kg:team0")
            assert engine.search_batch([exact], k=1)[0].table_ids() == \
                ["T99"]
            thetis.remove_table("T99")
            check_round()
            assert "T99" not in \
                engine.search_batch([exact], k=K)[0].table_ids()

"""Tests for LSH configuration validation."""

import pytest

from repro.exceptions import ConfigurationError
from repro.lsh import PAPER_CONFIGS, RECOMMENDED_CONFIG, LSHConfig


class TestLSHConfig:
    def test_num_bands(self):
        assert LSHConfig(32, 8).num_bands == 4
        assert LSHConfig(128, 8).num_bands == 16
        assert LSHConfig(30, 10).num_bands == 3

    def test_divisibility_required(self):
        with pytest.raises(ConfigurationError):
            LSHConfig(30, 8)

    def test_positive_required(self):
        with pytest.raises(ConfigurationError):
            LSHConfig(0, 1)
        with pytest.raises(ConfigurationError):
            LSHConfig(8, 0)

    def test_paper_configs(self):
        assert len(PAPER_CONFIGS) == 3
        assert RECOMMENDED_CONFIG == LSHConfig(30, 10)
        assert RECOMMENDED_CONFIG in PAPER_CONFIGS

    def test_str(self):
        assert str(LSHConfig(32, 8)) == "(32, 8)"

    def test_hashable(self):
        assert len({LSHConfig(32, 8), LSHConfig(32, 8)}) == 1

"""Tests for the micro-batching queue: coalescing, backpressure, timeouts.

These drive :class:`~repro.serve.batching.MicroBatcher` directly with
synthetic runners (no HTTP, no engine) so each property is isolated:
batched outcomes align with submissions, a full queue fast-fails with
503 semantics instead of hanging, deadlines expire into 504 semantics,
and shutdown drains admitted work.
"""

import asyncio

import pytest

from repro.exceptions import (
    RequestTimeoutError,
    ServeError,
    ServerOverloadedError,
)
from repro.serve.batching import MicroBatcher


def run(coro):
    """Run an async test body on a fresh event loop."""
    return asyncio.run(coro)


class TestBatchingCorrectness:
    def test_single_item_roundtrip(self):
        async def body():
            async def runner(items):
                return [item * 2 for item in items]

            batcher = MicroBatcher(runner, flush_interval=0.001)
            await batcher.start()
            try:
                assert await batcher.submit(21) == 42
            finally:
                await batcher.stop()

        run(body())

    def test_concurrent_submissions_coalesce(self):
        """A burst of concurrent submits folds into few runner calls,
        and every submitter still receives exactly its own outcome."""
        async def body():
            sizes = []

            async def runner(items):
                sizes.append(len(items))
                return [item + 100 for item in items]

            batcher = MicroBatcher(
                runner, max_batch_size=8, flush_interval=0.02
            )
            await batcher.start()
            try:
                results = await asyncio.gather(
                    *(batcher.submit(i) for i in range(8))
                )
            finally:
                await batcher.stop()
            assert results == [i + 100 for i in range(8)]
            # Fewer runner calls than submissions, and at least one
            # call actually batched multiple items.
            assert sum(sizes) == 8
            assert len(sizes) < 8
            assert max(sizes) >= 2
            assert batcher.items_executed == 8

        run(body())

    def test_batch_size_cap_respected(self):
        async def body():
            sizes = []

            async def runner(items):
                sizes.append(len(items))
                return list(items)

            batcher = MicroBatcher(
                runner, max_batch_size=3, flush_interval=0.02
            )
            await batcher.start()
            try:
                await asyncio.gather(
                    *(batcher.submit(i) for i in range(10))
                )
            finally:
                await batcher.stop()
            assert max(sizes) <= 3

        run(body())

    def test_per_item_exception_outcomes(self):
        """An exception outcome fails only its own submitter."""
        async def body():
            async def runner(items):
                return [
                    ValueError("odd") if item % 2 else item
                    for item in items
                ]

            batcher = MicroBatcher(
                runner, max_batch_size=4, flush_interval=0.02
            )
            await batcher.start()
            try:
                outcomes = await asyncio.gather(
                    *(batcher.submit(i) for i in range(4)),
                    return_exceptions=True,
                )
            finally:
                await batcher.stop()
            assert outcomes[0] == 0
            assert isinstance(outcomes[1], ValueError)
            assert outcomes[2] == 2
            assert isinstance(outcomes[3], ValueError)

        run(body())

    def test_runner_failure_fails_whole_batch(self):
        async def body():
            async def runner(items):
                raise RuntimeError("engine exploded")

            batcher = MicroBatcher(runner, flush_interval=0.001)
            await batcher.start()
            try:
                with pytest.raises(RuntimeError, match="engine exploded"):
                    await batcher.submit(1)
            finally:
                await batcher.stop()

        run(body())

    def test_misaligned_runner_output_rejected(self):
        async def body():
            async def runner(items):
                return []  # wrong length

            batcher = MicroBatcher(runner, flush_interval=0.001)
            await batcher.start()
            try:
                with pytest.raises(ServeError, match="outcomes"):
                    await batcher.submit(1)
            finally:
                await batcher.stop()

        run(body())


class TestBackpressure:
    def test_overload_fast_fails(self):
        """With the worker wedged and the queue full, the next submit
        raises ServerOverloadedError immediately instead of hanging."""
        async def body():
            gate = asyncio.Event()

            async def runner(items):
                await gate.wait()
                return list(items)

            batcher = MicroBatcher(
                runner, max_batch_size=1, flush_interval=0.0,
                max_queue_depth=2, request_timeout=5.0,
            )
            await batcher.start()
            # First submission is picked up by the worker and blocks
            # on the gate; the next two fill the admission queue.
            inflight = asyncio.ensure_future(batcher.submit("a"))
            await asyncio.sleep(0.02)
            queued = [
                asyncio.ensure_future(batcher.submit(x))
                for x in ("b", "c")
            ]
            await asyncio.sleep(0.02)
            with pytest.raises(ServerOverloadedError):
                await batcher.submit("overflow")
            # Release the gate: everything admitted still completes —
            # overload rejects new work without dropping accepted work.
            gate.set()
            assert await inflight == "a"
            assert await asyncio.gather(*queued) == ["b", "c"]
            await batcher.stop()

        run(body())

    def test_overload_error_is_immediate(self):
        async def body():
            gate = asyncio.Event()

            async def runner(items):
                await gate.wait()
                return list(items)

            batcher = MicroBatcher(
                runner, max_batch_size=1, flush_interval=0.0,
                max_queue_depth=1,
            )
            await batcher.start()
            inflight = asyncio.ensure_future(batcher.submit("a"))
            await asyncio.sleep(0.02)
            queued = asyncio.ensure_future(batcher.submit("b"))
            await asyncio.sleep(0.02)
            loop = asyncio.get_running_loop()
            started = loop.time()
            with pytest.raises(ServerOverloadedError):
                await batcher.submit("overflow")
            # The rejection must not wait out the request timeout.
            assert loop.time() - started < 1.0
            gate.set()
            await inflight
            await queued
            await batcher.stop()

        run(body())

    def test_submit_after_stop_rejected(self):
        async def body():
            async def runner(items):
                return list(items)

            batcher = MicroBatcher(runner)
            await batcher.start()
            await batcher.stop()
            with pytest.raises(ServeError):
                await batcher.submit(1)

        run(body())


class TestTimeouts:
    def test_slow_batch_times_out(self):
        async def body():
            async def runner(items):
                await asyncio.sleep(0.5)
                return list(items)

            batcher = MicroBatcher(
                runner, flush_interval=0.0, request_timeout=0.05
            )
            await batcher.start()
            try:
                with pytest.raises(RequestTimeoutError):
                    await batcher.submit(1)
            finally:
                await batcher.stop()

        run(body())

    def test_late_result_dropped_not_crashed(self):
        """After a timeout the batch still finishes; its late result is
        discarded silently and the batcher keeps serving."""
        async def body():
            async def runner(items):
                await asyncio.sleep(0.1)
                return [item * 2 for item in items]

            batcher = MicroBatcher(
                runner, flush_interval=0.0, request_timeout=0.02
            )
            await batcher.start()
            try:
                with pytest.raises(RequestTimeoutError):
                    await batcher.submit(1)
                # A generous per-call timeout shows the worker survived.
                assert await batcher.submit(2, timeout=5.0) == 4
            finally:
                await batcher.stop()

        run(body())

    def test_per_submit_timeout_overrides_default(self):
        async def body():
            async def runner(items):
                await asyncio.sleep(0.2)
                return list(items)

            batcher = MicroBatcher(
                runner, flush_interval=0.0, request_timeout=10.0
            )
            await batcher.start()
            try:
                with pytest.raises(RequestTimeoutError):
                    await batcher.submit(1, timeout=0.02)
            finally:
                await batcher.stop()

        run(body())


class TestShutdown:
    def test_stop_drains_admitted_work(self):
        async def body():
            async def runner(items):
                await asyncio.sleep(0.02)
                return [item + 1 for item in items]

            batcher = MicroBatcher(
                runner, max_batch_size=4, flush_interval=0.005
            )
            await batcher.start()
            tasks = [
                asyncio.ensure_future(batcher.submit(i))
                for i in range(10)
            ]
            await asyncio.sleep(0)  # let the submissions enqueue
            await batcher.stop(drain=True)
            assert await asyncio.gather(*tasks) == list(range(1, 11))
            assert not batcher.running

        run(body())

    def test_stop_without_drain_fails_queued(self):
        async def body():
            gate = asyncio.Event()

            async def runner(items):
                await gate.wait()
                return list(items)

            batcher = MicroBatcher(
                runner, max_batch_size=1, flush_interval=0.0,
                max_queue_depth=8,
            )
            await batcher.start()
            inflight = asyncio.ensure_future(batcher.submit("a"))
            await asyncio.sleep(0.02)
            queued = [
                asyncio.ensure_future(batcher.submit(x))
                for x in ("b", "c")
            ]
            await asyncio.sleep(0.02)
            stopper = asyncio.ensure_future(batcher.stop(drain=False))
            await asyncio.sleep(0.02)
            gate.set()
            await stopper
            # The in-flight item finishes; queued ones are failed fast.
            assert await inflight == "a"
            outcomes = await asyncio.gather(
                *queued, return_exceptions=True
            )
            assert all(
                isinstance(o, ServerOverloadedError) for o in outcomes
            )

        run(body())

    def test_stop_idempotent(self):
        async def body():
            async def runner(items):
                return list(items)

            batcher = MicroBatcher(runner)
            await batcher.start()
            await batcher.stop()
            await batcher.stop()  # second stop is a no-op

        run(body())


class TestValidation:
    def test_bad_parameters_rejected(self):
        async def runner(items):
            return list(items)

        with pytest.raises(ValueError):
            MicroBatcher(runner, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(runner, flush_interval=-1.0)
        with pytest.raises(ValueError):
            MicroBatcher(runner, max_queue_depth=0)

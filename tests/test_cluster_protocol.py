"""Wire framing, routing-table codec, and hash-ring properties.

The cluster's correctness argument rests on three local facts tested
here: frames round-trip exactly (or fail loudly), routing tables are
validated at the trust boundary, and shard assignment is a pure
deterministic function of ``(workers, live, replication)`` so every
process holding the same epoch computes the same partition.
"""

import asyncio

import pytest

from repro.cluster import HashRing, RoutingTable, encode_frame, read_frame
from repro.cluster.hashring import DEFAULT_VNODES
from repro.cluster.protocol import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    expect_type,
)
from repro.exceptions import ClusterProtocolError, ConfigurationError


def decode(data: bytes):
    """Run ``read_frame`` against literal bytes (EOF after ``data``)."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(run())


class TestFraming:
    def test_round_trip(self):
        payload = {"type": "ping", "nested": {"a": [1, 2.5, None, "x"]}}
        assert decode(encode_frame(payload)) == payload

    def test_float_scores_round_trip_bit_exactly(self):
        # json repr is the shortest round-tripping decimal, so scores
        # survive the wire bit-for-bit — the merge-parity precondition.
        scores = [0.1 + 0.2, 1 / 3, 2**-30, 123456.789012345]
        frame = encode_frame({"type": "status", "scores": scores})
        assert decode(frame)["scores"] == scores

    def test_two_frames_back_to_back(self):
        data = encode_frame({"type": "ping", "n": 1}) + encode_frame(
            {"type": "ping", "n": 2}
        )

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            first = await read_frame(reader)
            second = await read_frame(reader)
            third = await read_frame(reader)
            return first, second, third

        first, second, third = asyncio.run(run())
        assert (first["n"], second["n"]) == (1, 2)
        assert third is None  # clean EOF between frames

    def test_clean_eof_reads_none(self):
        assert decode(b"") is None

    def test_truncated_header_raises(self):
        with pytest.raises(ClusterProtocolError):
            decode(b"\x00\x00")

    def test_truncated_body_raises(self):
        frame = encode_frame({"type": "ping"})
        with pytest.raises(ClusterProtocolError):
            decode(frame[:-3])

    def test_oversized_length_raises(self):
        header = (MAX_FRAME_BYTES + 1).to_bytes(FRAME_HEADER_BYTES, "big")
        with pytest.raises(ClusterProtocolError):
            decode(header)

    def test_non_json_body_raises(self):
        body = b"not json"
        data = len(body).to_bytes(FRAME_HEADER_BYTES, "big") + body
        with pytest.raises(ClusterProtocolError):
            decode(data)

    def test_non_object_payload_raises(self):
        body = b"[1,2,3]"
        data = len(body).to_bytes(FRAME_HEADER_BYTES, "big") + body
        with pytest.raises(ClusterProtocolError):
            decode(data)

    def test_encode_rejects_non_object(self):
        with pytest.raises(ClusterProtocolError):
            encode_frame([1, 2, 3])  # type: ignore[arg-type]

    def test_expect_type(self):
        assert expect_type({"type": "search"}) == "search"
        with pytest.raises(ClusterProtocolError):
            expect_type({"type": "gossip"})
        with pytest.raises(ClusterProtocolError):
            expect_type({})


class TestRoutingTableCodec:
    def test_round_trip(self):
        table = RoutingTable(
            epoch=7,
            workers=("a", "b", "c"),
            live=("a", "c"),
            replication=2,
        )
        assert RoutingTable.from_json(table.to_json()) == table

    def test_duplicate_ids_are_deduplicated_in_order(self):
        table = RoutingTable.from_json(
            {"epoch": 0, "workers": ["b", "a", "b"], "live": ["a", "a"]}
        )
        assert table.workers == ("b", "a")
        assert table.live == ("a",)

    @pytest.mark.parametrize(
        "payload",
        [
            {"epoch": -1, "workers": [], "live": []},
            {"epoch": True, "workers": [], "live": []},
            {"epoch": "3", "workers": [], "live": []},
            {"epoch": 0, "workers": "ab", "live": []},
            {"epoch": 0, "workers": [""], "live": []},
            {"epoch": 0, "workers": [1], "live": []},
            {"epoch": 0, "workers": ["a"], "live": ["b"]},
            {"epoch": 0, "workers": ["a"], "live": ["a"],
             "replication": 0},
            {"epoch": 0, "workers": ["a"], "live": ["a"],
             "replication": True},
        ],
    )
    def test_invalid_payloads_raise(self, payload):
        with pytest.raises(ClusterProtocolError):
            RoutingTable.from_json(payload)


TABLE_IDS = [f"T{i:03d}" for i in range(200)]
WORKERS = ("alpha", "beta", "gamma", "delta")


class TestHashRing:
    def test_determinism_across_instances(self):
        # Two independently-built rings (as in two processes) agree on
        # every owner list — blake2b points, never salted hash().
        left = HashRing(WORKERS, replication=2)
        right = HashRing(WORKERS, replication=2)
        for table_id in TABLE_IDS:
            assert left.owners(table_id) == right.owners(table_id)

    def test_owners_are_distinct_and_r_way(self):
        ring = HashRing(WORKERS, replication=3)
        for table_id in TABLE_IDS:
            owners = ring.owners(table_id)
            assert len(owners) == 3
            assert len(set(owners)) == 3
            assert set(owners) <= set(WORKERS)

    def test_replication_clamps_to_fleet_size(self):
        ring = HashRing(("solo",), replication=3)
        assert ring.owners("T000") == ("solo",)

    def test_partition_covers_all_tables_when_all_live(self):
        ring = HashRing(WORKERS, replication=2)
        shards = ring.partition(TABLE_IDS, WORKERS)
        flattened = [tid for shard in shards.values() for tid in shard]
        assert sorted(flattened) == sorted(TABLE_IDS)
        assert len(flattened) == len(set(flattened))  # disjoint

    def test_shard_matches_partition(self):
        ring = HashRing(WORKERS, replication=2)
        shards = ring.partition(TABLE_IDS, WORKERS)
        for owner in WORKERS:
            assert ring.shard(owner, TABLE_IDS, WORKERS) == shards.get(
                owner, []
            )

    def test_failover_reassigns_only_dead_workers_tables(self):
        ring = HashRing(WORKERS, replication=2)
        before = ring.partition(TABLE_IDS, WORKERS)
        live = tuple(w for w in WORKERS if w != "beta")
        after = ring.partition(TABLE_IDS, live)
        # Full coverage survives one death under R=2 ...
        assert sorted(
            tid for shard in after.values() for tid in shard
        ) == sorted(TABLE_IDS)
        # ... and every table whose primary survived stays put.
        for owner in live:
            assert set(before[owner]) <= set(after[owner])

    def test_shard_delta_is_exactly_the_reassigned_tables(self):
        ring = HashRing(WORKERS, replication=2)
        live = tuple(w for w in WORKERS if w != "beta")
        for owner in live:
            delta = ring.shard_delta(owner, TABLE_IDS, live=live,
                                     prev_live=WORKERS)
            full = ring.shard(owner, TABLE_IDS, live)
            old = ring.shard(owner, TABLE_IDS, WORKERS)
            assert sorted(delta) == sorted(set(full) - set(old))

    def test_rebalance_moves_a_bounded_fraction(self):
        # Consistent hashing's point: adding a worker relocates roughly
        # 1/N of the keys, not all of them.
        ring_before = HashRing(WORKERS[:3], replication=1)
        ring_after = HashRing(WORKERS, replication=1)
        moved = sum(
            1
            for tid in TABLE_IDS
            if ring_before.owners(tid)[0] != ring_after.owners(tid)[0]
        )
        assert 0 < moved < len(TABLE_IDS) // 2

    def test_uncovered_tables_are_dropped_from_partition(self):
        ring = HashRing(("a", "b"), replication=1)
        shards = ring.partition(TABLE_IDS, live=("a",))
        covered = [tid for shard in shards.values() for tid in shard]
        only_a = ring.shard("a", TABLE_IDS, live=("a", "b"))
        assert sorted(covered) == sorted(only_a)

    def test_empty_ring_owns_nothing(self):
        ring = HashRing((), replication=2)
        assert ring.owners("T000") == ()
        assert ring.partition(TABLE_IDS, live=()) == {}

    def test_invalid_configurations_raise(self):
        with pytest.raises(ConfigurationError):
            HashRing(("a",), replication=0)
        with pytest.raises(ConfigurationError):
            HashRing(("a",), replication=1, vnodes=0)

    def test_default_vnodes(self):
        assert DEFAULT_VNODES == 64


class TestFieldValidators:
    """The wire-boundary sanitizers the handlers route frames through."""

    def test_expect_epoch_accepts_non_negative_int(self):
        from repro.cluster.protocol import expect_epoch

        assert expect_epoch({"epoch": 0}) == 0
        assert expect_epoch({"gen": 7}, "gen") == 7
        for bad in ({}, {"epoch": -1}, {"epoch": "3"}, {"epoch": True},
                    {"epoch": 2.0}):
            with pytest.raises(ClusterProtocolError):
                expect_epoch(bad)

    def test_expect_worker_id_requires_non_empty_string(self):
        from repro.cluster.protocol import expect_worker_id

        assert expect_worker_id({"worker_id": "w-1"}) == "w-1"
        assert expect_worker_id({"owner": "w-2"}, "owner") == "w-2"
        for bad in ({}, {"worker_id": ""}, {"worker_id": 3}):
            with pytest.raises(ClusterProtocolError):
                expect_worker_id(bad)

    def test_expect_worker_ids_dedupes_and_orders(self):
        from repro.cluster.protocol import expect_worker_ids

        assert expect_worker_ids(
            {"live": ["b", "a", "b"]}, "live"
        ) == ("b", "a")
        with pytest.raises(ClusterProtocolError):
            expect_worker_ids({"live": "not-a-list"}, "live")

    def test_expect_endpoint_bounds_the_port(self):
        from repro.cluster.protocol import expect_endpoint

        assert expect_endpoint(
            {"host": "127.0.0.1", "port": 8080}
        ) == ("127.0.0.1", 8080)
        for bad in ({"host": "", "port": 80},
                    {"host": "h", "port": 0},
                    {"host": "h", "port": 65536},
                    {"host": "h", "port": True},
                    {"host": "h", "port": "80"}):
            with pytest.raises(ClusterProtocolError):
                expect_endpoint(bad)

    def test_expect_segment_path_rejects_traversal_and_nul(self):
        from repro.cluster.protocol import expect_segment_path

        assert expect_segment_path(
            {"path": "/var/segments/seg-3"}
        ) == "/var/segments/seg-3"
        for bad in ({}, {"path": ""}, {"path": 7},
                    {"path": "/var/\x00/seg"},
                    {"path": "/var/../etc/passwd"},
                    {"path": "..\\..\\secrets"}):
            with pytest.raises(ClusterProtocolError):
                expect_segment_path(bad)

"""Tests for predicate-based entity similarity."""

import pytest

from repro.kg import Entity, KnowledgeGraph
from repro.similarity import PredicateJaccardSimilarity, predicate_signature


@pytest.fixture()
def graph():
    g = KnowledgeGraph()
    for uri in ("kg:p1", "kg:p2", "kg:t1", "kg:t2", "kg:c1", "kg:solo"):
        g.add_entity(Entity(uri, uri))
    g.add_edge("kg:p1", "playsFor", "kg:t1")
    g.add_edge("kg:p1", "bornIn", "kg:c1")
    g.add_edge("kg:p2", "playsFor", "kg:t2")
    g.add_edge("kg:p2", "bornIn", "kg:c1")
    g.add_edge("kg:t1", "basedIn", "kg:c1")
    g.add_edge("kg:t2", "basedIn", "kg:c1")
    return g


class TestPredicateSignature:
    def test_direction_tagged(self, graph):
        assert predicate_signature(graph, "kg:p1") == {
            "out:playsFor", "out:bornIn",
        }
        assert predicate_signature(graph, "kg:t1") == {
            "in:playsFor", "out:basedIn",
        }

    def test_isolated_entity_empty(self, graph):
        assert predicate_signature(graph, "kg:solo") == frozenset()

    def test_in_and_out_distinguished(self, graph):
        # Players emit playsFor, teams receive it: different signatures.
        assert predicate_signature(graph, "kg:p1") != \
            predicate_signature(graph, "kg:t1")


class TestPredicateJaccardSimilarity:
    def test_identity(self, graph):
        sigma = PredicateJaccardSimilarity(graph)
        assert sigma.similarity("kg:p1", "kg:p1") == 1.0

    def test_same_role_capped(self, graph):
        sigma = PredicateJaccardSimilarity(graph)
        # p1 and p2 have identical predicate signatures -> cap.
        assert sigma.similarity("kg:p1", "kg:p2") == 0.95

    def test_different_roles_lower(self, graph):
        sigma = PredicateJaccardSimilarity(graph)
        same_role = sigma.similarity("kg:p1", "kg:p2")
        cross_role = sigma.similarity("kg:p1", "kg:t1")
        assert cross_role < same_role

    def test_isolated_scores_zero(self, graph):
        sigma = PredicateJaccardSimilarity(graph)
        assert sigma.similarity("kg:p1", "kg:solo") == 0.0
        assert sigma.similarity("kg:solo", "kg:solo") == 1.0

    def test_unknown_uri_zero(self, graph):
        sigma = PredicateJaccardSimilarity(graph)
        assert sigma.similarity("kg:p1", "kg:ghost") == 0.0

    def test_custom_cap(self, graph):
        sigma = PredicateJaccardSimilarity(graph, cap=0.5)
        assert sigma.similarity("kg:p1", "kg:p2") == 0.5

    def test_name(self, graph):
        assert PredicateJaccardSimilarity(graph).name == "predicates"

    def test_plugs_into_search_engine(self, sports_graph, sports_lake,
                                      sports_mapping):
        """The paper's framework is generic in sigma: predicates work."""
        from repro.core import Query, TableSearchEngine

        engine = TableSearchEngine(
            sports_lake, sports_mapping,
            PredicateJaccardSimilarity(sports_graph),
        )
        results = engine.search(
            Query.single("kg:player0", "kg:team0"), k=5
        )
        assert len(results) == 5
        assert results.table_ids()[0] in ("T00", "T02", "T04", "T06",
                                          "T08", "T10")

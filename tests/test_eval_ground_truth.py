"""Tests for graded ground-truth construction."""

import pytest

from repro.core import Query
from repro.datalake import DataLake, Table
from repro.eval import (
    build_ground_truth,
    entity_jaccard_gains,
    ground_truth_for_benchmark,
)
from repro.linking import EntityMapping


@pytest.fixture()
def setup():
    lake = DataLake(
        [
            Table("exact", ["A"], [["x"]],
                  metadata={"category": "c1", "domain": "d1"}),
            Table("same_cat", ["A"], [["y"]],
                  metadata={"category": "c1", "domain": "d1"}),
            Table("same_domain", ["A"], [["z"]],
                  metadata={"category": "c2", "domain": "d1"}),
            Table("other", ["A"], [["w"]],
                  metadata={"category": "c9", "domain": "d9"}),
        ]
    )
    mapping = EntityMapping()
    mapping.link("exact", 0, 0, "kg:q1")
    mapping.link("same_cat", 0, 0, "kg:other")
    mapping.link("same_domain", 0, 0, "kg:third")
    return lake, mapping


class TestEntityJaccardGains:
    def test_overlapping_table_scored(self, setup):
        lake, mapping = setup
        gains = entity_jaccard_gains(lake, mapping, Query.single("kg:q1"))
        assert gains == {"exact": 1.0}

    def test_partial_overlap(self, setup):
        lake, mapping = setup
        gains = entity_jaccard_gains(
            lake, mapping, Query.single("kg:q1", "kg:unseen")
        )
        assert gains["exact"] == pytest.approx(0.5)


class TestBuildGroundTruth:
    def test_category_grades(self, setup):
        lake, mapping = setup
        truth = build_ground_truth(
            lake, mapping, Query.single("kg:q1"),
            query_category="c1", query_domain="d1",
        )
        # exact: category (3) + entity overlap (2*1) = 5.
        assert truth.gain("exact") == pytest.approx(5.0)
        assert truth.gain("same_cat") == pytest.approx(3.0)
        assert truth.gain("same_domain") == pytest.approx(1.0)
        assert truth.gain("other") == 0.0

    def test_ordering_exact_above_topical(self, setup):
        lake, mapping = setup
        truth = build_ground_truth(
            lake, mapping, Query.single("kg:q1"),
            query_category="c1", query_domain="d1",
        )
        assert truth.gain("exact") > truth.gain("same_cat") > \
            truth.gain("same_domain") > truth.gain("other")

    def test_without_topical_info(self, setup):
        lake, mapping = setup
        truth = build_ground_truth(lake, mapping, Query.single("kg:q1"))
        assert truth.relevant_ids() == {"exact"}

    def test_relevant_ids_and_len(self, setup):
        lake, mapping = setup
        truth = build_ground_truth(
            lake, mapping, Query.single("kg:q1"), query_category="c1"
        )
        assert truth.relevant_ids() == {"exact", "same_cat"}
        assert len(truth) == 2


class TestBenchmarkHelper:
    def test_keyed_by_query(self, setup):
        lake, mapping = setup
        queries = {"q1": Query.single("kg:q1"), "q2": Query.single("kg:none")}
        truths = ground_truth_for_benchmark(
            lake, mapping, queries,
            categories={"q1": "c1"}, domains={"q1": "d1"},
        )
        assert set(truths) == {"q1", "q2"}
        assert truths["q1"].gain("exact") > 0.0
        assert len(truths["q2"]) == 0

"""Unit tests for the label-based entity linker."""

import pytest

from repro.datalake import DataLake, Table
from repro.kg import Entity, KnowledgeGraph
from repro.linking import LabelLinker


@pytest.fixture()
def graph():
    g = KnowledgeGraph()
    g.add_entity(Entity("kg:santo", "Ron Santo", frozenset({"BaseballPlayer"})))
    g.add_entity(Entity("kg:cubs", "Chicago Cubs", frozenset({"BaseballTeam"})))
    g.add_entity(
        Entity("kg:chicago", "Chicago", frozenset({"City"}),
               aliases=("Chi-Town",))
    )
    return g


class TestLinkValue:
    def test_exact_match_case_insensitive(self, graph):
        linker = LabelLinker(graph)
        assert linker.link_value("ron santo") == "kg:santo"
        assert linker.link_value("RON SANTO") == "kg:santo"

    def test_alias_match(self, graph):
        assert LabelLinker(graph).link_value("Chi-Town") == "kg:chicago"

    def test_non_strings_never_link(self, graph):
        linker = LabelLinker(graph)
        assert linker.link_value(42) is None
        assert linker.link_value(None) is None
        assert linker.link_value(3.14) is None

    def test_whitespace_and_empty(self, graph):
        linker = LabelLinker(graph)
        assert linker.link_value("   ") is None
        assert linker.link_value("") is None

    def test_fuzzy_match_above_threshold(self, graph):
        linker = LabelLinker(graph, min_score=0.3)
        assert linker.link_value("Santo") == "kg:santo"

    def test_fuzzy_disabled(self, graph):
        linker = LabelLinker(graph, fuzzy=False)
        assert linker.link_value("Santo") is None
        assert linker.link_value("Ron Santo") == "kg:santo"

    def test_unknown_mention(self, graph):
        assert LabelLinker(graph).link_value("Meryl Streep xyzzy") is None


class TestLinkTables:
    def test_link_table(self, graph):
        table = Table(
            "T1",
            ["Player", "Team", "Year"],
            [["Ron Santo", "Chicago Cubs", 1970],
             ["Unknown Guy", "Chicago Cubs", 1971]],
        )
        mapping = LabelLinker(graph).link_table(table)
        assert mapping.entity_at("T1", 0, 0) == "kg:santo"
        assert mapping.entity_at("T1", 0, 1) == "kg:cubs"
        assert mapping.entity_at("T1", 0, 2) is None  # number
        assert mapping.entity_at("T1", 1, 0) is None  # unknown mention
        assert mapping.entity_at("T1", 1, 1) == "kg:cubs"

    def test_link_lake(self, graph):
        lake = DataLake(
            [
                Table("A", ["X"], [["Ron Santo"]]),
                Table("B", ["X"], [["Chicago"]]),
            ]
        )
        mapping = LabelLinker(graph).link_lake(lake)
        assert mapping.tables_with_entity("kg:santo") == {"A"}
        assert mapping.tables_with_entity("kg:chicago") == {"B"}

    def test_sports_fixture_coverage(self, sports_graph, sports_lake,
                                     sports_mapping):
        # Every entity cell of the fixture lake is exactly linkable:
        # 3 entity columns x 4 rows per table.
        for table in sports_lake:
            assert sports_mapping.linked_cell_count(table.table_id) == 12

    def test_duplicate_labels_resolve_deterministically(self):
        g = KnowledgeGraph()
        g.add_entity(Entity("kg:first", "Springfield", frozenset({"City"})))
        g.add_entity(Entity("kg:second", "Springfield", frozenset({"City"})))
        # First writer wins, always the earliest-inserted entity.
        assert LabelLinker(g).link_value("Springfield") == "kg:first"

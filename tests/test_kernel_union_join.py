"""Parity and serving tests for the vectorized union/join kernels.

The contract under test: the vectorized engines
(:class:`~repro.core.kernel.union.VectorizedUnionSearchEngine`,
:class:`~repro.core.kernel.join.VectorizedJoinSearchEngine`) return the
*same ranking* as the scalar baselines — scores within 1e-9 for the
embeddings encoder, bit-exact everywhere else — over randomized lakes
and queries, through candidate restriction (the cluster shard path),
through ``search_batch`` lane stacking (the serve micro-batch path),
after mutations, and end-to-end over the HTTP wire via the ``task``
request field.
"""

import random

import pytest

from repro.baselines import (
    JoinTableSearch,
    UnionTableSearch,
    normalize_cell,
    query_value_sets,
)
from repro.core.kernel import (
    VectorizedJoinSearchEngine,
    VectorizedUnionSearchEngine,
)
from repro.core.query import Query
from repro.datalake import DataLake, Table
from repro.exceptions import ConfigurationError, ProtocolError
from repro.linking import LabelLinker
from repro.serve import ServeConfig, ServerThread
from repro.serve.protocol import SearchRequest
from repro.system import Thetis

from tests.test_serve_server import build_served_thetis, http_request

TOLERANCE = 1e-9

URIS = (
    [f"kg:player{i}" for i in range(32)]
    + [f"kg:team{i}" for i in range(8)]
    + [f"kg:city{i}" for i in range(4)]
)

WORDS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]


def random_query(rng, max_width=5):
    width = rng.randint(1, max_width)
    return Query([
        [rng.choice(URIS) for _ in range(width)]
        for _ in range(rng.randint(1, 3))
    ])


def make_random_lake(rng, tables=10):
    """A lake mixing linkable labels, free text, and numeric formats."""
    lake = DataLake()
    cells = (
        [f"Player {i}" for i in range(32)]
        + [f"Team {i}" for i in range(8)]
        + [f"City {i}" for i in range(4)]
        + WORDS
        + ["1", "1.0", "01", "2.5", " 2.5 ", "3", 3, 4.0, "", None]
    )
    for t in range(tables):
        width = rng.randint(1, 6)
        rows = [
            [rng.choice(cells) for _ in range(width)]
            for _ in range(rng.randint(1, 6))
        ]
        lake.add(Table(f"R{t:02d}", [f"c{i}" for i in range(width)], rows))
    return lake


def pairs(results):
    return [(scored.table_id, scored.score) for scored in results]


def assert_same_ranking(actual, expected, exact=True):
    """Identical table order; identical (or 1e-9-close) scores."""
    actual, expected = pairs(actual), pairs(expected)
    assert [t for t, _ in actual] == [t for t, _ in expected]
    if exact:
        assert [s for _, s in actual] == [s for _, s in expected]
    else:
        assert all(
            abs(a - e) <= TOLERANCE
            for (_, a), (_, e) in zip(actual, expected)
        )


# ----------------------------------------------------------------------
# Shared canonicalization (normalize_cell) and its numeric folding
# ----------------------------------------------------------------------
class TestNormalizeCell:
    def test_default_is_strip_lower(self):
        assert normalize_cell("  Foo Bar ") == "foo bar"
        assert normalize_cell(None) is None
        assert normalize_cell("   ") is None
        # Historical byte-level behavior: numeric formats stay distinct.
        assert normalize_cell("1.0") == "1.0"
        assert normalize_cell("1") == "1"

    def test_fold_numeric_unifies_representations(self):
        assert normalize_cell("1", fold_numeric=True) == "1"
        assert normalize_cell("1.0", fold_numeric=True) == "1"
        assert normalize_cell(" 01 ", fold_numeric=True) == "1"
        assert normalize_cell(1, fold_numeric=True) == "1"
        assert normalize_cell(4.0, fold_numeric=True) == "4"
        assert normalize_cell("2.5", fold_numeric=True) == "2.5"

    def test_fold_numeric_keeps_text_and_non_finite(self):
        assert normalize_cell("abc", fold_numeric=True) == "abc"
        assert normalize_cell("nan", fold_numeric=True) == "nan"
        assert normalize_cell("inf", fold_numeric=True) == "inf"

    def test_query_value_sets_fold(self, sports_graph):
        query = Query([["kg:player0", "kg:team0"]])
        plain = query_value_sets(query, sports_graph)
        folded = query_value_sets(query, sports_graph, fold_numeric=True)
        assert plain == [
            frozenset({"player 0"}), frozenset({"team 0"}),
        ]
        assert folded == plain  # labels are non-numeric here


# ----------------------------------------------------------------------
# Lazy postings index of the scalar join baseline
# ----------------------------------------------------------------------
class TestJoinLazyIndex:
    def test_one_build_for_many_searches(self, sports_lake, sports_graph):
        searcher = JoinTableSearch(sports_lake)
        assert searcher.index_builds == 0  # construction builds nothing
        rng = random.Random(3)
        for _ in range(5):
            searcher.search(random_query(rng), sports_graph, k=5)
        assert searcher.index_builds == 1

    def test_invalidate_forces_one_rebuild(self, sports_lake, sports_graph):
        searcher = JoinTableSearch(sports_lake)
        query = Query([["kg:player0"]])
        searcher.search(query, sports_graph)
        searcher.invalidate()
        searcher.search(query, sports_graph)
        searcher.search(query, sports_graph)
        assert searcher.index_builds == 2

    def test_bad_mode_is_rejected(self, sports_lake):
        with pytest.raises(ConfigurationError):
            JoinTableSearch(sports_lake, mode="cosine")


# ----------------------------------------------------------------------
# Randomized union parity (both encoders)
# ----------------------------------------------------------------------
class TestUnionParity:
    def test_types_parity_on_sports_lake(
        self, sports_lake, sports_graph, sports_mapping
    ):
        scalar = UnionTableSearch(
            sports_lake, sports_mapping, graph=sports_graph
        )
        fast = VectorizedUnionSearchEngine(
            sports_lake, sports_mapping, graph=sports_graph
        )
        rng = random.Random(17)
        for _ in range(12):
            query = random_query(rng)
            assert_same_ranking(
                fast.search(query), scalar.search(query), exact=True
            )

    def test_embeddings_parity_on_sports_lake(
        self, sports_lake, sports_graph, sports_mapping, sports_embeddings
    ):
        scalar = UnionTableSearch(
            sports_lake, sports_mapping, store=sports_embeddings,
            column_encoder="embeddings",
        )
        fast = VectorizedUnionSearchEngine(
            sports_lake, sports_mapping, store=sports_embeddings,
            column_encoder="embeddings",
        )
        rng = random.Random(23)
        for _ in range(10):
            query = random_query(rng)
            assert_same_ranking(
                fast.search(query), scalar.search(query), exact=False
            )

    def test_types_parity_on_random_lakes(self, sports_graph):
        rng = random.Random(41)
        for _ in range(4):
            lake = make_random_lake(rng)
            mapping = LabelLinker(sports_graph).link_lake(lake)
            scalar = UnionTableSearch(lake, mapping, graph=sports_graph)
            fast = VectorizedUnionSearchEngine(
                lake, mapping, graph=sports_graph
            )
            for _ in range(4):
                query = random_query(rng)
                assert_same_ranking(
                    fast.search(query), scalar.search(query), exact=True
                )

    def test_top_k_matches(self, sports_lake, sports_graph, sports_mapping):
        scalar = UnionTableSearch(
            sports_lake, sports_mapping, graph=sports_graph
        )
        fast = VectorizedUnionSearchEngine(
            sports_lake, sports_mapping, graph=sports_graph
        )
        query = Query([["kg:player0", "kg:team0", "kg:city0"]])
        assert_same_ranking(
            fast.search(query, k=3), scalar.search(query, k=3)
        )

    def test_constructor_validation_matches_baseline(
        self, sports_lake, sports_mapping
    ):
        with pytest.raises(ConfigurationError):
            VectorizedUnionSearchEngine(
                sports_lake, sports_mapping, column_encoder="bm25"
            )
        with pytest.raises(ConfigurationError):
            VectorizedUnionSearchEngine(sports_lake, sports_mapping)
        with pytest.raises(ConfigurationError):
            VectorizedUnionSearchEngine(
                sports_lake, sports_mapping, column_encoder="embeddings"
            )


# ----------------------------------------------------------------------
# Randomized join parity (both modes, both fold flags)
# ----------------------------------------------------------------------
class TestJoinParity:
    @pytest.mark.parametrize("mode", ["containment", "jaccard"])
    @pytest.mark.parametrize("fold_numeric", [False, True])
    def test_parity_on_random_lakes(self, sports_graph, mode, fold_numeric):
        rng = random.Random(hash((mode, fold_numeric)) & 0xFFFF)
        for _ in range(4):
            lake = make_random_lake(rng)
            scalar = JoinTableSearch(
                lake, mode=mode, fold_numeric=fold_numeric
            )
            fast = VectorizedJoinSearchEngine(
                lake, sports_graph, mode=mode, fold_numeric=fold_numeric
            )
            for _ in range(4):
                query = random_query(rng)
                assert_same_ranking(
                    fast.search(query),
                    scalar.search(query, sports_graph),
                    exact=True,  # every score is the same int/int division
                )

    def test_parity_on_sports_lake(self, sports_lake, sports_graph):
        scalar = JoinTableSearch(sports_lake)
        fast = VectorizedJoinSearchEngine(sports_lake, sports_graph)
        rng = random.Random(5)
        for _ in range(8):
            query = random_query(rng)
            assert_same_ranking(
                fast.search(query), scalar.search(query, sports_graph)
            )

    def test_fold_numeric_changes_matches(self, sports_graph):
        lake = DataLake()
        lake.add(Table("N0", ["n"], [["1.0"], ["2.0"]]))
        query = Query([["kg:missing"]])
        # Entity label falls back to the URI, which is non-numeric; use
        # a table-derived query instead: values "1" vs stored "1.0".
        strict = VectorizedJoinSearchEngine(lake, sports_graph)
        folded = VectorizedJoinSearchEngine(
            lake, sports_graph, fold_numeric=True
        )
        assert strict.index().vocab.tolist() == ["1.0", "2.0"]
        assert folded.index().vocab.tolist() == ["1", "2"]
        assert len(strict.search(query)) == 0
        assert len(folded.search(query)) == 0


# ----------------------------------------------------------------------
# Candidate restriction: the cluster shard-scatter contract
# ----------------------------------------------------------------------
class TestCandidates:
    def test_union_candidates_equal_post_filter(
        self, sports_lake, sports_graph, sports_mapping
    ):
        fast = VectorizedUnionSearchEngine(
            sports_lake, sports_mapping, graph=sports_graph
        )
        rng = random.Random(9)
        shard = [f"T{t:02d}" for t in range(0, 12, 2)]
        for _ in range(6):
            query = random_query(rng)
            full = [p for p in pairs(fast.search(query)) if p[0] in shard]
            restricted = pairs(fast.search(query, candidates=shard))
            assert restricted == full

    def test_join_candidates_equal_post_filter(
        self, sports_lake, sports_graph
    ):
        fast = VectorizedJoinSearchEngine(sports_lake, sports_graph)
        rng = random.Random(13)
        shard = [f"T{t:02d}" for t in range(1, 12, 2)]
        for _ in range(6):
            query = random_query(rng)
            full = [p for p in pairs(fast.search(query)) if p[0] in shard]
            restricted = pairs(fast.search(query, candidates=shard))
            assert restricted == full

    def test_unknown_candidates_are_ignored(
        self, sports_lake, sports_graph, sports_mapping
    ):
        fast = VectorizedUnionSearchEngine(
            sports_lake, sports_mapping, graph=sports_graph
        )
        query = Query([["kg:player0"]])
        assert pairs(fast.search(query, candidates=["nope"])) == []


# ----------------------------------------------------------------------
# Lane-stacked micro-batches: bit-equal to sequential search
# ----------------------------------------------------------------------
class TestSearchBatch:
    def test_union_batch_is_bit_equal(
        self, sports_lake, sports_graph, sports_mapping
    ):
        fast = VectorizedUnionSearchEngine(
            sports_lake, sports_mapping, graph=sports_graph
        )
        rng = random.Random(29)
        queries = [random_query(rng) for _ in range(6)]
        queries.append(queries[0])  # duplicate: dedup must not change it
        batched = fast.search_batch(queries, k=5)
        sequential = [fast.search(query, k=5) for query in queries]
        for got, want in zip(batched, sequential):
            assert pairs(got) == pairs(want)

    def test_join_batch_is_bit_equal(self, sports_lake, sports_graph):
        fast = VectorizedJoinSearchEngine(sports_lake, sports_graph)
        rng = random.Random(31)
        queries = [random_query(rng) for _ in range(6)]
        queries.append(queries[1])
        batched = fast.search_batch(queries, k=5)
        sequential = [fast.search(query, k=5) for query in queries]
        for got, want in zip(batched, sequential):
            assert pairs(got) == pairs(want)

    def test_batch_with_candidates_matches(self, sports_lake, sports_graph):
        fast = VectorizedJoinSearchEngine(sports_lake, sports_graph)
        query = Query([["kg:player0", "kg:team0"]])
        shard = ["T00", "T03", "T07"]
        batched = fast.search_batch([query, query], candidates=[shard, None])
        assert pairs(batched[0]) == pairs(fast.search(query, candidates=shard))
        assert pairs(batched[1]) == pairs(fast.search(query))

    def test_empty_batch(self, sports_lake, sports_graph):
        fast = VectorizedJoinSearchEngine(sports_lake, sports_graph)
        assert fast.search_batch([]) == []


# ----------------------------------------------------------------------
# Mutation parity: rebuilt indexes equal fresh scalar baselines
# ----------------------------------------------------------------------
class TestMutationParity:
    def test_add_then_remove_keeps_parity(
        self, sports_lake, sports_graph, sports_mapping
    ):
        served = build_served_thetis(
            sports_lake, sports_graph, sports_mapping
        )
        query = Query([["kg:player2", "kg:team2", "kg:city2"]])
        with served:
            before_union = pairs(served.search(query, task="union"))
            before_join = pairs(served.search(query, task="join"))
            served.add_table(Table(
                "TNEW",
                ["Player", "Team"],
                [["Player 2", "Team 2"], ["Player 10", "Team 2"]],
            ))
            assert_same_ranking(
                served.search(query, task="union"),
                UnionTableSearch(
                    served.lake, served.mapping, graph=sports_graph
                ).search(query, k=10),
            )
            assert_same_ranking(
                served.search(query, task="join"),
                JoinTableSearch(served.lake).search(
                    query, sports_graph, k=10
                ),
            )
            served.remove_table("TNEW")
            assert pairs(served.search(query, task="union")) == before_union
            assert pairs(served.search(query, task="join")) == before_join


# ----------------------------------------------------------------------
# Thetis task dispatch
# ----------------------------------------------------------------------
class TestThetisTasks:
    def test_search_dispatches_to_task_engines(
        self, sports_lake, sports_graph, sports_mapping
    ):
        query = Query([["kg:player0", "kg:team0"]])
        with Thetis(sports_lake, sports_graph, sports_mapping) as thetis:
            union = pairs(thetis.search(query, task="union"))
            join = pairs(thetis.search(query, task="join"))
            assert union == pairs(thetis.union_engine().search(query, k=10))
            assert join == pairs(thetis.join_engine().search(query, k=10))
            entity = pairs(thetis.search(query))
            assert entity != union  # different rankings, different tasks

    def test_unknown_task_is_rejected(
        self, sports_lake, sports_graph, sports_mapping
    ):
        query = Query([["kg:player0"]])
        with Thetis(sports_lake, sports_graph, sports_mapping) as thetis:
            with pytest.raises(ConfigurationError):
                thetis.search(query, task="clustering")

    def test_task_excludes_lsh_and_prefilter(
        self, sports_lake, sports_graph, sports_mapping
    ):
        query = Query([["kg:player0"]])
        with Thetis(sports_lake, sports_graph, sports_mapping) as thetis:
            with pytest.raises(ConfigurationError):
                thetis.search(query, task="union", use_lsh=True)
            with pytest.raises(ConfigurationError):
                thetis.search(query, task="join", mode="prefilter")

    def test_union_embeddings_requires_training(
        self, sports_lake, sports_graph, sports_mapping
    ):
        query = Query([["kg:player0"]])
        with Thetis(sports_lake, sports_graph, sports_mapping) as thetis:
            with pytest.raises(ConfigurationError):
                thetis.search(query, task="union", method="embeddings")
            thetis.train_embeddings(dimensions=8, epochs=1, seed=0)
            thetis.search(query, task="union", method="embeddings")

    def test_search_many_matches_search(
        self, sports_lake, sports_graph, sports_mapping
    ):
        rng = random.Random(37)
        queries = {f"q{i}": random_query(rng) for i in range(4)}
        queries["dup"] = queries["q0"]
        with Thetis(sports_lake, sports_graph, sports_mapping) as thetis:
            for task in ("union", "join"):
                many = thetis.search_many(queries, k=5, task=task)
                for qid, query in queries.items():
                    assert pairs(many[qid]) == pairs(
                        thetis.search(query, k=5, task=task)
                    )

    def test_search_shard_equals_restricted_search(
        self, sports_lake, sports_graph, sports_mapping
    ):
        shard = [f"T{t:02d}" for t in range(6)]
        rng = random.Random(43)
        with Thetis(sports_lake, sports_graph, sports_mapping) as thetis:
            for task in ("union", "join"):
                query = random_query(rng)
                sharded = thetis.search_shard(query, shard, k=12, task=task)
                full = thetis.search(query, k=12, task=task)
                expected = [p for p in pairs(full) if p[0] in shard]
                assert pairs(sharded) == expected

    def test_search_shard_batch_matches(
        self, sports_lake, sports_graph, sports_mapping
    ):
        shard = [f"T{t:02d}" for t in range(6, 12)]
        rng = random.Random(47)
        queries = [random_query(rng) for _ in range(3)]
        with Thetis(sports_lake, sports_graph, sports_mapping) as thetis:
            for task in ("union", "join"):
                batched = thetis.search_shard_batch(
                    queries, shard, k=12, task=task
                )
                for query, got in zip(queries, batched):
                    want = thetis.search_shard(query, shard, k=12, task=task)
                    assert pairs(got) == pairs(want)


# ----------------------------------------------------------------------
# Wire protocol: the task field
# ----------------------------------------------------------------------
class TestProtocol:
    def test_task_defaults_to_entity(self):
        request = SearchRequest.from_json({"tuples": [["kg:a"]]})
        assert request.task == "entity"

    def test_batch_key_splits_by_task(self):
        entity = SearchRequest.from_json({"tuples": [["kg:a"]]})
        union = SearchRequest.from_json(
            {"tuples": [["kg:a"]], "task": "union"}
        )
        join = SearchRequest.from_json(
            {"tuples": [["kg:a"]], "task": "join"}
        )
        assert len({entity.batch_key(), union.batch_key(),
                    join.batch_key()}) == 3
        assert union.batch_key()[0] == "union"

    def test_task_rejected_off_search_endpoint(self):
        with pytest.raises(ProtocolError):
            SearchRequest.from_json(
                {"tuples": [["kg:a"]], "task": "union"}, mode="topk"
            )

    def test_task_rejected_with_prefilter_or_lsh(self):
        with pytest.raises(ProtocolError):
            SearchRequest.from_json(
                {"tuples": [["kg:a"]], "task": "union",
                 "mode": "prefilter"}
            )
        with pytest.raises(ProtocolError):
            SearchRequest.from_json(
                {"tuples": [["kg:a"]], "task": "join", "use_lsh": True}
            )

    def test_unknown_task_rejected(self):
        with pytest.raises(ProtocolError):
            SearchRequest.from_json(
                {"tuples": [["kg:a"]], "task": "fusion"}
            )


# ----------------------------------------------------------------------
# End-to-end over the wire: POST /search {"task": ...}
# ----------------------------------------------------------------------
class TestServeRoundTrip:
    @pytest.fixture()
    def server(self, sports_lake, sports_graph, sports_mapping):
        served = build_served_thetis(
            sports_lake, sports_graph, sports_mapping
        )
        handle = ServerThread(
            served,
            ServeConfig(port=0, max_batch_size=8, flush_interval=0.005),
        )
        handle.start().wait_ready()
        yield handle
        handle.stop()

    @pytest.fixture()
    def reference(self, sports_lake, sports_graph, sports_mapping):
        with Thetis(sports_lake, sports_graph, sports_mapping) as thetis:
            yield thetis

    def test_union_and_join_round_trip(self, server, reference):
        query = Query([["kg:player0", "kg:team0", "kg:city0"]])
        for task in ("union", "join"):
            status, body = http_request(
                server.port, "POST", "/search",
                {"tuples": [["kg:player0", "kg:team0", "kg:city0"]],
                 "k": 10, "task": task},
            )
            assert status == 200
            assert body["task"] == task
            served = [
                (entry["table_id"], entry["score"])
                for entry in body["results"]
            ]
            assert served == pairs(reference.search(query, k=10, task=task))

    def test_entity_default_unchanged(self, server, reference):
        query = Query([["kg:player0", "kg:team0"]])
        status, body = http_request(
            server.port, "POST", "/search",
            {"tuples": [["kg:player0", "kg:team0"]], "k": 5},
        )
        assert status == 200
        assert body["task"] == "entity"
        served = [
            (entry["table_id"], entry["score"])
            for entry in body["results"]
        ]
        assert served == pairs(reference.search(query, k=5))

    def test_metrics_report_per_task_counts(self, server):
        for task in ("union", "join", "union"):
            http_request(
                server.port, "POST", "/search",
                {"tuples": [["kg:player1"]], "task": task},
            )
        status, body = http_request(server.port, "GET", "/metrics")
        assert status == 200
        tasks = body["tasks"]
        assert tasks["union"] == 2
        assert tasks["join"] == 1

    def test_task_validation_maps_to_400(self, server):
        status, _ = http_request(
            server.port, "POST", "/topk",
            {"tuples": [["kg:player0"]], "task": "union"},
        )
        assert status == 400
        status, _ = http_request(
            server.port, "POST", "/search",
            {"tuples": [["kg:player0"]], "task": "join",
             "mode": "prefilter"},
        )
        assert status == 400

"""Parity and determinism tests for the sharded parallel engine.

The contract under test: for any query, candidate restriction, worker
count, and backend, :class:`ParallelSearchEngine` returns *bit-identical*
rankings (ids, scores, tie-breaks) to the sequential
:class:`TableSearchEngine`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ParallelSearchEngine,
    Query,
    TableSearchEngine,
    merge_topk,
    topk_search,
)
from repro.exceptions import ConfigurationError
from repro.similarity import Informativeness, TypeJaccardSimilarity


def assert_identical(left, right):
    """Rankings equal including exact (bit-identical) scores."""
    assert left.table_ids() == right.table_ids()
    for table_id in left.table_ids():
        assert left.score_of(table_id) == right.score_of(table_id), table_id


@pytest.fixture()
def engine(sports_lake, sports_mapping, sports_graph):
    return TableSearchEngine(
        sports_lake,
        sports_mapping,
        TypeJaccardSimilarity(sports_graph),
        informativeness=Informativeness.from_mapping(
            sports_mapping, len(sports_lake)
        ),
    )


QUERIES = [
    Query.single("kg:player0", "kg:team0", "kg:city0"),
    Query.single("kg:player7"),
    Query([("kg:player0", "kg:team0"), ("kg:player20", "kg:city1")]),
]


class TestThreadBackendParity:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_full_ranking_matches_sequential(self, engine, workers):
        with ParallelSearchEngine(engine, workers=workers,
                                  chunk_size=2) as parallel:
            for query in QUERIES:
                assert_identical(parallel.search(query),
                                 engine.search(query))

    def test_k_truncation_matches(self, engine):
        with ParallelSearchEngine(engine, workers=3) as parallel:
            for k in (1, 3, 12):
                assert_identical(parallel.search(QUERIES[0], k=k),
                                 engine.search(QUERIES[0], k=k))

    def test_candidate_restriction_matches(self, engine):
        candidates = ["T03", "T01", "ghost", "T01", "T07"]
        with ParallelSearchEngine(engine, workers=2,
                                  chunk_size=1) as parallel:
            assert_identical(
                parallel.search(QUERIES[0], candidates=candidates),
                engine.search(QUERIES[0], candidates=candidates),
            )

    def test_search_many_matches(self, engine):
        queries = {f"q{i}": query for i, query in enumerate(QUERIES)}
        with ParallelSearchEngine(engine, workers=2) as parallel:
            sequential = engine.search_many(queries, k=5)
            fanned = parallel.search_many(queries, k=5)
            assert sequential.keys() == fanned.keys()
            for query_id in queries:
                assert_identical(fanned[query_id], sequential[query_id])

    def test_two_parallel_runs_agree(self, engine):
        with ParallelSearchEngine(engine, workers=4,
                                  chunk_size=1) as parallel:
            first = parallel.search(QUERIES[2])
            second = parallel.search(QUERIES[2])
            assert_identical(first, second)

    def test_profile_shards_merge(self, engine):
        engine.profile.reset()
        with ParallelSearchEngine(engine, workers=3,
                                  chunk_size=2) as parallel:
            parallel.search(QUERIES[0])
        assert engine.profile.tables_scored == len(engine.lake)
        assert engine.profile.similarity_calls > 0
        assert engine.profile.total_seconds > 0.0
        assert parallel.profile is engine.profile

    def test_thread_workers_share_persistent_cache(self, engine):
        with ParallelSearchEngine(engine, workers=4) as parallel:
            parallel.search(QUERIES[0])
            engine.profile.reset()
            parallel.search(QUERIES[0])
        assert engine.profile.similarity_misses == 0
        assert engine.profile.similarity_calls > 0


class TestProcessBackendParity:
    def test_process_pool_matches_sequential(self, engine):
        with ParallelSearchEngine(engine, workers=2, backend="process",
                                  chunk_size=3) as parallel:
            for query in QUERIES[:2]:
                assert_identical(parallel.search(query, k=5),
                                 engine.search(query, k=5))

    def test_reset_workers_after_mutation(self, engine, sports_lake):
        with ParallelSearchEngine(engine, workers=2, backend="process",
                                  chunk_size=3) as parallel:
            before = parallel.search(QUERIES[1])
            parallel.reset_workers()
            after = parallel.search(QUERIES[1])
            assert_identical(before, after)


class TestConfiguration:
    def test_unknown_backend_rejected(self, engine):
        with pytest.raises(ConfigurationError):
            ParallelSearchEngine(engine, backend="gpu")

    def test_invalid_workers_rejected(self, engine):
        with pytest.raises(ConfigurationError):
            ParallelSearchEngine(engine, workers=0)

    def test_invalid_chunk_size_rejected(self, engine):
        with pytest.raises(ConfigurationError):
            ParallelSearchEngine(engine, chunk_size=0)

    def test_default_workers_positive(self, engine):
        assert ParallelSearchEngine(engine).workers >= 1


class TestFacadeIntegration:
    def test_thetis_workers_match_sequential(self, sports_lake,
                                             sports_graph, sports_mapping):
        from repro import Thetis

        sequential = Thetis(sports_lake, sports_graph, sports_mapping)
        parallel = Thetis(sports_lake, sports_graph, sports_mapping,
                          workers=3)
        query = Query.single("kg:player3", "kg:team3")
        assert_identical(parallel.search(query, k=8),
                         sequential.search(query, k=8))
        stats = parallel.cache_stats("types")
        assert stats["similarity"].size > 0

    def test_thetis_parallel_engine_cached(self, sports_lake,
                                           sports_graph, sports_mapping):
        from repro import Thetis

        thetis = Thetis(sports_lake, sports_graph, sports_mapping,
                        workers=2)
        assert thetis.parallel_engine("types") is \
            thetis.parallel_engine("types")


class TestBenchgenCorpusParity:
    """The satellite parity matrix on a generated corpus: the same
    query set through sequential search, search_many, topk_search, and
    the parallel engine with 1 and N workers must agree everywhere."""

    @pytest.fixture()
    def bench_engine(self, small_benchmark):
        return TableSearchEngine(
            small_benchmark.lake,
            small_benchmark.mapping,
            TypeJaccardSimilarity(small_benchmark.graph),
            informativeness=Informativeness.from_mapping(
                small_benchmark.mapping, len(small_benchmark.lake)
            ),
        )

    def test_all_engines_agree(self, small_benchmark, bench_engine):
        queries = dict(
            list(small_benchmark.queries.one_tuple.items())[:2]
            + list(small_benchmark.queries.five_tuple.items())[:2]
        )
        k = 10
        sequential = {
            qid: bench_engine.search(query, k=k)
            for qid, query in queries.items()
        }
        batched = bench_engine.search_many(queries, k=k)
        topk = {
            qid: topk_search(bench_engine, query, k)
            for qid, query in queries.items()
        }
        with ParallelSearchEngine(bench_engine, workers=1) as single, \
                ParallelSearchEngine(bench_engine, workers=4,
                                     chunk_size=17) as fanned:
            one_worker = {qid: single.search(query, k=k)
                          for qid, query in queries.items()}
            n_workers = {qid: fanned.search(query, k=k)
                         for qid, query in queries.items()}
        for qid in queries:
            assert_identical(batched[qid], sequential[qid])
            assert_identical(topk[qid], sequential[qid])
            assert_identical(one_worker[qid], sequential[qid])
            assert_identical(n_workers[qid], sequential[qid])


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 31), st.integers(0, 7), st.integers(1, 5))
def test_parallel_equivalence_property(player, team, workers):
    """Random queries and worker counts: parallel equals sequential."""
    from tests.conftest import make_sports_graph, make_sports_lake
    from repro.linking import LabelLinker

    store = test_parallel_equivalence_property.__dict__
    graph = store.setdefault("_graph", make_sports_graph())
    lake = store.setdefault("_lake", make_sports_lake())
    mapping = store.setdefault("_mapping",
                               LabelLinker(graph).link_lake(lake))
    engine = store.setdefault(
        "_engine",
        TableSearchEngine(lake, mapping, TypeJaccardSimilarity(graph)),
    )
    parallel = store.setdefault(
        "_parallel",
        ParallelSearchEngine(engine, workers=4, chunk_size=2),
    )
    parallel.workers = workers
    query = Query.single(f"kg:player{player}", f"kg:team{team}")
    assert_identical(parallel.search(query), engine.search(query))


class TestMergeTopk:
    """The shared partial-merge used by both the in-process sharded
    engine and the cluster coordinator's scatter-gather path."""

    def test_merges_and_orders_by_score_then_id(self):
        merged = merge_topk(
            [[(0.5, "b"), (0.25, "c")], [(0.75, "a"), (0.5, "aa")]]
        )
        assert merged == [
            (0.75, "a"), (0.5, "aa"), (0.5, "b"), (0.25, "c")
        ]

    def test_empty_partials_are_neutral(self):
        partial = [(1.0, "a"), (0.5, "b")]
        assert merge_topk([[], partial, []]) == merge_topk([partial])
        assert merge_topk([]) == []
        assert merge_topk([[], []]) == []

    def test_first_partial_wins_on_duplicate_ids(self):
        # Hedged retries can race a slow primary; the first-seen score
        # is kept so a duplicate can never change the ranking.
        merged = merge_topk([[(0.5, "a")], [(0.9, "a"), (0.4, "b")]])
        assert merged == [(0.5, "a"), (0.4, "b")]

    def test_k_truncates_and_none_keeps_all(self):
        partials = [[(0.1 * i, f"t{i}")] for i in range(8)]
        assert len(merge_topk(partials, k=3)) == 3
        assert len(merge_topk(partials, k=None)) == 8
        assert merge_topk(partials, k=0) == []
        assert merge_topk(partials, k=100) == merge_topk(partials)

    def test_partition_merge_equals_global_ranking(self, engine):
        # Score every table in one shot, then split the pairs across
        # arbitrary shards: the merge must reproduce the global order
        # bit-for-bit — the cluster-parity invariant in miniature.
        scored = engine.search(QUERIES[0], k=None)
        pairs = [(s.score, s.table_id) for s in scored]
        shards = [pairs[0::3], pairs[1::3], pairs[2::3]]
        assert merge_topk(shards) == sorted(
            pairs, key=lambda p: (-p[0], p[1])
        )
        assert merge_topk(shards, k=4) == merge_topk(shards)[:4]

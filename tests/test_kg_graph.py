"""Unit tests for the knowledge-graph structure."""

import pytest

from repro.exceptions import KnowledgeGraphError, UnknownEntityError
from repro.kg import Entity, KnowledgeGraph


@pytest.fixture()
def graph():
    g = KnowledgeGraph()
    g.add_entity(Entity("kg:a", "Alpha", frozenset({"Person"})))
    g.add_entity(Entity("kg:b", "Beta", frozenset({"Person", "Athlete"})))
    g.add_entity(Entity("kg:c", "Gamma", frozenset({"City"})))
    g.add_edge("kg:a", "knows", "kg:b")
    g.add_edge("kg:b", "livesIn", "kg:c")
    g.add_edge("kg:a", "livesIn", "kg:c")
    return g


class TestNodes:
    def test_len_and_contains(self, graph):
        assert len(graph) == 3
        assert "kg:a" in graph
        assert "kg:z" not in graph

    def test_get_and_find(self, graph):
        assert graph.get("kg:a").label == "Alpha"
        assert graph.find("kg:z") is None
        with pytest.raises(UnknownEntityError):
            graph.get("kg:z")

    def test_iteration_orders(self, graph):
        assert [e.uri for e in graph] == ["kg:a", "kg:b", "kg:c"]
        assert list(graph.uris()) == ["kg:a", "kg:b", "kg:c"]

    def test_replace_entity(self, graph):
        graph2 = KnowledgeGraph()
        graph2.add_entity(Entity("kg:x", "Old"))
        graph2.add_entity(Entity("kg:x", "New"))
        assert graph2.get("kg:x").label == "New"
        assert len(graph2) == 1


class TestEdges:
    def test_edge_endpoints_must_exist(self, graph):
        with pytest.raises(UnknownEntityError):
            graph.add_edge("kg:a", "knows", "kg:zzz")
        with pytest.raises(UnknownEntityError):
            graph.add_edge("kg:zzz", "knows", "kg:a")

    def test_empty_predicate_rejected(self, graph):
        with pytest.raises(KnowledgeGraphError):
            graph.add_edge("kg:a", "", "kg:b")

    def test_out_and_in_edges(self, graph):
        assert graph.out_edges("kg:a") == [("knows", "kg:b"),
                                           ("livesIn", "kg:c")]
        assert graph.in_edges("kg:c") == [("livesIn", "kg:b"),
                                          ("livesIn", "kg:a")]

    def test_neighbors_directions(self, graph):
        assert graph.neighbors("kg:b", undirected=False) == ["kg:c"]
        assert set(graph.neighbors("kg:b")) == {"kg:a", "kg:c"}

    def test_degree(self, graph):
        assert graph.degree("kg:a") == 2
        assert graph.degree("kg:c") == 2

    def test_num_edges_and_predicates(self, graph):
        assert graph.num_edges == 3
        assert graph.predicates == {"knows", "livesIn"}

    def test_edges_iterator(self, graph):
        assert set(graph.edges()) == {
            ("kg:a", "knows", "kg:b"),
            ("kg:b", "livesIn", "kg:c"),
            ("kg:a", "livesIn", "kg:c"),
        }

    def test_parallel_edges_allowed(self, graph):
        graph2 = KnowledgeGraph()
        graph2.add_entity(Entity("kg:x"))
        graph2.add_entity(Entity("kg:y"))
        graph2.add_edge("kg:x", "p", "kg:y")
        graph2.add_edge("kg:x", "p", "kg:y")
        assert graph2.num_edges == 2
        assert graph2.neighbors("kg:x", undirected=False) == ["kg:y", "kg:y"]


class TestSemantics:
    def test_types_of(self, graph):
        assert graph.types_of("kg:b") == {"Person", "Athlete"}

    def test_entities_of_type(self, graph):
        assert {e.uri for e in graph.entities_of_type("Person")} == {
            "kg:a", "kg:b",
        }
        assert graph.entities_of_type("Robot") == []

    def test_label_of(self, graph):
        assert graph.label_of("kg:c") == "Gamma"

    def test_all_type_names(self, graph):
        assert graph.all_type_names() == {"Person", "Athlete", "City"}

    def test_stats(self, graph):
        stats = graph.stats()
        assert stats == {"nodes": 3, "edges": 3, "types": 3, "predicates": 2}

    def test_unknown_entity_everywhere(self, graph):
        for method in (graph.out_edges, graph.in_edges, graph.neighbors,
                       graph.degree, graph.types_of, graph.label_of):
            with pytest.raises(UnknownEntityError):
                method("kg:missing")

"""Tests for the synthetic world: names, domains, KG builder."""

import numpy as np
import pytest

from repro.benchgen import (
    DEFAULT_DOMAINS,
    NameFactory,
    WorldBuilder,
    all_topics,
    build_taxonomy,
    topic_id,
)
from repro.exceptions import ConfigurationError


class TestNameFactory:
    def test_uniqueness(self):
        factory = NameFactory(np.random.default_rng(0))
        names = [factory.person() for _ in range(500)]
        assert len(set(names)) == 500

    def test_kinds_produce_plausible_shapes(self):
        factory = NameFactory(np.random.default_rng(1))
        assert len(factory.person().split()) >= 2
        assert factory.team("Brookdale").startswith("Brookdale")
        assert factory.stadium("Brookdale").startswith("Brookdale")
        assert factory.work().startswith("The ")
        assert factory.country().split()[-1] in (
            "Republic", "Kingdom", "Union", "Federation", "States",
        )

    def test_determinism(self):
        a = NameFactory(np.random.default_rng(5))
        b = NameFactory(np.random.default_rng(5))
        assert [a.city() for _ in range(20)] == [b.city() for _ in range(20)]


class TestDomains:
    def test_default_world_domains(self):
        assert {d.name for d in DEFAULT_DOMAINS} == {
            "baseball", "basketball", "soccer", "film", "music",
            "business", "politics",
        }

    def test_role_lookup(self):
        baseball = DEFAULT_DOMAINS[0]
        assert baseball.role("player").type_name == "BaseballPlayer"
        with pytest.raises(KeyError):
            baseball.role("ghost")

    def test_all_topics_and_ids(self):
        topics = all_topics()
        assert len(topics) >= 10
        domain, topic = topics[0]
        assert topic_id(domain, topic) == f"{domain}/{topic.name}"

    def test_taxonomy_builds(self):
        taxonomy = build_taxonomy()
        assert taxonomy.ancestors("BaseballPlayer") == [
            "BaseballPlayer", "Athlete", "Person", "Agent", "Thing",
        ]
        assert "Album" in taxonomy


class TestWorldBuilder:
    @pytest.fixture(scope="class")
    def world(self):
        return WorldBuilder(scale=0.3, seed=0).build()

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            WorldBuilder(scale=0.0)

    def test_entities_typed_with_ancestors(self, world):
        players = world.entities_for_role("baseball", "player")
        assert players
        entity = world.graph.get(players[0])
        assert "BaseballPlayer" in entity.types
        assert "Athlete" in entity.types
        assert "Thing" in entity.types

    def test_global_roles_shared(self, world):
        baseball_cities = world.entities_for_role("baseball", "city")
        film_cities = world.entities_for_role("film", "city")
        assert baseball_cities == film_cities

    def test_relations_exist(self, world):
        players = world.entities_for_role("baseball", "player")
        teams = set(world.entities_for_role("baseball", "team"))
        linked = world.forward[("baseball", "player", "team")]
        assert set(linked) == set(players)
        for targets in linked.values():
            assert set(targets) <= teams

    def test_scale_changes_counts(self):
        small = WorldBuilder(scale=0.2, seed=1).build()
        large = WorldBuilder(scale=0.5, seed=1).build()
        assert len(large.graph) > len(small.graph)

    def test_sample_topic_row_is_connected(self, world):
        rng = np.random.default_rng(3)
        domain = world.domain("baseball")
        topic = domain.topics[0]  # roster: player, team, city
        for _ in range(20):
            player, team, _city = world.sample_topic_row(
                "baseball", topic, rng
            )
            assert team in world.forward[("baseball", "player", "team")][player]

    def test_sample_with_anchor(self, world):
        rng = np.random.default_rng(4)
        domain = world.domain("baseball")
        topic = domain.topics[0]
        anchor = world.entities_for_role("baseball", "player")[0]
        row = world.sample_topic_row("baseball", topic, rng, anchor=anchor)
        assert row[0] == anchor

    def test_determinism(self):
        a = WorldBuilder(scale=0.2, seed=9).build()
        b = WorldBuilder(scale=0.2, seed=9).build()
        assert list(a.graph.uris()) == list(b.graph.uris())
        assert a.graph.get(next(a.graph.uris())).label == \
            b.graph.get(next(b.graph.uris())).label

    def test_unknown_domain_raises(self, world):
        with pytest.raises(KeyError):
            world.domain("cooking")

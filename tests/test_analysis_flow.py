"""Fixtures and acceptance tests for the whole-program flow passes.

Mirrors the ``tests/test_analysis_rules.py`` convention: every flow
rule gets a triggering fixture, a passing fixture, and a
pragma-suppressed fixture.  On top of that, the shipped tree's
lock-acquisition graph is dumped through the CLI's JSON artifacts and
independently checked for acyclicity.
"""

import json
import textwrap
from pathlib import Path

from repro.analysis.cli import main
from repro.analysis.engine import LintEngine
from repro.analysis.rules import get_rules

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint(tmp_path, relpath, text, rules):
    """Lint one dedented fixture file; return the active findings."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    engine = LintEngine(get_rules(rules))
    return engine.run([path]).findings


def rule_ids(findings):
    return [finding.rule for finding in findings]


# ----------------------------------------------------------------------
# lock-order: deadlock cycles
# ----------------------------------------------------------------------
AB_BA_CYCLE = """\
    import threading


    class Ledger:
        def __init__(self):
            self._lock = threading.Lock()
            self.journal = Journal()

        def post(self):
            with self._lock:
                self.journal.append()

        def audit(self):
            with self._lock:{audit_pragma}
                pass


    class Journal:
        def __init__(self):
            self._lock = threading.Lock()

        def append(self):
            with self._lock:
                pass

        def replay(self, ledger: "Ledger"):
            {replay_body}
"""


def test_lock_order_flags_ab_ba_cycle(tmp_path):
    # post() takes Ledger then Journal; replay() takes Journal then
    # Ledger (via audit) — the classic AB/BA pair.
    findings = lint(
        tmp_path, "mod.py",
        AB_BA_CYCLE.format(
            audit_pragma="",
            replay_body="with self._lock:\n                ledger.audit()",
        ),
        rules=["lock-order"],
    )
    assert rule_ids(findings) == ["lock-order"]
    assert "lock-order cycle" in findings[0].message
    assert "Ledger._lock" in findings[0].message
    assert "Journal._lock" in findings[0].message
    assert findings[0].severity == "error"


def test_lock_order_consistent_order_is_clean(tmp_path):
    # replay() calls audit() without holding its own lock: the only
    # edge left is Ledger._lock -> Journal._lock, no cycle.
    findings = lint(
        tmp_path, "mod.py",
        AB_BA_CYCLE.format(audit_pragma="", replay_body="ledger.audit()"),
        rules=["lock-order"],
    )
    assert findings == []


def test_lock_order_pragma_suppresses(tmp_path):
    # The cycle finding anchors at the example-edge acquisition site
    # (Ledger.audit's ``with``); a pragma there silences it.
    findings = lint(
        tmp_path, "mod.py",
        AB_BA_CYCLE.format(
            audit_pragma="  # lint: disable=lock-order",
            replay_body="with self._lock:\n                ledger.audit()",
        ),
        rules=["lock-order"],
    )
    assert findings == []


SELF_DEADLOCK = """\
    import threading


    class Queue:
        def __init__(self):
            self._lock = threading.{constructor}()

        def push(self):
            with self._lock:
                self._flush()

        def _flush(self):
            with self._lock:
                pass
"""


def test_lock_order_self_deadlock_on_plain_lock(tmp_path):
    findings = lint(
        tmp_path, "mod.py",
        SELF_DEADLOCK.format(constructor="Lock"),
        rules=["lock-order"],
    )
    assert rule_ids(findings) == ["lock-order"]
    assert "self-deadlock" in findings[0].message


def test_lock_order_rlock_reacquire_is_clean(tmp_path):
    findings = lint(
        tmp_path, "mod.py",
        SELF_DEADLOCK.format(constructor="RLock"),
        rules=["lock-order"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# lock-order: flow-sensitive guarded-by (legacy id)
# ----------------------------------------------------------------------
GUARDED_HELPER = """\
    import threading


    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []  # guarded-by: _lock

        def add(self, item):
            with self._lock:
                self._rebuild(item)
    {extra}
        def _rebuild(self, item):
            self._items.append(item)
"""


def test_flow_guard_proves_helper_called_under_lock(tmp_path):
    # Every call site holds the lock, so the private helper needs no
    # def-line pragma — this is the case that retired the pragmas on
    # Thetis._build_prefilter and SnapshotManager._clone_current.
    findings = lint(
        tmp_path, "mod.py",
        GUARDED_HELPER.format(extra=""),
        rules=["lock-order"],
    )
    assert findings == []


def test_flow_guard_flags_helper_with_unlocked_call_site(tmp_path):
    findings = lint(
        tmp_path, "mod.py",
        GUARDED_HELPER.format(extra="""
        def refresh(self, item):
            self._rebuild(item)
    """),
        rules=["lock-order"],
    )
    assert rule_ids(findings) == ["guarded-attr-outside-lock"]
    assert "_items" in findings[0].message


def test_flow_guard_flags_helper_referenced_as_value(tmp_path):
    # Handing the helper out as a callback voids the must-held proof:
    # the callback can run with any lock context.
    findings = lint(
        tmp_path, "mod.py",
        GUARDED_HELPER.format(extra="""
        def as_callback(self):
            return self._rebuild
    """),
        rules=["lock-order"],
    )
    assert rule_ids(findings) == ["guarded-attr-outside-lock"]


# ----------------------------------------------------------------------
# wire-taint
# ----------------------------------------------------------------------
TAINT_DIRECT = """\
    from repro.cluster.protocol import read_frame


    class Searcher:
        def search(self, query, k=10):
            return []


    async def handle(reader, searcher: Searcher):
        message = await read_frame(reader)
        return searcher.search(message.get("query")){pragma}
"""


def test_wire_taint_flags_frame_reaching_search(tmp_path):
    findings = lint(
        tmp_path, "mod.py",
        TAINT_DIRECT.format(pragma=""),
        rules=["wire-taint"],
    )
    assert rule_ids(findings) == ["wire-taint"]
    assert "sink 'search'" in findings[0].message
    assert findings[0].severity == "error"


def test_wire_taint_pragma_suppresses(tmp_path):
    findings = lint(
        tmp_path, "mod.py",
        TAINT_DIRECT.format(pragma="  # lint: disable=wire-taint"),
        rules=["wire-taint"],
    )
    assert findings == []


def test_wire_taint_local_sanitizer_cleans(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        from repro.cluster.protocol import read_frame


        def decode(payload):  # taint: sanitizer
            return dict(payload)


        class Searcher:
            def search(self, query):
                return []


        async def handle(reader, searcher: Searcher):
            message = await read_frame(reader)
            request = decode(message)
            return searcher.search(request)
        """,
        rules=["wire-taint"],
    )
    assert findings == []


def test_wire_taint_crosses_function_boundaries(tmp_path):
    # The sink sits in a helper; taint must flow through its parameter.
    findings = lint(
        tmp_path, "mod.py", """\
        from repro.cluster.protocol import read_frame


        def dispatch(searcher, message):
            return searcher.search(message.get("query"))


        async def handle(reader, searcher):
            message = await read_frame(reader)
            return dispatch(searcher, message)
        """,
        rules=["wire-taint"],
    )
    assert "sink 'search'" in findings[0].message


def test_wire_taint_flags_tainted_filesystem_path(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        from repro.cluster.protocol import read_frame


        async def adopt(reader):
            message = await read_frame(reader)
            segment = message.get("path")
            with open(segment, "rb") as handle:
                return handle.read()
        """,
        rules=["wire-taint"],
    )
    assert rule_ids(findings) == ["wire-taint"]
    assert "sink 'open'" in findings[0].message


def test_wire_taint_protocol_validator_cleans_path(tmp_path):
    findings = lint(
        tmp_path, "mod.py", """\
        from repro.cluster.protocol import expect_segment_path, read_frame


        async def adopt(reader):
            message = await read_frame(reader)
            segment = expect_segment_path(message)
            with open(segment, "rb") as handle:
                return handle.read()
        """,
        rules=["wire-taint"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# dtype-flow (kernel scope)
# ----------------------------------------------------------------------
def test_dtype_flow_flags_unpinned_meeting_pinned_float32(tmp_path):
    findings = lint(
        tmp_path, "kernel/mod.py", """\
        import numpy as np


        def mix():
            acc = np.zeros(8)
            scores = np.zeros(8, dtype=np.float32)
            return acc * scores
        """,
        rules=["dtype-flow"],
    )
    assert rule_ids(findings) == ["dtype-flow"]
    assert "pin the allocation's dtype" in findings[0].message
    assert findings[0].severity == "warning"


def test_dtype_flow_flags_mix_through_helper_return(tmp_path):
    findings = lint(
        tmp_path, "kernel/mod.py", """\
        import numpy as np


        def _weights():
            return np.zeros(4, dtype=np.float32)


        def score():
            weights = _weights()
            acc = np.zeros(4, dtype=np.float64)
            return weights * acc
        """,
        rules=["dtype-flow"],
    )
    assert rule_ids(findings) == ["dtype-flow"]
    assert "silently upcasts to float64" in findings[0].message


def test_dtype_flow_flags_int32_product(tmp_path):
    findings = lint(
        tmp_path, "kernel/mod.py", """\
        import numpy as np


        def offsets():
            rows = np.arange(6, dtype=np.int32)
            return rows * rows
        """,
        rules=["dtype-flow"],
    )
    assert rule_ids(findings) == ["dtype-flow"]
    assert "widen to int64" in findings[0].message


def test_dtype_flow_leaves_direct_mix_to_lexical_rule(tmp_path):
    # Both operands assigned straight from an allocator: the lexical
    # float-dtype-mix rule owns that site; dtype-flow stays silent so
    # the pair never double-reports.
    findings = lint(
        tmp_path, "kernel/mod.py", """\
        import numpy as np


        def mix():
            a = np.zeros(4, dtype=np.float32)
            b = np.zeros(4, dtype=np.float64)
            return a * b
        """,
        rules=["dtype-flow"],
    )
    assert findings == []


def test_dtype_flow_matching_dtypes_are_clean(tmp_path):
    findings = lint(
        tmp_path, "kernel/mod.py", """\
        import numpy as np


        def accumulate():
            acc = np.zeros(4, dtype=np.float32)
            delta = np.ones(4, dtype=np.float32)
            return acc * delta
        """,
        rules=["dtype-flow"],
    )
    assert findings == []


def test_dtype_flow_pragma_suppresses(tmp_path):
    findings = lint(
        tmp_path, "kernel/mod.py", """\
        import numpy as np


        def mix():
            acc = np.zeros(8)
            scores = np.zeros(8, dtype=np.float32)
            return acc * scores  # lint: disable=dtype-flow
        """,
        rules=["dtype-flow"],
    )
    assert findings == []


def test_dtype_flow_is_scoped_to_kernel_paths(tmp_path):
    findings = lint(
        tmp_path, "core/mod.py", """\
        import numpy as np


        def mix():
            acc = np.zeros(8)
            scores = np.zeros(8, dtype=np.float32)
            return acc * scores
        """,
        rules=["dtype-flow"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# Pass groups through the CLI
# ----------------------------------------------------------------------
def test_cli_passes_flow_skips_lexical_rules(tmp_path, capsys):
    path = tmp_path / "mod.py"
    path.write_text("import os\n", encoding="utf-8")
    # unused-import is a syntax-pass rule; the flow group must not run it.
    assert main([str(path), "--no-baseline", "--passes", "flow"]) == 0
    capsys.readouterr()


def test_cli_passes_syntax_skips_flow_rules(tmp_path, capsys):
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent("""\
        from repro.cluster.protocol import read_frame


        async def handle(reader, searcher):
            message = await read_frame(reader)
            return searcher.search(message.get("query"))
        """), encoding="utf-8")
    assert main([str(path), "--no-baseline", "--passes", "syntax"]) == 0
    assert main([str(path), "--no-baseline", "--passes", "flow"]) == 1
    capsys.readouterr()


# ----------------------------------------------------------------------
# Shipped tree: the lock graph is real, dumped, and acyclic
# ----------------------------------------------------------------------
def test_shipped_lock_graph_is_acyclic(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    code = main(["src/repro", "--no-baseline", "--rules", "lock-order",
                 "--format", "json"])
    document = json.loads(capsys.readouterr().out)
    assert code == 0, document["findings"]
    graph = document["artifacts"]["lock_order"]
    assert graph["cycles"] == []
    # The serve/cluster layers genuinely nest locks; an empty edge set
    # would mean the analysis stopped seeing them.
    assert graph["edges"]
    # Independent acyclicity check: Kahn's algorithm must consume every
    # node that participates in an edge.
    successors = {}
    indegree = {}
    for edge in graph["edges"]:
        successors.setdefault(edge["held"], set()).add(edge["acquires"])
        indegree.setdefault(edge["held"], 0)
        indegree[edge["acquires"]] = indegree.get(edge["acquires"], 0) + 1
    ready = [node for node, degree in indegree.items() if degree == 0]
    processed = 0
    while ready:
        node = ready.pop()
        processed += 1
        for succ in successors.get(node, ()):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    assert processed == len(indegree)

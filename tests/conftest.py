"""Shared fixtures: a small deterministic world reused across tests.

Expensive artifacts (benchmark corpora, trained embeddings) are built
once per session; tests must treat them as read-only.
"""

from __future__ import annotations

import pytest

from repro.benchgen import WT2015_PROFILE, build_benchmark
from repro.datalake import DataLake, Table
from repro.embeddings import train_rdf2vec
from repro.kg import Entity, KnowledgeGraph, TypeTaxonomy
from repro.linking import EntityMapping, LabelLinker


def make_sports_taxonomy() -> TypeTaxonomy:
    """A miniature DBpedia-like taxonomy used across unit tests."""
    taxonomy = TypeTaxonomy()
    taxonomy.add_type("Thing")
    taxonomy.add_type("Agent", "Thing")
    taxonomy.add_type("Person", "Agent")
    taxonomy.add_type("Athlete", "Person")
    taxonomy.add_type("BaseballPlayer", "Athlete")
    taxonomy.add_type("VolleyballPlayer", "Athlete")
    taxonomy.add_type("Organisation", "Agent")
    taxonomy.add_type("SportsTeam", "Organisation")
    taxonomy.add_type("BaseballTeam", "SportsTeam")
    taxonomy.add_type("Place", "Thing")
    taxonomy.add_type("City", "Place")
    return taxonomy


def make_sports_graph() -> KnowledgeGraph:
    """8 teams, 32 players, 4 cities, with playsFor/basedIn edges."""
    taxonomy = make_sports_taxonomy()
    graph = KnowledgeGraph(taxonomy)
    for i in range(4):
        graph.add_entity(
            Entity(f"kg:city{i}", f"City {i}",
                   frozenset(taxonomy.ancestors("City")))
        )
    for i in range(8):
        graph.add_entity(
            Entity(f"kg:team{i}", f"Team {i}",
                   frozenset(taxonomy.ancestors("BaseballTeam")))
        )
        graph.add_edge(f"kg:team{i}", "basedIn", f"kg:city{i % 4}")
    for i in range(32):
        graph.add_entity(
            Entity(f"kg:player{i}", f"Player {i}",
                   frozenset(taxonomy.ancestors("BaseballPlayer")))
        )
        graph.add_edge(f"kg:player{i}", "playsFor", f"kg:team{i % 8}")
    return graph


def make_sports_lake() -> DataLake:
    """12 roster tables over the sports graph's labels."""
    lake = DataLake()
    for t in range(12):
        rows = []
        for r in range(4):
            player = (t * 4 + r) % 32
            rows.append(
                [f"Player {player}", f"Team {player % 8}",
                 f"City {player % 4}", 2000 + r]
            )
        lake.add(
            Table(
                f"T{t:02d}",
                ["Player", "Team", "City", "Year"],
                rows,
                metadata={"caption": f"Roster {t}", "domain": "baseball",
                          "category": "baseball/roster"},
            )
        )
    return lake


@pytest.fixture(scope="session")
def sports_graph() -> KnowledgeGraph:
    return make_sports_graph()


@pytest.fixture(scope="session")
def sports_lake() -> DataLake:
    return make_sports_lake()


@pytest.fixture(scope="session")
def sports_mapping(sports_graph, sports_lake) -> EntityMapping:
    return LabelLinker(sports_graph).link_lake(sports_lake)


@pytest.fixture(scope="session")
def sports_embeddings(sports_graph):
    return train_rdf2vec(
        sports_graph, dimensions=16, epochs=2, walks_per_entity=6, seed=1
    )


@pytest.fixture(scope="session")
def small_benchmark():
    """A small WT2015-profile benchmark shared by integration tests."""
    return build_benchmark(
        WT2015_PROFILE, num_tables=200, num_query_pairs=6, seed=11
    )

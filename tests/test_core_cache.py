"""Tests for the bounded LRU caches and the persistent similarity memo."""

import pickle
import threading

import pytest

from repro.core import Query, ScoringProfile, TableSearchEngine
from repro.core.cache import (
    CacheStats,
    LRUCache,
    SimilarityCache,
    format_cache_stats,
)
from repro.datalake import DataLake, Table
from repro.exceptions import ConfigurationError
from repro.linking import EntityMapping
from repro.similarity import MappingTypeSimilarity, TypeJaccardSimilarity
from repro.similarity.base import EntitySimilarity


class CountingSimilarity(EntitySimilarity):
    """Test double recording every underlying evaluation."""

    def __init__(self, symmetric: bool):
        self.symmetric = symmetric
        self.calls = []

    def similarity(self, a: str, b: str) -> float:
        self.calls.append((a, b))
        if a == b:
            return 1.0
        # An asymmetric toy score so orientation is observable.
        return 0.25 if a < b else 0.75

    @property
    def is_symmetric(self) -> bool:
        return self.symmetric


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing", "fallback") == "fallback"
        assert "a" in cache and len(cache) == 1

    def test_bound_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")           # refresh "a": "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert len(cache) == 2

    def test_stats_counters(self):
        cache = LRUCache(1)
        cache.get("x")           # miss
        cache.put("x", 1)
        cache.get("x")           # hit
        cache.put("y", 2)        # evicts x
        stats = cache.stats()
        assert stats == CacheStats(hits=1, misses=1, evictions=1,
                                   size=1, maxsize=1)
        assert stats.hit_rate == pytest.approx(0.5)
        assert stats.lookups == 2

    def test_peek_does_not_count_or_refresh(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.peek("nope") is None
        assert cache.stats().hits == 0 and cache.stats().misses == 0

    def test_clear_keeps_counters_reset_stats_zeroes(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1
        cache.reset_stats()
        assert cache.stats().hits == 0

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ConfigurationError):
            LRUCache(0)

    def test_pickle_roundtrip_rebuilds_lock(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.get("a") == 1
        assert clone.stats().hits == 2  # carried counter + new hit
        clone.put("b", 2)               # the rebuilt lock works
        assert len(clone) == 2

    def test_concurrent_access_stays_consistent(self):
        cache = LRUCache(64)

        def worker(offset):
            for i in range(200):
                cache.put((offset, i % 32), i)
                cache.get((offset, (i + 1) % 32))

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 64
        stats = cache.stats()
        assert stats.hits + stats.misses == 4 * 200


class TestSimilarityCache:
    def test_symmetric_pair_evaluated_once(self):
        """Regression: (a, b) and (b, a) must share one evaluation."""
        sigma = CountingSimilarity(symmetric=True)
        cache = SimilarityCache(sigma, maxsize=16)
        first = cache.similarity("kg:a", "kg:b")
        second = cache.similarity("kg:b", "kg:a")
        assert len(sigma.calls) == 1
        assert first == second
        assert len(cache) == 1

    def test_asymmetric_pair_keeps_both_orientations(self):
        sigma = CountingSimilarity(symmetric=False)
        cache = SimilarityCache(sigma, maxsize=16)
        ab = cache.similarity("kg:a", "kg:b")
        ba = cache.similarity("kg:b", "kg:a")
        assert len(sigma.calls) == 2
        assert ab != ba
        assert len(cache) == 2

    def test_key_canonicalization(self):
        symmetric = SimilarityCache(CountingSimilarity(True), maxsize=4)
        assert symmetric.key_of("b", "a") == ("a", "b")
        assert symmetric.key_of("a", "b") == ("a", "b")
        ordered = SimilarityCache(CountingSimilarity(False), maxsize=4)
        assert ordered.key_of("b", "a") == ("b", "a")

    def test_profile_counts_calls_and_misses(self):
        cache = SimilarityCache(CountingSimilarity(True), maxsize=16)
        profile = ScoringProfile()
        cache.similarity("kg:a", "kg:b", profile)
        cache.similarity("kg:a", "kg:b", profile)
        cache.similarity("kg:b", "kg:a", profile)
        assert profile.similarity_calls == 3
        assert profile.similarity_misses == 1
        assert profile.similarity_hit_rate == pytest.approx(2 / 3)

    def test_builtin_similarities_declare_symmetry(self, sports_graph):
        assert TypeJaccardSimilarity(sports_graph).is_symmetric
        assert MappingTypeSimilarity({}).is_symmetric

    def test_format_cache_stats_lists_every_cache(self):
        cache = SimilarityCache(CountingSimilarity(True), maxsize=4)
        report = format_cache_stats({"similarity": cache.stats()})
        assert "similarity" in report and "hit rate" in report


@pytest.fixture()
def engine(sports_lake, sports_mapping, sports_graph):
    return TableSearchEngine(
        sports_lake, sports_mapping, TypeJaccardSimilarity(sports_graph)
    )


class TestEngineCaching:
    def test_cache_persists_across_search_calls(self, engine):
        """A repeated query must not re-evaluate any similarity."""
        query = Query.single("kg:player0", "kg:team0")
        engine.profile.reset()
        engine.search(query)
        cold_misses = engine.profile.similarity_misses
        assert cold_misses > 0
        engine.search(query)
        assert engine.profile.similarity_misses == cold_misses
        assert engine.profile.similarity_calls > cold_misses

    def test_cache_shared_by_search_many_and_topk(self, engine):
        from repro.core import topk_search

        query = Query.single("kg:player1", "kg:team1")
        engine.search(query)
        misses = engine.profile.similarity_misses
        engine.search_many({"q": query})
        topk_search(engine, query, 3)
        assert engine.profile.similarity_misses == misses

    def test_cache_stats_exposes_all_caches(self, engine):
        engine.search(Query.single("kg:player0"))
        stats = engine.cache_stats()
        assert set(stats) == {"similarity", "grids", "column_counts"}
        assert stats["similarity"].size > 0
        assert stats["grids"].size == len(engine.lake)

    def test_view_caches_are_bounded(self, sports_lake, sports_mapping,
                                     sports_graph):
        small = TableSearchEngine(
            sports_lake, sports_mapping,
            TypeJaccardSimilarity(sports_graph),
            view_cache_size=3,
        )
        unbounded = TableSearchEngine(
            sports_lake, sports_mapping, TypeJaccardSimilarity(sports_graph)
        )
        query = Query.single("kg:player0", "kg:team0")
        assert small.search(query).table_ids() == \
            unbounded.search(query).table_ids()
        stats = small.cache_stats()
        assert stats["grids"].size <= 3
        assert stats["column_counts"].size <= 3
        assert stats["grids"].evictions > 0

    def test_bounded_similarity_cache_keeps_results_exact(
        self, sports_lake, sports_mapping, sports_graph
    ):
        tiny = TableSearchEngine(
            sports_lake, sports_mapping,
            TypeJaccardSimilarity(sports_graph), cache_size=8,
        )
        reference = TableSearchEngine(
            sports_lake, sports_mapping, TypeJaccardSimilarity(sports_graph)
        )
        query = Query.single("kg:player0", "kg:team0", "kg:city0")
        assert tiny.search(query).table_ids() == \
            reference.search(query).table_ids()
        assert tiny.cache_stats()["similarity"].size <= 8

    def test_replaced_table_never_serves_stale_grid(self):
        """Dynamic lakes: invalidate_table must drop the old view."""
        lake = DataLake([Table("t", ["A"], [["Ada"]])])
        mapping = EntityMapping()
        mapping.link("t", 0, 0, "kg:a")
        sigma = MappingTypeSimilarity({
            "kg:a": frozenset({"Person"}),
            "kg:b": frozenset({"Place"}),
        })
        engine = TableSearchEngine(lake, mapping, sigma)
        query = Query.single("kg:a")
        assert engine.search(query).table_ids() == ["t"]
        # Replace the table: same id, different content and links.
        lake.remove("t")
        lake.add(Table("t", ["A"], [["Berlin"]]))
        mapping.unlink_table("t")
        mapping.link("t", 0, 0, "kg:b")
        engine.invalidate_table("t")
        result = engine.search(Query.single("kg:b"))
        assert result.table_ids() == ["t"]
        assert result.score_of("t") == pytest.approx(1.0)
        # The old entity no longer matches anything in the lake.
        assert len(engine.search(query)) == 0

    def test_invalidate_cache_can_include_similarities(self, engine):
        engine.search(Query.single("kg:player0"))
        assert engine.cache_stats()["similarity"].size > 0
        engine.invalidate_cache()
        assert engine.cache_stats()["similarity"].size > 0
        engine.invalidate_cache(include_similarities=True)
        assert engine.cache_stats()["similarity"].size == 0

    def test_profile_merge(self):
        base = ScoringProfile(mapping_seconds=1.0, total_seconds=2.0,
                              tables_scored=3, similarity_calls=10,
                              similarity_misses=4)
        base.merge(ScoringProfile(mapping_seconds=0.5, total_seconds=1.0,
                                  tables_scored=2, similarity_calls=5,
                                  similarity_misses=1))
        assert base.tables_scored == 5
        assert base.similarity_calls == 15
        assert base.similarity_misses == 5
        assert base.total_seconds == pytest.approx(3.0)

"""Tests for the Hungarian assignment solver, verified against scipy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.core import assignment_score, max_assignment
from repro.exceptions import SearchError


class TestMaxAssignment:
    def test_simple_square(self):
        scores = [[1.0, 0.0], [0.0, 1.0]]
        assignment, total = max_assignment(scores)
        assert assignment == [0, 1]
        assert total == 2.0

    def test_prefers_global_optimum_over_greedy(self):
        # Greedy would take (0,0)=9 then (1,1)=1 for 10; optimal is 8+7=15.
        scores = [[9.0, 7.0], [8.0, 1.0]]
        assignment, total = max_assignment(scores)
        assert total == 15.0
        assert assignment == [1, 0]

    def test_rectangular_wide(self):
        scores = [[0.1, 0.9, 0.5]]
        assignment, total = max_assignment(scores)
        assert assignment == [1]
        assert total == pytest.approx(0.9)

    def test_rectangular_tall_pads_with_dummy(self):
        # 3 query entities, 1 column: two entities get no real column.
        scores = [[0.2], [0.9], [0.5]]
        assignment, total = max_assignment(scores)
        assert total == pytest.approx(0.9)
        assert assignment.count(-1) == 2
        assert assignment[1] == 0

    def test_distinct_columns_enforced(self):
        scores = [[1.0, 0.4], [1.0, 0.4]]
        assignment, _ = max_assignment(scores)
        assert len(set(assignment)) == 2

    def test_empty_matrix(self):
        assignment, total = max_assignment(np.zeros((0, 5)))
        assert assignment == []
        assert total == 0.0

    def test_zero_columns(self):
        assignment, total = max_assignment(np.zeros((2, 0)))
        assert assignment == [-1, -1]
        assert total == 0.0

    def test_non_2d_rejected(self):
        with pytest.raises(SearchError):
            max_assignment(np.zeros(3))

    def test_assignment_score_helper(self):
        assert assignment_score([[2.0, 1.0], [1.0, 3.0]]) == 5.0


@settings(max_examples=200, deadline=None)
@given(
    st.integers(1, 6),
    st.integers(1, 6),
    st.integers(0, 10_000),
)
def test_matches_scipy_on_random_matrices(rows, cols, seed):
    """Optimal totals must agree with scipy's reference solver."""
    rng = np.random.default_rng(seed)
    scores = rng.uniform(0.0, 1.0, size=(rows, cols))
    _, ours = max_assignment(scores)
    row_idx, col_idx = linear_sum_assignment(scores, maximize=True)
    theirs = float(scores[row_idx, col_idx].sum())
    assert ours == pytest.approx(theirs, abs=1e-9)


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 5), st.integers(1, 5), st.integers(0, 10_000))
def test_assignment_is_injective_and_consistent(rows, cols, seed):
    rng = np.random.default_rng(seed)
    scores = rng.uniform(0.0, 1.0, size=(rows, cols))
    assignment, total = max_assignment(scores)
    real = [c for c in assignment if c >= 0]
    assert len(real) == len(set(real))  # injective
    assert all(0 <= c < cols for c in real)
    recomputed = sum(scores[i][c] for i, c in enumerate(assignment) if c >= 0)
    assert total == pytest.approx(recomputed)

"""Tests for the entity-tuple query model."""

import pytest

from repro.core import Query
from repro.exceptions import EmptyQueryError


class TestConstruction:
    def test_basic(self):
        query = Query([("a", "b"), ("c",)])
        assert len(query) == 2
        assert query.max_width() == 2
        assert query.entities() == {"a", "b", "c"}

    def test_single_helper(self):
        query = Query.single("a", "b", "c")
        assert query.tuples == (("a", "b", "c"),)

    def test_empty_rejected(self):
        with pytest.raises(EmptyQueryError):
            Query([])
        with pytest.raises(EmptyQueryError):
            Query([[], []])

    def test_empty_strings_dropped(self):
        query = Query([("a", "", "b")])
        assert query.tuples == (("a", "b"),)

    def test_equality_and_hash(self):
        assert Query([("a",)]) == Query([("a",)])
        assert Query([("a",)]) != Query([("b",)])
        assert hash(Query([("a",)])) == hash(Query([("a",)]))

    def test_repr(self):
        assert "2 tuples" in repr(Query([("a", "b"), ("c", "d")]))


class TestFromGraph:
    def test_unknown_entities_dropped(self, sports_graph):
        query = Query.from_graph(
            [("kg:player0", "kg:nonexistent", "kg:team0")], sports_graph
        )
        assert query.tuples == (("kg:player0", "kg:team0"),)

    def test_fully_unknown_raises(self, sports_graph):
        with pytest.raises(EmptyQueryError):
            Query.from_graph([("kg:ghost1", "kg:ghost2")], sports_graph)


class TestTransforms:
    def test_flattened_dedupes_preserving_order(self):
        query = Query([("a", "b"), ("b", "c"), ("a", "d")])
        flat = query.flattened()
        assert flat.tuples == (("a", "b", "c", "d"),)

    def test_restrict_to(self):
        query = Query([("a", "b"), ("c",)])
        restricted = query.restrict_to({"a", "c"})
        assert restricted.tuples == (("a",), ("c",))

    def test_restrict_to_nothing_returns_none(self):
        assert Query([("a",)]).restrict_to({"z"}) is None

    def test_iteration(self):
        query = Query([("a",), ("b",)])
        assert list(query) == [("a",), ("b",)]

"""Tests for the Thetis lifecycle and concurrent-reader guarantees.

Two contracts the serving layer builds on:

* ``close()`` is idempotent and terminal — a second close is a no-op,
  and every operation on a closed instance raises a clear
  :class:`~repro.exceptions.ThetisClosedError` naming the operation;
* ``search`` / ``search_topk`` / ``search_many`` are safe for
  concurrent reader threads over an unchanging lake, and concurrent
  results are identical to sequential ones.
"""

import threading

import pytest

from repro import Query, Thetis
from repro.datalake import Table
from repro.exceptions import ThetisClosedError


@pytest.fixture()
def thetis(sports_lake, sports_graph, sports_mapping):
    return Thetis(sports_lake, sports_graph, sports_mapping)


QUERIES = [
    Query.single("kg:player0", "kg:team0", "kg:city0"),
    Query.single("kg:player5", "kg:team5"),
    Query((("kg:player9",), ("kg:team1", "kg:city1"))),
    Query.single("kg:city2", "kg:city3"),
]


class TestCloseLifecycle:
    def test_close_is_idempotent(self, thetis):
        thetis.search(QUERIES[0], k=3)  # create an engine worth closing
        assert not thetis.closed
        thetis.close()
        assert thetis.closed
        thetis.close()  # second close must be a harmless no-op
        assert thetis.closed

    def test_operations_after_close_raise_thetis_closed(self, thetis):
        thetis.close()
        operations = [
            lambda: thetis.search(QUERIES[0]),
            lambda: thetis.search_topk(QUERIES[0]),
            lambda: thetis.search_many({"q": QUERIES[0]}),
            lambda: thetis.explain(QUERIES[0], "T00"),
            lambda: thetis.engine("types"),
            lambda: thetis.parallel_engine("types"),
            lambda: thetis.warm(),
            lambda: thetis.train_embeddings(dimensions=4, epochs=1,
                                            walks_per_entity=1),
            lambda: thetis.add_table(
                Table("TX", ["A"], [["x"]]), link=False
            ),
            lambda: thetis.remove_table("T00"),
        ]
        for operation in operations:
            with pytest.raises(ThetisClosedError):
                operation()

    def test_closed_error_names_the_operation(self, thetis):
        thetis.close()
        with pytest.raises(ThetisClosedError, match="search"):
            thetis.search(QUERIES[0])
        with pytest.raises(ThetisClosedError, match="add_table"):
            thetis.add_table(Table("TX", ["A"], [["x"]]), link=False)

    def test_close_before_any_engine_built(self, sports_lake,
                                           sports_graph, sports_mapping):
        # Closing an instance that never lazily built an engine must
        # not trip over missing worker pools.
        instance = Thetis(sports_lake, sports_graph, sports_mapping)
        instance.close()
        assert instance.closed

    def test_snapshot_inputs_copies_are_independent(self, thetis,
                                                    sports_lake):
        lake, mapping = thetis.snapshot_inputs()
        clone = Thetis(lake, thetis.graph, mapping)
        clone.add_table(
            Table("TX", ["Player"], [["Player 0"]]), link=True
        )
        assert "TX" in clone.lake
        assert "TX" not in sports_lake
        clone.close()
        # The original is unaffected by the clone's lifecycle.
        assert not thetis.closed
        assert thetis.search(QUERIES[0], k=1)


class TestConcurrentReaders:
    def _sequential_expectation(self, thetis):
        return {
            index: [
                (scored.table_id, scored.score)
                for scored in thetis.search(query, k=5)
            ]
            for index, query in enumerate(QUERIES)
        }

    def test_threaded_search_matches_sequential(self, thetis):
        """N reader threads over one Thetis: every result identical to
        the single-threaded baseline (the documented guarantee the
        server's batch workers rely on)."""
        expected = self._sequential_expectation(thetis)
        errors = []

        def reader(worker: int):
            try:
                for repeat in range(5):
                    index = (worker + repeat) % len(QUERIES)
                    results = thetis.search(QUERIES[index], k=5)
                    got = [(s.table_id, s.score) for s in results]
                    assert got == expected[index]
                    topk = thetis.search_topk(QUERIES[index], k=5)
                    got_topk = [(s.table_id, s.score) for s in topk]
                    assert got_topk == expected[index]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(worker,))
            for worker in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors

    def test_search_many_matches_individual_searches(self, thetis):
        batch = {f"q{i}": query for i, query in enumerate(QUERIES)}
        many = thetis.search_many(batch, k=5)
        assert set(many) == set(batch)
        for key, query in batch.items():
            direct = thetis.search(query, k=5)
            assert [(s.table_id, s.score) for s in many[key]] == [
                (s.table_id, s.score) for s in direct
            ]

    def test_warm_is_a_pure_accelerator(self, sports_lake, sports_graph,
                                        sports_mapping):
        cold = Thetis(sports_lake, sports_graph, sports_mapping)
        warm = Thetis(sports_lake, sports_graph, sports_mapping)
        warmed = warm.warm("types")
        assert warmed == len(sports_lake)
        for query in QUERIES:
            a = [(s.table_id, s.score) for s in cold.search(query, k=5)]
            b = [(s.table_id, s.score) for s in warm.search(query, k=5)]
            assert a == b

    def test_concurrent_lazy_engine_creation_is_single(self, sports_lake,
                                                       sports_graph,
                                                       sports_mapping):
        """Racing threads through the lazy engine() path must all end
        up with the same engine instance (double-checked locking)."""
        instance = Thetis(sports_lake, sports_graph, sports_mapping)
        seen = []
        barrier = threading.Barrier(8)

        def builder():
            barrier.wait()
            seen.append(instance.engine("types"))

        threads = [threading.Thread(target=builder) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(seen) == 8
        assert all(engine is seen[0] for engine in seen)

"""Tests for knowledge-graph analytics."""

import pytest

from repro.kg import Entity, KnowledgeGraph
from repro.kg.analytics import (
    connected_components,
    degree_histogram,
    profile_graph,
    top_types,
    type_frequencies,
)


@pytest.fixture()
def two_component_graph():
    g = KnowledgeGraph()
    for uri in ("a", "b", "c", "d", "e", "lonely"):
        g.add_entity(Entity(uri, uri, frozenset({"T1"})))
    g.add_entity(Entity("typed", "typed", frozenset({"T1", "T2"})))
    g.add_edge("a", "p", "b")
    g.add_edge("b", "p", "c")
    g.add_edge("d", "q", "e")
    return g


class TestComponents:
    def test_component_count_and_sizes(self, two_component_graph):
        components = connected_components(two_component_graph)
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 1, 2, 3]
        assert len(components[0]) == 3  # largest first

    def test_empty_graph(self):
        assert connected_components(KnowledgeGraph()) == []


class TestHistograms:
    def test_degree_histogram(self, two_component_graph):
        histogram = degree_histogram(two_component_graph)
        assert histogram[0] == 2   # lonely + typed
        assert histogram[2] == 1   # b
        assert histogram[1] == 4   # a, c, d, e

    def test_type_frequencies(self, two_component_graph):
        frequencies = type_frequencies(two_component_graph)
        assert frequencies["T1"] == 7
        assert frequencies["T2"] == 1

    def test_top_types(self, two_component_graph):
        assert top_types(two_component_graph, k=1) == [("T1", 7)]
        assert top_types(two_component_graph)[1] == ("T2", 1)


class TestProfile:
    def test_profile_fields(self, two_component_graph):
        profile = profile_graph(two_component_graph)
        assert profile.nodes == 7
        assert profile.edges == 3
        assert profile.distinct_types == 2
        assert profile.distinct_predicates == 2
        assert profile.isolated_nodes == 2
        assert profile.connected_components == 4
        assert profile.largest_component == 3
        assert profile.max_degree == 2
        assert profile.mean_degree == pytest.approx(6 / 7)

    def test_profile_empty_graph(self):
        profile = profile_graph(KnowledgeGraph())
        assert profile.nodes == 0
        assert profile.mean_degree == 0.0
        assert profile.largest_component == 0

    def test_format_report(self, two_component_graph):
        report = profile_graph(two_component_graph).format_report()
        assert "nodes:" in report
        assert "connected components: 4" in report

    def test_world_graph_is_connected_enough(self, small_benchmark):
        """Generated worlds must be walkable: one dominant component."""
        profile = profile_graph(small_benchmark.graph)
        assert profile.largest_component > 0.95 * profile.nodes
        assert profile.isolated_nodes == 0

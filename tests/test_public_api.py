"""Public-API consistency guards.

Every name in each package's ``__all__`` must resolve, and the core
everyday names must be importable from the top-level package — broken
re-exports are the kind of regression only a dedicated test catches.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.kg",
    "repro.datalake",
    "repro.linking",
    "repro.embeddings",
    "repro.similarity",
    "repro.core",
    "repro.lsh",
    "repro.baselines",
    "repro.eval",
    "repro.benchgen",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), package_name
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_has_no_duplicates(package_name):
    package = importlib.import_module(package_name)
    assert len(package.__all__) == len(set(package.__all__)), package_name


def test_top_level_everyday_names():
    import repro

    for name in ("Thetis", "Query", "Table", "DataLake",
                 "KnowledgeGraph", "Entity", "EntityMapping",
                 "ResultSet", "TableSearchEngine"):
        assert name in repro.__all__
        assert hasattr(repro, name)


def test_version_is_pep440ish():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) >= 2
    assert all(part.isdigit() for part in parts)


def test_cli_entry_point_configured():
    import configparser
    from pathlib import Path

    pyproject = Path(__file__).resolve().parent.parent / "pyproject.toml"
    text = pyproject.read_text()
    assert 'thetis = "repro.cli:main"' in text


def test_exceptions_all_derive_from_base():
    import inspect

    from repro import exceptions

    for name, obj in inspect.getmembers(exceptions, inspect.isclass):
        if issubclass(obj, Exception) and obj is not exceptions.ReproError:
            assert issubclass(obj, exceptions.ReproError), name

"""Tests for the TURL-like, union-search, and join-search baselines."""

import pytest

from repro.baselines import JoinTableSearch, TurlLikeTableSearch, UnionTableSearch
from repro.core import Query
from repro.datalake import DataLake, Table
from repro.exceptions import ConfigurationError
from repro.linking import EntityMapping


class TestTurlLike:
    def test_tables_without_links_unrepresented(self, sports_lake,
                                                sports_mapping,
                                                sports_embeddings):
        lake = DataLake(list(sports_lake))
        lake.add(Table("unlinked", ["A"], [["no entities"]]))
        searcher = TurlLikeTableSearch(lake, sports_mapping,
                                       sports_embeddings)
        assert searcher.num_represented_tables == len(sports_lake)

    def test_ranking_by_cosine(self, sports_lake, sports_mapping,
                               sports_embeddings):
        searcher = TurlLikeTableSearch(sports_lake, sports_mapping,
                                       sports_embeddings)
        results = searcher.search(Query.single("kg:player0", "kg:team0"))
        assert len(results) > 0
        scores = [st.score for st in results]
        assert scores == sorted(scores, reverse=True)
        assert all(-1.0 - 1e-9 <= s <= 1.0 + 1e-9 for s in scores)

    def test_unknown_query_entities_empty(self, sports_lake, sports_mapping,
                                          sports_embeddings):
        searcher = TurlLikeTableSearch(sports_lake, sports_mapping,
                                       sports_embeddings)
        assert len(searcher.search(Query.single("kg:ghost"))) == 0

    def test_k_truncation(self, sports_lake, sports_mapping,
                          sports_embeddings):
        searcher = TurlLikeTableSearch(sports_lake, sports_mapping,
                                       sports_embeddings)
        assert len(searcher.search(Query.single("kg:player0"), k=2)) == 2


class TestUnionSearch:
    def test_encoder_validation(self, sports_lake, sports_mapping,
                                sports_graph):
        with pytest.raises(ConfigurationError):
            UnionTableSearch(sports_lake, sports_mapping,
                             column_encoder="bogus")
        with pytest.raises(ConfigurationError):
            UnionTableSearch(sports_lake, sports_mapping,
                             column_encoder="types")  # graph missing
        with pytest.raises(ConfigurationError):
            UnionTableSearch(sports_lake, sports_mapping,
                             column_encoder="embeddings")  # store missing

    def test_types_encoder_ranks_same_schema_tables(self, sports_lake,
                                                    sports_mapping,
                                                    sports_graph):
        searcher = UnionTableSearch(sports_lake, sports_mapping,
                                    graph=sports_graph,
                                    column_encoder="types")
        query = Query.single("kg:player0", "kg:team0", "kg:city0")
        results = searcher.search(query, k=5)
        assert len(results) == 5
        # All fixture tables share the roster schema, so scores are high
        # and nearly uniform - exactly why union search cannot rank by
        # topical relevance.
        scores = [st.score for st in results]
        assert max(scores) - min(scores) < 0.2

    def test_embeddings_encoder(self, sports_lake, sports_mapping,
                                sports_embeddings):
        searcher = UnionTableSearch(sports_lake, sports_mapping,
                                    store=sports_embeddings,
                                    column_encoder="embeddings")
        results = searcher.search(Query.single("kg:player0", "kg:team0"))
        assert len(results) > 0

    def test_unionability_normalized_by_width(self, sports_mapping,
                                              sports_graph, sports_lake):
        searcher = UnionTableSearch(sports_lake, sports_mapping,
                                    graph=sports_graph,
                                    column_encoder="types")
        query = Query.single("kg:player0")
        for table in sports_lake:
            assert 0.0 <= searcher.unionability(query, table.table_id) <= 1.0


class TestJoinSearch:
    def test_exact_value_overlap_found(self, sports_lake, sports_graph):
        searcher = JoinTableSearch(sports_lake)
        query = Query.single("kg:player0", "kg:team0")
        results = searcher.search(query, sports_graph)
        # Tables containing the labels "Player 0"/"Team 0" are joinable.
        assert "T00" in results.table_ids()
        assert results.score_of("T00") == 1.0

    def test_no_overlap_returns_nothing(self, sports_lake, sports_graph):
        searcher = JoinTableSearch(sports_lake)
        results = searcher.search(Query.single("kg:ghost"), sports_graph)
        assert len(results) == 0

    def test_joinability_is_containment(self, sports_lake):
        searcher = JoinTableSearch(sports_lake)
        assert searcher.joinability(
            frozenset({"a", "b"}), frozenset({"a", "b", "c"})
        ) == 1.0
        assert searcher.joinability(
            frozenset({"a", "b"}), frozenset({"a"})
        ) == 0.5
        assert searcher.joinability(frozenset(), frozenset({"a"})) == 0.0

    def test_query_value_sets(self, sports_lake, sports_graph):
        searcher = JoinTableSearch(sports_lake)
        query = Query([("kg:player0", "kg:team0"),
                       ("kg:player1", "kg:team1")])
        value_sets = searcher.query_value_sets(query, sports_graph)
        assert value_sets[0] == {"player 0", "player 1"}
        assert value_sets[1] == {"team 0", "team 1"}

    def test_k_truncation(self, sports_lake, sports_graph):
        searcher = JoinTableSearch(sports_lake)
        results = searcher.search(Query.single("kg:player0"), sports_graph,
                                  k=2)
        assert len(results) <= 2


class TestSantosRelationships:
    @pytest.fixture()
    def searcher(self, sports_lake, sports_mapping, sports_graph):
        return UnionTableSearch(sports_lake, sports_mapping,
                                graph=sports_graph, column_encoder="types")

    def test_column_pair_relationships_directional(self, searcher):
        rels = searcher._column_pair_relationships(
            ["kg:player0"], ["kg:team0"]
        )
        assert "playsFor" in rels
        inverse = searcher._column_pair_relationships(
            ["kg:team0"], ["kg:player0"]
        )
        assert "^playsFor" in inverse

    def test_unconnected_columns_empty(self, searcher):
        assert searcher._column_pair_relationships(
            ["kg:player0"], ["kg:player1"]
        ) == frozenset()

    def test_relationship_unionability_full_match(self, searcher):
        # Query (player, team) with a playsFor pair; every fixture
        # roster table carries player->team playsFor relationships.
        query = Query([("kg:player0", "kg:team0")])
        score = searcher.relationship_unionability(query, "T00")
        assert score == 1.0

    def test_relationship_unionability_no_graph(self, sports_lake,
                                                sports_mapping,
                                                sports_embeddings):
        searcher = UnionTableSearch(
            sports_lake, sports_mapping, store=sports_embeddings,
            column_encoder="embeddings",
        )
        query = Query([("kg:player0", "kg:team0")])
        assert searcher.relationship_unionability(query, "T00") == 0.0

    def test_relationship_unionability_no_relations_in_query(self,
                                                             searcher):
        # Two players share no KG edge: no relationships to match.
        query = Query([("kg:player0", "kg:player1")])
        assert searcher.relationship_unionability(query, "T00") == 0.0

"""Round-trip tests for knowledge-graph serialization."""

from repro.kg import (
    Entity,
    KnowledgeGraph,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)

from tests.conftest import make_sports_graph


class TestGraphRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        graph = make_sports_graph()
        clone = graph_from_dict(graph_to_dict(graph))
        assert len(clone) == len(graph)
        assert clone.num_edges == graph.num_edges
        assert set(clone.edges()) == set(graph.edges())
        for entity in graph.entities():
            restored = clone.get(entity.uri)
            assert restored.label == entity.label
            assert restored.types == entity.types
            assert restored.aliases == entity.aliases

    def test_taxonomy_round_trip(self):
        graph = make_sports_graph()
        clone = graph_from_dict(graph_to_dict(graph))
        assert clone.taxonomy.ancestors("BaseballPlayer") == \
            graph.taxonomy.ancestors("BaseballPlayer")
        assert set(clone.taxonomy.roots()) == set(graph.taxonomy.roots())

    def test_file_round_trip(self, tmp_path):
        graph = make_sports_graph()
        path = tmp_path / "graph.json"
        save_graph(graph, path)
        clone = load_graph(path)
        assert len(clone) == len(graph)
        assert clone.stats() == graph.stats()

    def test_aliases_preserved(self, tmp_path):
        graph = KnowledgeGraph()
        graph.add_entity(
            Entity("kg:x", "X Entity", frozenset({"T"}), aliases=("XE", "Xe"))
        )
        path = tmp_path / "g.json"
        save_graph(graph, path)
        assert load_graph(path).get("kg:x").aliases == ("XE", "Xe")

    def test_empty_graph(self, tmp_path):
        graph = KnowledgeGraph()
        path = tmp_path / "empty.json"
        save_graph(graph, path)
        clone = load_graph(path)
        assert len(clone) == 0
        assert clone.num_edges == 0

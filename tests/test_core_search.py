"""Tests for the exact table search engine (Algorithm 1)."""

import pytest

from repro.core import (
    Query,
    QueryAggregation,
    RowAggregation,
    TableSearchEngine,
)
from repro.datalake import DataLake, Table
from repro.linking import EntityMapping
from repro.similarity import (
    Informativeness,
    MappingTypeSimilarity,
    TypeJaccardSimilarity,
)


@pytest.fixture()
def engine(sports_lake, sports_mapping, sports_graph):
    return TableSearchEngine(
        sports_lake,
        sports_mapping,
        TypeJaccardSimilarity(sports_graph),
        informativeness=Informativeness.from_mapping(
            sports_mapping, len(sports_lake)
        ),
    )


class TestScoring:
    def test_exact_match_table_scores_one(self, engine):
        # T00 rows cover players 0..3 (teams 0..3, cities 0..3).
        query = Query.single("kg:player0", "kg:team0", "kg:city0")
        result = engine.score_table(query, engine.lake.get("T00"))
        assert result.score == pytest.approx(1.0)
        assert result.relevant

    def test_semantically_related_table_scores_high(self, engine):
        # T05 holds players 20..23 - same types, different entities.
        query = Query.single("kg:player0", "kg:team0", "kg:city0")
        related = engine.score_table(query, engine.lake.get("T05"))
        assert 0.8 < related.score < 1.0

    def test_exact_beats_related(self, engine):
        query = Query.single("kg:player0", "kg:team0", "kg:city0")
        exact = engine.score_table(query, engine.lake.get("T00")).score
        related = engine.score_table(query, engine.lake.get("T05")).score
        assert exact > related

    def test_multi_tuple_query_averages(self, engine):
        q1 = Query.single("kg:player0", "kg:team0")
        q2 = Query([("kg:player0", "kg:team0"), ("kg:player4", "kg:team4")])
        table = engine.lake.get("T00")
        s1 = engine.score_table(q1, table)
        s2 = engine.score_table(q2, table)
        assert len(s2.tuple_scores) == 2
        assert s2.score == pytest.approx(sum(s2.tuple_scores) / 2)
        assert len(s1.tuple_scores) == 1

    def test_column_mapping_assigns_distinct_columns(self, engine):
        mapping = engine.column_mapping(
            ("kg:player0", "kg:team0", "kg:city0"), engine.lake.get("T00")
        )
        real = [c for c in mapping if c >= 0]
        assert len(real) == len(set(real)) == 3
        # Player/Team/City columns are 0/1/2 in the fixture tables.
        assert mapping == [0, 1, 2]

    def test_profile_accumulates(self, engine):
        engine.profile.reset()
        query = Query.single("kg:player0", "kg:team0")
        engine.score_table(query, engine.lake.get("T00"))
        assert engine.profile.tables_scored == 1
        assert engine.profile.total_seconds > 0.0
        assert 0.0 < engine.profile.mapping_fraction < 1.0
        assert engine.profile.mean_table_seconds > 0.0

    def test_profile_reset(self, engine):
        engine.profile.reset()
        assert engine.profile.tables_scored == 0
        assert engine.profile.mapping_fraction == 0.0
        assert engine.profile.mean_table_seconds == 0.0


class TestSearch:
    def test_full_ranking_is_descending(self, engine):
        query = Query.single("kg:player0", "kg:team0", "kg:city0")
        results = engine.search(query)
        scores = [st.score for st in results]
        assert scores == sorted(scores, reverse=True)
        assert results.table_ids()[0] == "T00"

    def test_k_truncates(self, engine):
        query = Query.single("kg:player0")
        assert len(engine.search(query, k=3)) == 3

    def test_candidates_restrict_search(self, engine):
        query = Query.single("kg:player0", "kg:team0")
        results = engine.search(query, candidates=["T01", "T02", "ghost"])
        assert set(results.table_ids()) <= {"T01", "T02"}

    def test_irrelevant_tables_dropped(self, sports_graph):
        # A lake where one table has no typed-entity overlap at all.
        lake = DataLake(
            [
                Table("good", ["A"], [["Player 0"]]),
                Table("empty", ["A"], [["nothing here"]]),
            ]
        )
        mapping = EntityMapping()
        mapping.link("good", 0, 0, "kg:player0")
        engine = TableSearchEngine(
            lake, mapping, TypeJaccardSimilarity(sports_graph)
        )
        results = engine.search(Query.single("kg:player0"))
        assert results.table_ids() == ["good"]

    def test_drop_irrelevant_disabled_keeps_all_linked(self, sports_graph):
        lake = DataLake([Table("t", ["A"], [["x"]])])
        mapping = EntityMapping()
        mapping.link("t", 0, 0, "kg:city0")
        sigma = MappingTypeSimilarity({"kg:q": frozenset({"OnlyMine"})})
        strict = TableSearchEngine(lake, mapping, sigma)
        assert len(strict.search(Query.single("kg:q"))) == 0
        lenient = TableSearchEngine(lake, mapping, sigma,
                                    drop_irrelevant=False)
        assert len(lenient.search(Query.single("kg:q"))) == 1

    def test_row_aggregation_max_vs_avg(self, sports_lake, sports_mapping,
                                        sports_graph):
        sigma = TypeJaccardSimilarity(sports_graph)
        query = Query.single("kg:player0", "kg:team0")
        max_engine = TableSearchEngine(
            sports_lake, sports_mapping, sigma,
            row_aggregation=RowAggregation.MAX,
        )
        avg_engine = TableSearchEngine(
            sports_lake, sports_mapping, sigma,
            row_aggregation=RowAggregation.AVG,
        )
        table = sports_lake.get("T00")
        # Only one row matches exactly; max amplifies it, avg dilutes.
        assert max_engine.score_table(query, table).score > \
            avg_engine.score_table(query, table).score

    def test_query_aggregation_max(self, sports_lake, sports_mapping,
                                   sports_graph):
        sigma = TypeJaccardSimilarity(sports_graph)
        engine = TableSearchEngine(
            sports_lake, sports_mapping, sigma,
            query_aggregation=QueryAggregation.MAX,
        )
        query = Query([("kg:player0",), ("kg:player20",)])
        result = engine.score_table(query, sports_lake.get("T00"))
        assert result.score == pytest.approx(max(result.tuple_scores))

    def test_invalidate_cache(self, engine):
        query = Query.single("kg:player0")
        engine.search(query, k=1)
        engine.invalidate_cache()
        # Cache rebuild must not change results.
        assert engine.search(query, k=1).table_ids() == \
            engine.search(query, k=1).table_ids()

    def test_deterministic_ranking(self, engine):
        query = Query.single("kg:player3", "kg:team3")
        first = engine.search(query, k=10).table_ids()
        second = engine.search(query, k=10).table_ids()
        assert first == second


class TestTupleSemantics:
    """Equation 1 (per-row) vs Algorithm 1 (per-entity) scoring."""

    def _engines(self, sports_lake, sports_mapping, sports_graph):
        from repro.core import TupleSemantics

        sigma = TypeJaccardSimilarity(sports_graph)
        per_entity = TableSearchEngine(
            sports_lake, sports_mapping, sigma,
            tuple_semantics=TupleSemantics.PER_ENTITY,
        )
        per_row = TableSearchEngine(
            sports_lake, sports_mapping, sigma,
            tuple_semantics=TupleSemantics.PER_ROW,
        )
        return per_entity, per_row

    def test_per_entity_dominates_per_row_under_max(
        self, sports_lake, sports_mapping, sports_graph
    ):
        per_entity, per_row = self._engines(
            sports_lake, sports_mapping, sports_graph
        )
        query = Query.single("kg:player0", "kg:team1")
        for table in sports_lake:
            collective = per_entity.score_table(query, table).score
            rowwise = per_row.score_table(query, table).score
            assert collective >= rowwise - 1e-9, table.table_id

    def test_exact_row_scores_one_in_both(self, sports_lake,
                                          sports_mapping, sports_graph):
        per_entity, per_row = self._engines(
            sports_lake, sports_mapping, sports_graph
        )
        # (player0, team0) co-occur in row 0 of T00.
        query = Query.single("kg:player0", "kg:team0")
        table = sports_lake.get("T00")
        assert per_entity.score_table(query, table).score == \
            pytest.approx(1.0)
        assert per_row.score_table(query, table).score == \
            pytest.approx(1.0)

    def test_cross_row_match_distinguishes_semantics(
        self, sports_lake, sports_mapping, sports_graph
    ):
        per_entity, per_row = self._engines(
            sports_lake, sports_mapping, sports_graph
        )
        # player0 (row 0 of T00) and team3 (row 3 of T00) never share a
        # row: per-entity still sees a perfect collective match, the
        # per-row (Eq. 1) semantics does not.
        query = Query.single("kg:player0", "kg:team3")
        table = sports_lake.get("T00")
        collective = per_entity.score_table(query, table).score
        rowwise = per_row.score_table(query, table).score
        assert collective == pytest.approx(1.0)
        assert rowwise < collective

    def test_per_row_search_ranks_cooccurrence_first(
        self, sports_lake, sports_mapping, sports_graph
    ):
        _, per_row = self._engines(
            sports_lake, sports_mapping, sports_graph
        )
        query = Query.single("kg:player0", "kg:team0")
        results = per_row.search(query, k=3)
        assert results.table_ids()[0] == "T00"

"""Cross-cutting property-based tests over the core invariants.

Each property here encodes a contract the paper's formalization
promises — score ranges, axiom monotonicity, serialization fidelity,
LSH candidate soundness — checked over randomized inputs.
"""

import string

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Query,
    ResultSet,
    ScoredTable,
    TableSearchEngine,
    best_mapping,
    semrel_tuple_score,
)
from repro.datalake import DataLake, Table, lake_from_dict, lake_to_dict
from repro.similarity import (
    MappingTypeSimilarity,
    TypeJaccardSimilarity,
    UniformInformativeness,
)

UNIFORM = UniformInformativeness()

# ---------------------------------------------------------------------------
# Table serialization fuzzing
# ---------------------------------------------------------------------------

_cell = st.one_of(
    st.none(),
    st.integers(-10**9, 10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet=string.printable, max_size=20),
)


@st.composite
def tables(draw):
    num_cols = draw(st.integers(1, 5))
    attributes = [f"col{i}" for i in range(num_cols)]
    rows = draw(
        st.lists(
            st.lists(_cell, min_size=num_cols, max_size=num_cols),
            max_size=8,
        )
    )
    return Table(draw(st.text(string.ascii_lowercase, min_size=1,
                              max_size=8)), attributes, rows)


@settings(max_examples=50, deadline=None)
@given(tables())
def test_lake_json_round_trip_is_lossless(table):
    lake = DataLake([table])
    clone = lake_from_dict(lake_to_dict(lake))
    restored = clone.get(table.table_id)
    assert restored.attributes == table.attributes
    assert len(restored.rows) == len(table.rows)
    for original, loaded in zip(table.rows, restored.rows):
        for a, b in zip(original, loaded):
            if isinstance(a, float):
                assert b == pytest.approx(a, nan_ok=False)
            else:
                assert a == b


# ---------------------------------------------------------------------------
# SemRel score contracts
# ---------------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=6))
def test_semrel_always_in_unit_interval(coords):
    entities = [f"e{i}" for i in range(len(coords))]
    score = semrel_tuple_score(entities, coords, UNIFORM)
    assert 0.0 < score <= 1.0
    if all(c == 1.0 for c in coords):
        assert score == 1.0


@settings(max_examples=50, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c", "d", "e"]),
        st.frozensets(st.sampled_from(["T1", "T2", "T3", "T4"]),
                      min_size=1),
        min_size=2,
    ),
    st.data(),
)
def test_best_mapping_is_injective_and_scored_in_range(types, data):
    sigma = MappingTypeSimilarity(types)
    uris = sorted(types)
    query = tuple(
        data.draw(st.lists(st.sampled_from(uris), min_size=1, max_size=3))
    )
    target = tuple(
        data.draw(st.lists(st.sampled_from(uris), min_size=1, max_size=4))
    )
    mapping = best_mapping(query, target, sigma)
    targets = list(mapping.assignment.values())
    assert len(targets) == len(set(targets))
    for position, score in mapping.similarities.items():
        assert 0.0 < score <= 1.0
        assert 0 <= position < len(query)
        assert mapping.assignment[position] < len(target)


# ---------------------------------------------------------------------------
# Result set contracts
# ---------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(
    st.dictionaries(
        st.text(string.ascii_lowercase, min_size=1, max_size=6),
        st.floats(0.0, 1.0),
        max_size=15,
    ),
    st.integers(0, 20),
)
def test_result_set_ordering_and_top(scores, k):
    results = ResultSet.from_scores(scores)
    values = [st_.score for st_ in results]
    assert values == sorted(values, reverse=True)
    top = results.top(k)
    assert len(top) == min(k, len(scores))
    assert top.table_ids() == results.table_ids()[:k]


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.text(string.ascii_lowercase, min_size=1, max_size=4),
             unique=True, max_size=10),
    st.lists(st.text(string.ascii_uppercase, min_size=1, max_size=4),
             unique=True, max_size=10),
    st.integers(1, 12),
)
def test_complement_is_deduplicated_and_bounded(ours, theirs, k):
    a = ResultSet(ScoredTable(1.0 - i / 100, t) for i, t in enumerate(ours))
    b = ResultSet(ScoredTable(1.0 - i / 100, t) for i, t in enumerate(theirs))
    merged = a.complement(b, k=k)
    ids = merged.table_ids()
    assert len(ids) == len(set(ids))
    assert len(ids) <= k
    assert set(ids) <= set(ours) | set(theirs)


# ---------------------------------------------------------------------------
# Engine + LSH soundness on the fixture world
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(st.integers(0, 31), st.integers(0, 7))
def test_search_scores_bounded_and_sorted(player, team):
    from tests.conftest import make_sports_graph, make_sports_lake
    from repro.linking import LabelLinker

    cache = test_search_scores_bounded_and_sorted.__dict__
    graph = cache.setdefault("_graph", make_sports_graph())
    lake = cache.setdefault("_lake", make_sports_lake())
    mapping = cache.setdefault(
        "_mapping", LabelLinker(graph).link_lake(lake)
    )
    engine = cache.setdefault(
        "_engine",
        TableSearchEngine(lake, mapping, TypeJaccardSimilarity(graph)),
    )
    query = Query.single(f"kg:player{player}", f"kg:team{team}")
    results = engine.search(query)
    scores = [st_.score for st_ in results]
    assert all(0.0 < s <= 1.0 for s in scores)
    assert scores == sorted(scores, reverse=True)
    # The table containing the player exactly must score higher than
    # (or equal to) every table that does not contain it.
    containing = mapping.tables_with_entity(f"kg:player{player}")
    best_containing = max(
        results.score_of(t) or 0.0 for t in containing
    )
    assert best_containing == pytest.approx(max(scores))


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 31), st.integers(1, 4))
def test_lsh_candidates_subset_of_linked_tables(player, votes):
    from tests.conftest import make_sports_graph, make_sports_lake
    from repro.linking import LabelLinker
    from repro.lsh import LSHConfig, TablePrefilter, TypeSignatureScheme

    cache = test_lsh_candidates_subset_of_linked_tables.__dict__
    graph = cache.setdefault("_graph", make_sports_graph())
    lake = cache.setdefault("_lake", make_sports_lake())
    mapping = cache.setdefault(
        "_mapping", LabelLinker(graph).link_lake(lake)
    )
    prefilter = cache.setdefault(
        "_prefilter",
        TablePrefilter(
            TypeSignatureScheme(graph, 32), LSHConfig(32, 8), mapping
        ),
    )
    query = Query.single(f"kg:player{player}")
    candidates = prefilter.candidate_tables(query, votes=votes)
    assert candidates <= set(lake.table_ids())
    stricter = prefilter.candidate_tables(query, votes=votes + 1)
    assert stricter <= candidates

"""Tests for over-specialized query relaxation."""

import pytest

from repro.core import (
    Query,
    RelaxingSearcher,
    TableSearchEngine,
    drop_least_informative,
    split_tuples,
)
from repro.exceptions import ConfigurationError
from repro.similarity import Informativeness, TypeJaccardSimilarity


@pytest.fixture()
def engine(sports_lake, sports_mapping, sports_graph):
    return TableSearchEngine(
        sports_lake,
        sports_mapping,
        TypeJaccardSimilarity(sports_graph),
        informativeness=Informativeness.from_mapping(
            sports_mapping, len(sports_lake)
        ),
    )


class TestRelaxationPrimitives:
    def test_split_tuples(self):
        query = Query([("a", "b"), ("c",)])
        parts = split_tuples(query)
        assert len(parts) == 2
        assert parts[0].tuples == (("a", "b"),)
        assert parts[1].tuples == (("c",),)

    def test_drop_least_informative(self, engine):
        # Teams appear in fewer fixture tables than players here?  Use
        # the actual weights: the weakest entity per tuple goes.
        query = Query.single("kg:player0", "kg:team0")
        relaxed = drop_least_informative(query, engine.informativeness)
        assert relaxed is not None
        assert len(relaxed.tuples[0]) == 1
        kept = relaxed.tuples[0][0]
        dropped = ({"kg:player0", "kg:team0"} - {kept}).pop()
        assert engine.informativeness(kept) >= \
            engine.informativeness(dropped)

    def test_drop_handles_width_one(self, engine):
        query = Query.single("kg:player0")
        assert drop_least_informative(query, engine.informativeness) is None

    def test_drop_mixed_widths(self, engine):
        query = Query([("kg:player0", "kg:team0"), ("kg:player1",)])
        relaxed = drop_least_informative(query, engine.informativeness)
        assert relaxed is not None
        assert len(relaxed.tuples[0]) == 1
        assert relaxed.tuples[1] == ("kg:player1",)


class TestRelaxingSearcher:
    def test_validation(self, engine):
        with pytest.raises(ConfigurationError):
            RelaxingSearcher(engine, strategy="bogus")
        with pytest.raises(ConfigurationError):
            RelaxingSearcher(engine, threshold=1.5)

    def test_strong_query_not_relaxed(self, engine):
        searcher = RelaxingSearcher(engine, threshold=0.5)
        outcome = searcher.search(
            Query.single("kg:player0", "kg:team0"), k=3
        )
        assert not outcome.relaxed
        assert outcome.strategy is None
        assert outcome.head_score > 0.5
        assert outcome.results.table_ids() == \
            engine.search(Query.single("kg:player0", "kg:team0"),
                          k=3).table_ids()

    def test_weak_query_split_relaxed(self, engine):
        # A threshold of 1.0 forces relaxation for any imperfect head.
        searcher = RelaxingSearcher(engine, threshold=1.0,
                                    strategy="split")
        query = Query([("kg:player0", "kg:team1"),
                       ("kg:player9", "kg:team2")])
        outcome = searcher.search(query, k=5)
        assert outcome.relaxed
        assert outcome.strategy == "split"
        assert len(outcome.results) == 5

    def test_single_entity_query_cannot_split(self, engine):
        searcher = RelaxingSearcher(engine, threshold=1.0,
                                    strategy="split")
        outcome = searcher.search(Query.single("kg:player0"), k=3)
        # One tuple of width one: nothing to split into.
        assert not outcome.relaxed

    def test_drop_strategy(self, engine):
        searcher = RelaxingSearcher(engine, threshold=1.0, strategy="drop")
        query = Query.single("kg:player0", "kg:city1")
        outcome = searcher.search(query, k=3)
        assert outcome.relaxed
        assert outcome.strategy == "drop"
        assert len(outcome.results) > 0

    def test_drop_strategy_width_one_falls_back(self, engine):
        searcher = RelaxingSearcher(engine, threshold=1.0, strategy="drop")
        outcome = searcher.search(Query.single("kg:player0"), k=3)
        assert not outcome.relaxed

    def test_split_relaxation_recovers_partial_matches(self, engine):
        """The motivating case: a conjunction nothing satisfies.

        No fixture table pairs player0 with team5 in one row grid; the
        split relaxation still surfaces the tables strong for either
        tuple member.
        """
        searcher = RelaxingSearcher(engine, threshold=0.99,
                                    strategy="split")
        query = Query([("kg:player0",), ("kg:player21",)])
        outcome = searcher.search(query, k=5)
        ids = set(outcome.results.table_ids())
        player0_tables = set(
            engine.mapping.tables_with_entity("kg:player0")
        )
        player21_tables = set(
            engine.mapping.tables_with_entity("kg:player21")
        )
        assert ids & player0_tables
        assert ids & player21_tables

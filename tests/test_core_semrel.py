"""Tests for the SemRel distance/similarity machinery (Eq. 2-3)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    distance_to_similarity,
    semrel_tuple_score,
    weighted_distance,
)
from repro.exceptions import SearchError
from repro.similarity import Informativeness, UniformInformativeness

UNIFORM = UniformInformativeness()


class TestWeightedDistance:
    def test_perfect_match_is_zero(self):
        assert weighted_distance(["a", "b"], [1.0, 1.0], UNIFORM) == 0.0

    def test_total_miss_uniform(self):
        assert weighted_distance(["a", "b"], [0.0, 0.0], UNIFORM) == \
            pytest.approx(math.sqrt(2.0))

    def test_weights_scale_residuals(self):
        info = Informativeness({"rare": 1, "common": 100}, num_tables=100)
        rare_miss = weighted_distance(["rare", "common"], [0.0, 1.0], info)
        common_miss = weighted_distance(["rare", "common"], [1.0, 0.0], info)
        # Missing the informative entity hurts more.
        assert rare_miss > common_miss

    def test_length_mismatch_rejected(self):
        with pytest.raises(SearchError):
            weighted_distance(["a"], [1.0, 0.5], UNIFORM)

    def test_out_of_range_coordinate_rejected(self):
        with pytest.raises(SearchError):
            weighted_distance(["a"], [1.5], UNIFORM)
        with pytest.raises(SearchError):
            weighted_distance(["a"], [-0.1], UNIFORM)

    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=8))
    def test_non_negative_and_bounded(self, coords):
        distance = weighted_distance(
            [f"e{i}" for i in range(len(coords))], coords, UNIFORM
        )
        assert 0.0 <= distance <= math.sqrt(len(coords)) + 1e-9


class TestDistanceToSimilarity:
    def test_zero_distance_is_one(self):
        assert distance_to_similarity(0.0) == 1.0

    def test_monotone_decreasing(self):
        assert distance_to_similarity(0.5) > distance_to_similarity(1.0)

    def test_negative_rejected(self):
        with pytest.raises(SearchError):
            distance_to_similarity(-0.1)

    @given(st.floats(0.0, 1e6))
    def test_range(self, distance):
        sim = distance_to_similarity(distance)
        assert 0.0 < sim <= 1.0


class TestSemRelTupleScore:
    def test_exact_match_scores_one(self):
        assert semrel_tuple_score(["a"], [1.0], UNIFORM) == 1.0

    def test_score_in_open_zero_one(self):
        score = semrel_tuple_score(["a", "b"], [0.0, 0.0], UNIFORM)
        assert 0.0 < score < 1.0

    def test_wider_query_with_same_misses_scores_lower(self):
        narrow = semrel_tuple_score(["a"], [0.0], UNIFORM)
        wide = semrel_tuple_score(["a", "b", "c"], [0.0] * 3, UNIFORM)
        assert wide < narrow

    def test_weighting_downplays_common_entities(self):
        info = Informativeness({"player": 1, "team": 80}, num_tables=100)
        # Matching only the player beats matching only the team.
        player_only = semrel_tuple_score(["player", "team"], [1.0, 0.0], info)
        team_only = semrel_tuple_score(["player", "team"], [0.0, 1.0], info)
        assert player_only > team_only

"""Unit tests for the entity/type/predicate value objects."""

import pytest

from repro.exceptions import ReproError
from repro.kg import Entity, EntityType, Predicate


class TestEntity:
    def test_requires_uri(self):
        with pytest.raises(ValueError):
            Entity(uri="")

    def test_types_coerced_to_frozenset(self):
        entity = Entity("kg:a", "A", types={"Person", "Agent"})
        assert isinstance(entity.types, frozenset)
        assert entity.types == {"Person", "Agent"}

    def test_equality_and_hash_on_uri_only(self):
        a1 = Entity("kg:a", "First label", frozenset({"X"}))
        a2 = Entity("kg:a", "Other label", frozenset({"Y"}))
        assert a1 == a2
        assert hash(a1) == hash(a2)
        assert a1 != Entity("kg:b", "First label", frozenset({"X"}))

    def test_equality_against_non_entity(self):
        assert Entity("kg:a") != "kg:a"

    def test_has_type(self):
        entity = Entity("kg:a", types=frozenset({"Person"}))
        assert entity.has_type("Person")
        assert not entity.has_type("City")

    def test_str_prefers_label(self):
        assert str(Entity("kg:a", label="Alpha")) == "Alpha"
        assert str(Entity("kg:a")) == "kg:a"

    def test_default_types_empty(self):
        assert Entity("kg:a").types == frozenset()

    def test_aliases_default_empty(self):
        assert Entity("kg:a").aliases == ()

    def test_usable_in_sets(self):
        entities = {Entity("kg:a"), Entity("kg:a", "dup"), Entity("kg:b")}
        assert len(entities) == 2


class TestEntityTypeAndPredicate:
    def test_type_compares_on_name(self):
        assert EntityType("Person", parent="Agent") == EntityType("Person")

    def test_type_ordering(self):
        assert EntityType("Agent") < EntityType("Person")

    def test_str_forms(self):
        assert str(EntityType("Person")) == "Person"
        assert str(Predicate("playsFor")) == "playsFor"

    def test_predicate_equality(self):
        assert Predicate("a") == Predicate("a")
        assert Predicate("a") != Predicate("b")


def test_repro_error_is_base():
    from repro.exceptions import (
        DataLakeError,
        EmbeddingError,
        KnowledgeGraphError,
        LinkingError,
        SearchError,
    )

    for exc in (DataLakeError, EmbeddingError, KnowledgeGraphError,
                LinkingError, SearchError):
        assert issubclass(exc, ReproError)

"""Tests for the serving wire protocol: parsing, validation, codec."""

import pytest

from repro.core.result import ResultSet, ScoredTable
from repro.exceptions import ProtocolError
from repro.serve.protocol import (
    MAX_K,
    MAX_TUPLES,
    ExplainRequest,
    SearchRequest,
    TableUpsertRequest,
    error_to_json,
    result_to_json,
)


class TestSearchRequest:
    def test_minimal_defaults(self):
        req = SearchRequest.from_json({"tuples": [["kg:a", "kg:b"]]})
        assert req.tuples == (("kg:a", "kg:b"),)
        assert req.k == 10
        assert req.method == "types"
        assert req.mode == "search"
        assert not req.use_lsh
        assert req.votes == 1

    def test_all_fields(self):
        req = SearchRequest.from_json(
            {"tuples": [["kg:a"], ["kg:b", "kg:c"]], "k": 3,
             "method": "embeddings", "use_lsh": True, "votes": 3},
            mode="topk",
        )
        assert req.k == 3
        assert req.method == "embeddings"
        assert req.mode == "topk"
        assert req.use_lsh
        assert req.votes == 3

    def test_non_object_body(self):
        with pytest.raises(ProtocolError):
            SearchRequest.from_json([["kg:a"]])

    def test_missing_tuples(self):
        with pytest.raises(ProtocolError):
            SearchRequest.from_json({"k": 5})

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request fields"):
            SearchRequest.from_json(
                {"tuples": [["kg:a"]], "tupels": [["kg:b"]]}
            )

    def test_empty_tuple_rejected(self):
        with pytest.raises(ProtocolError):
            SearchRequest.from_json({"tuples": [[]]})

    def test_non_string_entity_rejected(self):
        with pytest.raises(ProtocolError):
            SearchRequest.from_json({"tuples": [["kg:a", 7]]})

    def test_too_many_tuples_rejected(self):
        tuples = [["kg:a"]] * (MAX_TUPLES + 1)
        with pytest.raises(ProtocolError, match="too many"):
            SearchRequest.from_json({"tuples": tuples})

    def test_k_bounds(self):
        with pytest.raises(ProtocolError):
            SearchRequest.from_json({"tuples": [["kg:a"]], "k": 0})
        with pytest.raises(ProtocolError):
            SearchRequest.from_json({"tuples": [["kg:a"]], "k": MAX_K + 1})

    def test_k_boolean_rejected(self):
        # bool is an int subclass; the codec must not accept it.
        with pytest.raises(ProtocolError):
            SearchRequest.from_json({"tuples": [["kg:a"]], "k": True})

    def test_bad_method(self):
        with pytest.raises(ProtocolError):
            SearchRequest.from_json(
                {"tuples": [["kg:a"]], "method": "magic"}
            )

    def test_query_materializes(self):
        req = SearchRequest.from_json({"tuples": [["kg:a", "kg:b"]]})
        assert req.query().tuples == (("kg:a", "kg:b"),)

    def test_batch_key_groups_compatible_requests(self):
        a = SearchRequest.from_json({"tuples": [["kg:a"]], "k": 5})
        b = SearchRequest.from_json({"tuples": [["kg:z"]], "k": 5})
        c = SearchRequest.from_json({"tuples": [["kg:z"]], "k": 7})
        assert a.batch_key() == b.batch_key()
        assert a.batch_key() != c.batch_key()


class TestWireMode:
    def test_exact_maps_to_search(self):
        req = SearchRequest.from_json(
            {"tuples": [["kg:a"]], "mode": "exact"}
        )
        assert req.mode == "search"

    def test_prefilter_selects_prefilter_execution(self):
        req = SearchRequest.from_json(
            {"tuples": [["kg:a"]], "mode": "prefilter"}
        )
        assert req.mode == "prefilter"

    def test_omitted_mode_keeps_endpoint_default(self):
        assert SearchRequest.from_json({"tuples": [["kg:a"]]}).mode \
            == "search"
        assert SearchRequest.from_json(
            {"tuples": [["kg:a"]]}, mode="topk"
        ).mode == "topk"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ProtocolError, match="'mode'"):
            SearchRequest.from_json(
                {"tuples": [["kg:a"]], "mode": "fuzzy"}
            )
        # Internal execution names are not wire values.
        with pytest.raises(ProtocolError):
            SearchRequest.from_json(
                {"tuples": [["kg:a"]], "mode": "search"}
            )

    def test_mode_rejected_on_topk_endpoint(self):
        with pytest.raises(ProtocolError, match="POST /search"):
            SearchRequest.from_json(
                {"tuples": [["kg:a"]], "mode": "exact"}, mode="topk"
            )

    def test_mode_splits_batch_key(self):
        exact = SearchRequest.from_json(
            {"tuples": [["kg:a"]], "mode": "exact"}
        )
        pre = SearchRequest.from_json(
            {"tuples": [["kg:a"]], "mode": "prefilter"}
        )
        assert exact.batch_key() != pre.batch_key()

    def test_mode_echoed_in_response(self):
        req = SearchRequest.from_json(
            {"tuples": [["kg:a"]], "mode": "prefilter"}
        )
        payload = result_to_json(ResultSet([]), req)
        assert payload["mode"] == "prefilter"


class TestExplainRequest:
    def test_roundtrip(self):
        req = ExplainRequest.from_json(
            {"tuples": [["kg:a"]], "table_id": "T01"}
        )
        assert req.table_id == "T01"
        assert req.method == "types"

    def test_missing_table_id(self):
        with pytest.raises(ProtocolError):
            ExplainRequest.from_json({"tuples": [["kg:a"]]})


class TestTableUpsertRequest:
    def test_roundtrip(self):
        req = TableUpsertRequest.from_json({
            "table": {"id": "TX", "attributes": ["A", "B"],
                      "rows": [["x", 1], ["y", None]],
                      "metadata": {"caption": "c"}},
        })
        table = req.table()
        assert table.table_id == "TX"
        assert table.num_rows == 2
        assert req.link

    def test_row_width_mismatch(self):
        with pytest.raises(ProtocolError):
            TableUpsertRequest.from_json({
                "table": {"id": "TX", "attributes": ["A", "B"],
                          "rows": [["only-one"]]},
            })

    def test_missing_table_object(self):
        with pytest.raises(ProtocolError):
            TableUpsertRequest.from_json({"link": True})

    def test_duplicate_attributes_rejected_at_build(self):
        req = TableUpsertRequest.from_json({
            "table": {"id": "TX", "attributes": ["A", "A"],
                      "rows": []},
        })
        with pytest.raises(ProtocolError):
            req.table()


class TestResponseCodec:
    def test_result_to_json_ranks_and_scores(self):
        results = ResultSet([
            ScoredTable(0.9, "T1"), ScoredTable(0.5, "T2"),
        ])
        req = SearchRequest.from_json({"tuples": [["kg:a"]], "k": 2})
        payload = result_to_json(results, req, snapshot_version=4)
        assert payload["count"] == 2
        assert payload["snapshot_version"] == 4
        assert payload["results"][0] == {
            "rank": 1, "table_id": "T1", "score": 0.9,
        }

    def test_error_envelope(self):
        assert error_to_json("boom", 503) == {"error": "boom",
                                              "status": 503}


class TestParseTableId:
    """The chokepoint every external table id passes through."""

    def test_accepts_ordinary_ids(self):
        from repro.serve.protocol import parse_table_id

        assert parse_table_id("T001") == "T001"
        assert parse_table_id("lake/table-42.csv") == "lake/table-42.csv"

    def test_rejects_non_strings_and_empty(self):
        from repro.serve.protocol import parse_table_id

        for bad in (None, 3, "", ["T1"]):
            with pytest.raises(ProtocolError):
                parse_table_id(bad)

    def test_rejects_control_characters_and_oversize(self):
        from repro.serve.protocol import MAX_TABLE_ID_LENGTH, parse_table_id

        for bad in ("a\nb", "a\x00b", "a\x7fb", "x" * (MAX_TABLE_ID_LENGTH + 1)):
            with pytest.raises(ProtocolError):
                parse_table_id(bad)

    def test_error_names_the_field(self):
        from repro.serve.protocol import parse_table_id

        with pytest.raises(ProtocolError, match="table.id"):
            parse_table_id("", name="table.id")

    def test_from_json_routes_through_parse_table_id(self):
        with pytest.raises(ProtocolError, match="table_id"):
            ExplainRequest.from_json({
                "tuples": [["kg:a"]], "table_id": "bad\x01id",
            })
        with pytest.raises(ProtocolError, match="table.id"):
            TableUpsertRequest.from_json({
                "table": {"id": "x\x00y", "attributes": ["a"],
                          "rows": [["kg:a"]]},
            })

"""Unit tests for the data-lake repository."""

import pytest

from repro.datalake import DataLake, Table
from repro.exceptions import DataLakeError, DuplicateTableError


def _table(table_id, rows=2):
    return Table(table_id, ["A", "B"], [[i, i * 2] for i in range(rows)])


class TestDataLake:
    def test_add_get_find(self):
        lake = DataLake([_table("T1"), _table("T2")])
        assert len(lake) == 2
        assert lake.get("T1").table_id == "T1"
        assert lake.find("T3") is None
        with pytest.raises(DataLakeError):
            lake.get("T3")

    def test_duplicate_rejected(self):
        lake = DataLake([_table("T1")])
        with pytest.raises(DuplicateTableError):
            lake.add(_table("T1"))

    def test_contains_and_iteration_order(self):
        lake = DataLake([_table("T2"), _table("T1")])
        assert "T2" in lake
        assert [t.table_id for t in lake] == ["T2", "T1"]
        assert lake.table_ids() == ["T2", "T1"]

    def test_remove(self):
        lake = DataLake([_table("T1")])
        removed = lake.remove("T1")
        assert removed.table_id == "T1"
        assert len(lake) == 0
        with pytest.raises(DataLakeError):
            lake.remove("T1")

    def test_add_all(self):
        lake = DataLake()
        lake.add_all([_table("A"), _table("B")])
        assert len(lake) == 2

    def test_subset_ignores_unknown_and_duplicates(self):
        lake = DataLake([_table("T1"), _table("T2"), _table("T3")])
        subset = lake.subset(["T3", "T1", "T3", "missing"])
        assert subset.table_ids() == ["T3", "T1"]

    def test_totals(self):
        lake = DataLake([_table("T1", rows=3), _table("T2", rows=5)])
        assert lake.total_rows() == 8
        assert lake.total_cells() == 16

    def test_empty_lake(self):
        lake = DataLake()
        assert len(lake) == 0
        assert lake.total_rows() == 0
        assert list(lake) == []

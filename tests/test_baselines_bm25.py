"""Tests for the BM25 keyword-search baseline."""

import pytest

from repro.baselines import BM25TableSearch, text_query_from_labels
from repro.core import Query
from repro.datalake import DataLake, Table


@pytest.fixture()
def lake():
    return DataLake(
        [
            Table("cubs", ["Player", "Team"],
                  [["Ron Santo", "Chicago Cubs"],
                   ["Ernie Banks", "Chicago Cubs"]]),
            Table("brewers", ["Player", "Team"],
                  [["Mitch Stetter", "Milwaukee Brewers"]]),
            Table("cities", ["City"], [["Chicago"], ["Milwaukee"]],
                  metadata={"caption": "US cities"}),
        ]
    )


@pytest.fixture()
def bm25(lake):
    return BM25TableSearch(lake)


class TestBM25:
    def test_num_documents(self, bm25):
        assert bm25.num_documents == 3

    def test_exact_keyword_ranks_containing_table_first(self, bm25):
        results = bm25.search(["santo"])
        assert results.table_ids()[0] == "cubs"

    def test_shared_keyword_matches_both(self, bm25):
        results = bm25.search(["chicago"])
        assert set(results.table_ids()) == {"cubs", "cities"}

    def test_rare_term_gets_higher_idf_weight(self, bm25):
        # "stetter" appears in 1 doc, "chicago" in 2: querying both must
        # rank the stetter table at least as high as any chicago table.
        results = bm25.search(["stetter", "chicago"])
        assert results.table_ids()[0] == "brewers"

    def test_metadata_indexed(self, bm25):
        results = bm25.search(["cities"])
        assert results.table_ids() == ["cities"]

    def test_no_match(self, bm25):
        assert len(bm25.search(["volleyball"])) == 0

    def test_k_truncation(self, bm25):
        assert len(bm25.search(["chicago"], k=1)) == 1

    def test_candidates_restriction(self, bm25):
        results = bm25.search(["chicago"], candidates=["cities"])
        assert results.table_ids() == ["cities"]

    def test_repeated_keywords_increase_score(self, bm25):
        single = bm25.search(["chicago"]).score_of("cubs")
        double = bm25.search(["chicago", "chicago"]).score_of("cubs")
        assert double == pytest.approx(2 * single)

    def test_score_method_matches_search(self, bm25):
        keywords = ["ron", "santo"]
        assert bm25.score(keywords, "cubs") == pytest.approx(
            bm25.search(keywords).score_of("cubs")
        )

    def test_score_unknown_table(self, bm25):
        assert bm25.score(["santo"], "ghost") == 0.0

    def test_all_scores_positive(self, bm25):
        for scored in bm25.search(["chicago", "milwaukee"]):
            assert scored.score > 0.0


class TestTextQueries:
    def test_labels_tokenized(self, sports_graph):
        query = Query.single("kg:player0", "kg:team0")
        keywords = text_query_from_labels(query, sports_graph)
        assert keywords == ["player", "0", "team", "0"]

    def test_unknown_uri_falls_back_to_tail(self, sports_graph):
        keywords = text_query_from_labels(
            Query.single("kg:mystery"), sports_graph
        )
        assert keywords == ["mystery"]

    def test_search_query_wrapper(self, bm25, sports_graph, lake):
        # Labels of the sports graph don't appear in this lake.
        results = bm25.search_query(
            Query.single("kg:player0"), sports_graph, k=5
        )
        assert isinstance(len(results), int)

"""The Section 4.2 axioms verified at the full-engine level.

The tuple-level axioms are property-tested in test_core_axioms; here
whole tables are constructed so that Algorithm 1 (column mapping, row
aggregation, informativeness, Eq. 1 averaging) must still respect the
orderings the axioms demand.
"""

import pytest

from repro.core import Query, TableSearchEngine
from repro.datalake import DataLake, Table
from repro.linking import EntityMapping
from repro.similarity import MappingTypeSimilarity

TYPES = {
    "kg:stetter": frozenset({"Thing", "Person", "BaseballPlayer"}),
    "kg:santo": frozenset({"Thing", "Person", "BaseballPlayer"}),
    "kg:brewers": frozenset({"Thing", "Org", "BaseballTeam"}),
    "kg:cubs": frozenset({"Thing", "Org", "BaseballTeam"}),
    "kg:streep": frozenset({"Thing", "Person", "Actor"}),
    "kg:milwaukee": frozenset({"Thing", "Place", "City"}),
}


def _build_engine():
    """One table per axiom case, two entity columns each."""
    rows = {
        "total_exact": ("kg:stetter", "kg:brewers"),
        "partial_exact": ("kg:stetter", "kg:milwaukee"),
        "total_related": ("kg:santo", "kg:cubs"),
        "weak_related": ("kg:streep", "kg:milwaukee"),
    }
    lake = DataLake()
    mapping = EntityMapping()
    for table_id, (a, b) in rows.items():
        lake.add(Table(table_id, ["A", "B"], [[a, b]]))
        mapping.link(table_id, 0, 0, a)
        mapping.link(table_id, 0, 1, b)
    return TableSearchEngine(lake, mapping, MappingTypeSimilarity(TYPES))


QUERY = Query.single("kg:stetter", "kg:brewers")


class TestAxiomsThroughTheEngine:
    @pytest.fixture(scope="class")
    def scores(self):
        engine = _build_engine()
        return {
            table.table_id: engine.score_table(QUERY, table).score
            for table in engine.lake
        }

    def test_axiom1_total_exact_is_top(self, scores):
        """TE mappings outrank every non-TE table."""
        assert scores["total_exact"] == pytest.approx(1.0)
        for other in ("partial_exact", "total_related", "weak_related"):
            assert scores["total_exact"] > scores[other], other

    def test_axiom2_partial_exact_beats_weaker_partial(self, scores):
        """An exact hit on one entity beats weak relations everywhere."""
        assert scores["partial_exact"] > scores["weak_related"]

    def test_axiom3_stronger_similarities_rank_higher(self, scores):
        """TR with strong sigma beats a mapping with weaker sigma."""
        assert scores["total_related"] > scores["weak_related"]

    def test_full_ranking_order(self, scores):
        engine = _build_engine()
        ranking = engine.search(QUERY).table_ids()
        assert ranking[0] == "total_exact"
        assert ranking.index("total_related") < \
            ranking.index("weak_related")

    def test_axioms_hold_under_per_row_semantics(self):
        from repro.core import TupleSemantics

        engine = _build_engine()
        engine.tuple_semantics = TupleSemantics.PER_ROW
        scores = {
            table.table_id: engine.score_table(QUERY, table).score
            for table in engine.lake
        }
        assert scores["total_exact"] == pytest.approx(1.0)
        assert scores["total_exact"] > scores["total_related"] > \
            scores["weak_related"]

    def test_axioms_hold_under_avg_row_aggregation(self):
        from repro.core import RowAggregation

        engine = _build_engine()
        engine.row_aggregation = RowAggregation.AVG
        scores = {
            table.table_id: engine.score_table(QUERY, table).score
            for table in engine.lake
        }
        assert scores["total_exact"] > scores["total_related"] > \
            scores["weak_related"]

"""Tests for random-hyperplane signatures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.lsh import HyperplaneHasher


class TestHyperplaneHasher:
    def test_signature_is_bits(self):
        hasher = HyperplaneHasher(16, 4, seed=0)
        sig = hasher.signature(np.array([1.0, -1.0, 0.5, 2.0]))
        assert sig.shape == (16,)
        assert set(np.unique(sig)) <= {0, 1}

    def test_zero_vector_returns_none(self):
        hasher = HyperplaneHasher(8, 3)
        assert hasher.signature(np.zeros(3)) is None

    def test_dimension_mismatch(self):
        hasher = HyperplaneHasher(8, 3)
        with pytest.raises(DimensionMismatchError):
            hasher.signature(np.zeros(4))
        with pytest.raises(DimensionMismatchError):
            hasher.signatures(np.zeros((2, 4)))

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            HyperplaneHasher(0, 3)
        with pytest.raises(ConfigurationError):
            HyperplaneHasher(3, 0)

    def test_scale_invariance(self):
        hasher = HyperplaneHasher(32, 4, seed=1)
        v = np.array([0.3, -0.7, 1.0, 0.1])
        assert np.array_equal(hasher.signature(v), hasher.signature(10 * v))

    def test_opposite_vectors_flip_all_bits(self):
        hasher = HyperplaneHasher(32, 4, seed=2)
        v = np.array([0.3, -0.7, 1.0, 0.1])
        assert np.array_equal(
            hasher.signature(-v), 1 - hasher.signature(v)
        )

    def test_batched_matches_single(self):
        hasher = HyperplaneHasher(16, 5, seed=3)
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((10, 5))
        batched = hasher.signatures(matrix)
        for i in range(10):
            assert np.array_equal(batched[i], hasher.signature(matrix[i]))

    def test_estimate_cosine_shape_mismatch(self):
        hasher = HyperplaneHasher(8, 3)
        with pytest.raises(ConfigurationError):
            hasher.estimate_cosine(np.zeros(8), np.zeros(4))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_estimate_tracks_true_cosine(self, seed):
        """Many hyperplanes estimate cosine within a loose tolerance."""
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(16)
        b = rng.standard_normal(16)
        truth = float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))
        hasher = HyperplaneHasher(512, 16, seed=1)
        estimate = hasher.estimate_cosine(hasher.signature(a),
                                          hasher.signature(b))
        assert abs(estimate - truth) < 0.3

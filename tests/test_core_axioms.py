"""Executable verification of the Section 4.2 relevance axioms.

The axioms constrain any valid SemRel score; these tests check both the
mapping classification (TE/PE/TR/PR) and that the concrete Equation 2-3
score satisfies every axiom, by construction and by property testing.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import MappingKind, best_mapping, semrel_tuple_score
from repro.similarity import MappingTypeSimilarity, UniformInformativeness

# A small universe of typed entities mirroring the paper's running
# example (Section 4.2).
# Every DBpedia entity carries owl:Thing, which is what makes the
# paper's t1 ~PR t5 example a (weak) related mapping rather than an
# irrelevant one.
TYPES = {
    "stetter": frozenset({"Thing", "Person", "Athlete", "BaseballPlayer"}),
    "santo": frozenset({"Thing", "Person", "Athlete", "BaseballPlayer"}),
    "brewers": frozenset({"Thing", "Organisation", "SportsTeam",
                          "BaseballTeam"}),
    "cubs": frozenset({"Thing", "Organisation", "SportsTeam",
                       "BaseballTeam"}),
    "milwaukee": frozenset({"Thing", "Place", "City"}),
    "chicago": frozenset({"Thing", "Place", "City"}),
    "streep": frozenset({"Thing", "Person", "Artist", "Actor"}),
}

SIGMA = MappingTypeSimilarity(TYPES)
UNIFORM = UniformInformativeness()


def score(query_tuple, target_tuple):
    mapping = best_mapping(query_tuple, target_tuple, SIGMA)
    coordinates = [
        mapping.similarities.get(i, 0.0) for i in range(len(query_tuple))
    ]
    return semrel_tuple_score(query_tuple, coordinates, UNIFORM)


class TestMappingClassification:
    """The paper's examples: t1..t5 relationships hold as stated."""

    T1 = ("stetter", "brewers")
    T2 = ("stetter", "brewers", "milwaukee")
    T3 = ("santo", "cubs")
    T4 = ("santo", "chicago")
    T5 = ("milwaukee",)

    def test_t1_te_t2(self):
        assert best_mapping(self.T1, self.T2, SIGMA).kind == MappingKind.TOTAL_EXACT

    def test_t2_pe_t1(self):
        assert best_mapping(self.T2, self.T1, SIGMA).kind == MappingKind.PARTIAL_EXACT

    def test_t1_tr_t3(self):
        assert best_mapping(self.T1, self.T3, SIGMA).kind == MappingKind.TOTAL_RELATED

    def test_t2_tr_t4(self):
        # (stetter, brewers, milwaukee) vs (santo, chicago): only two of
        # three query entities can map injectively -> partial related.
        assert best_mapping(self.T2, self.T4, SIGMA).kind == MappingKind.PARTIAL_RELATED

    def test_t1_pr_t5(self):
        assert best_mapping(self.T1, self.T5, SIGMA).kind == MappingKind.PARTIAL_RELATED

    def test_irrelevant(self):
        sigma = MappingTypeSimilarity(
            {"a": frozenset({"X"}), "b": frozenset({"Y"})}
        )
        assert best_mapping(("a",), ("b",), sigma).kind == MappingKind.IRRELEVANT

    def test_mixed_exact_and_related_is_total_related(self):
        # stetter maps exactly, cubs maps related to brewers -> TR per
        # the paper's note that mixed total mappings are total related.
        assert best_mapping(
            ("stetter", "brewers"), ("stetter", "cubs"), SIGMA
        ).kind == MappingKind.TOTAL_RELATED

    def test_none_targets_cannot_map(self):
        mapping = best_mapping(("stetter",), (None, None), SIGMA)
        assert mapping.kind == MappingKind.IRRELEVANT

    def test_injectivity(self):
        mapping = best_mapping(("stetter", "santo"), ("stetter",), SIGMA)
        targets = list(mapping.assignment.values())
        assert len(targets) == len(set(targets))

    def test_total_score(self):
        mapping = best_mapping(self.T1, self.T1, SIGMA)
        assert mapping.total_score == pytest.approx(2.0)
        assert mapping.is_total()


class TestAxiom1:
    """Total exact mappings outrank everything that is not total exact."""

    def test_te_beats_tr(self):
        te = score(("stetter", "brewers"), ("stetter", "brewers"))
        tr = score(("stetter", "brewers"), ("santo", "cubs"))
        assert te == 1.0
        assert te > tr

    def test_te_beats_pe(self):
        te = score(("stetter", "brewers"), ("stetter", "brewers"))
        pe = score(("stetter", "brewers"), ("stetter",))
        assert te > pe

    def test_te_beats_irrelevant(self):
        te = score(("stetter",), ("stetter",))
        ir = score(("stetter",), (None,))
        assert te > ir


class TestAxiom2:
    """Larger exact mappings dominate mappings over fewer entities."""

    def test_two_exact_beats_one_exact(self):
        both = score(("stetter", "brewers"), ("stetter", "brewers", "chicago"))
        one = score(("stetter", "brewers"), ("stetter", "milwaukee"))
        # "stetter, milwaukee" maps stetter exactly, brewers only weakly.
        assert both >= one

    def test_exact_superset_dominates(self):
        larger = score(("stetter", "brewers", "milwaukee"),
                       ("stetter", "brewers", "milwaukee"))
        smaller = score(("stetter", "brewers", "milwaukee"),
                        ("stetter", "brewers"))
        assert larger >= smaller


class TestAxiom3:
    """Pointwise higher similarity implies a strictly higher score."""

    @given(
        st.lists(st.floats(0.0, 0.99), min_size=1, max_size=6),
        st.data(),
    )
    def test_monotone_in_coordinates(self, base, data):
        bumped = [
            data.draw(st.floats(min_value=min(x + 1e-6, 1.0), max_value=1.0))
            for x in base
        ]
        entities = [f"e{i}" for i in range(len(base))]
        low = semrel_tuple_score(entities, base, UNIFORM)
        high = semrel_tuple_score(entities, bumped, UNIFORM)
        assert high > low

    def test_concrete(self):
        related = score(("stetter", "brewers"), ("santo", "cubs"))
        weaker = score(("stetter", "brewers"), ("streep", "milwaukee"))
        assert related > weaker

"""Tests for batched search, CSV directory export, and report writing."""

import pytest

from repro.core import Query, ResultSet, ScoredTable, TableSearchEngine
from repro.datalake import load_lake_csv_dir, save_lake_csv_dir
from repro.eval import ExperimentRunner, GroundTruth, compare_systems
from repro.eval.report import report_to_markdown, write_markdown_report
from repro.similarity import TypeJaccardSimilarity


class TestSearchMany:
    @pytest.fixture()
    def engine(self, sports_lake, sports_mapping, sports_graph):
        return TableSearchEngine(
            sports_lake, sports_mapping, TypeJaccardSimilarity(sports_graph)
        )

    def test_matches_individual_searches(self, engine):
        queries = {
            "a": Query.single("kg:player0", "kg:team0"),
            "b": Query.single("kg:player9"),
            "c": Query([("kg:player1",), ("kg:city2",)]),
        }
        batched = engine.search_many(queries, k=5)
        for query_id, query in queries.items():
            individual = engine.search(query, k=5)
            assert batched[query_id].table_ids() == individual.table_ids()
            for tid in individual.table_ids():
                assert batched[query_id].score_of(tid) == pytest.approx(
                    individual.score_of(tid)
                )

    def test_per_query_candidates(self, engine):
        queries = {
            "restricted": Query.single("kg:player0"),
            "free": Query.single("kg:player0"),
        }
        results = engine.search_many(
            queries, k=10, candidates={"restricted": ["T01", "T02"]}
        )
        assert set(results["restricted"].table_ids()) <= {"T01", "T02"}
        assert len(results["free"]) == 10

    def test_empty_batch(self, engine):
        assert engine.search_many({}) == {}


class TestCsvDirExport:
    def test_round_trip(self, sports_lake, tmp_path):
        save_lake_csv_dir(sports_lake, tmp_path / "lake")
        loaded = load_lake_csv_dir(tmp_path / "lake")
        assert set(loaded.table_ids()) == set(sports_lake.table_ids())
        original = sports_lake.get("T00")
        restored = loaded.get("T00")
        assert restored.attributes == original.attributes
        assert restored.rows == original.rows

    def test_rejects_path_separator_ids(self, tmp_path):
        from repro.datalake import DataLake, Table

        lake = DataLake([Table("bad/id", ["A"], [["x"]])])
        with pytest.raises(ValueError):
            save_lake_csv_dir(lake, tmp_path / "lake")

    def test_creates_directory(self, sports_lake, tmp_path):
        target = tmp_path / "deeply" / "nested"
        save_lake_csv_dir(sports_lake, target)
        assert (target / "T00.csv").exists()


class TestMarkdownReport:
    def _reports(self):
        queries = {"q1": Query.single("kg:a")}
        truths = {"q1": GroundTruth({"T1": 3.0})}
        runner = ExperimentRunner(queries, truths)

        def good(query, k):
            return ResultSet([ScoredTable(1.0, "T1")])

        def bad(query, k):
            return ResultSet([ScoredTable(1.0, "X")])

        return {
            "good": runner.run_system("good", good, 5),
            "bad": runner.run_system("bad", bad, 5),
        }

    def test_markdown_structure(self):
        reports = self._reports()
        comparisons = {
            # 8 one-sided pairs: enough for the permutation test to
            # reach p < 0.05 (the floor is 1/2^(n-1)).
            "good vs bad": compare_systems(
                [1.0, 0.9, 0.95, 0.92, 0.97, 0.88, 0.94, 0.91],
                [0.1, 0.2, 0.15, 0.12, 0.18, 0.11, 0.16, 0.13],
            ),
        }
        text = report_to_markdown(
            "My experiment", reports, comparisons,
            notes=["seed 17", "2000 tables"],
        )
        assert text.startswith("# My experiment")
        assert "> seed 17" in text
        assert "| good | 5 | 1.000 |" in text
        assert "| bad | 5 | 0.000 |" in text
        assert "## Paired comparisons" in text
        assert "| good vs bad |" in text
        assert "yes |" in text

    def test_write_to_file(self, tmp_path):
        path = write_markdown_report(
            tmp_path / "report.md", "T", self._reports()
        )
        content = path.read_text()
        assert "# T" in content
        assert "## NDCG distributions" in content

    def test_no_comparisons_section_when_absent(self):
        text = report_to_markdown("T", self._reports())
        assert "Paired comparisons" not in text

"""Round-trip tests for table/lake persistence."""

import pytest

from repro.datalake import (
    DataLake,
    Table,
    lake_from_dict,
    lake_to_dict,
    load_lake,
    load_lake_csv_dir,
    load_table_csv,
    save_lake,
    save_table_csv,
)


@pytest.fixture()
def table():
    return Table(
        "players",
        ["Player", "Team", "Avg", "Year"],
        [
            ["Ron Santo", "Chicago Cubs", 0.277, 1970],
            ["Mitch Stetter", "Milwaukee Brewers", None, 2009],
        ],
        metadata={"caption": "batting"},
    )


class TestCsv:
    def test_round_trip_types(self, tmp_path, table):
        path = tmp_path / "players.csv"
        save_table_csv(table, path)
        loaded = load_table_csv(path)
        assert loaded.table_id == "players"
        assert loaded.attributes == table.attributes
        assert loaded.rows[0] == ("Ron Santo", "Chicago Cubs", 0.277, 1970)
        assert loaded.rows[1][2] is None  # null survives

    def test_explicit_table_id(self, tmp_path, table):
        path = tmp_path / "anything.csv"
        save_table_csv(table, path)
        assert load_table_csv(path, table_id="custom").table_id == "custom"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_table_csv(path)

    def test_csv_directory_load(self, tmp_path, table):
        save_table_csv(table, tmp_path / "b.csv")
        save_table_csv(
            Table("x", ["A"], [["v"]]), tmp_path / "a.csv"
        )
        lake = load_lake_csv_dir(tmp_path)
        # Sorted file order, ids from stems.
        assert lake.table_ids() == ["a", "b"]


class TestJsonBundle:
    def test_lake_round_trip(self, tmp_path, table):
        lake = DataLake([table, Table("t2", ["X"], [[1], [None]])])
        path = tmp_path / "lake.json"
        save_lake(lake, path)
        loaded = load_lake(path)
        assert loaded.table_ids() == ["players", "t2"]
        assert loaded.get("players").metadata == {"caption": "batting"}
        assert loaded.get("t2").rows == [(1,), (None,)]

    def test_dict_round_trip(self, table):
        lake = DataLake([table])
        clone = lake_from_dict(lake_to_dict(lake))
        assert clone.get("players").rows == table.rows

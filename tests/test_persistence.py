"""Round-trip tests for mapping and LSEI persistence."""

import pytest

from repro.core import Query
from repro.linking import (
    EntityMapping,
    load_mapping,
    mapping_from_dict,
    mapping_to_dict,
    save_mapping,
)
from repro.lsh import LSHConfig, TablePrefilter, TypeSignatureScheme


class TestMappingPersistence:
    def test_dict_round_trip(self, sports_mapping):
        clone = mapping_from_dict(mapping_to_dict(sports_mapping))
        assert dict(clone.all_links()) == dict(sports_mapping.all_links())

    def test_file_round_trip(self, sports_mapping, tmp_path):
        path = tmp_path / "mapping.json"
        save_mapping(sports_mapping, path)
        loaded = load_mapping(path)
        assert len(loaded) == len(sports_mapping)
        assert loaded.tables_with_entity("kg:player0") == \
            sports_mapping.tables_with_entity("kg:player0")

    def test_empty_mapping(self, tmp_path):
        path = tmp_path / "empty.json"
        save_mapping(EntityMapping(), path)
        assert len(load_mapping(path)) == 0


class TestPrefilterPersistence:
    @pytest.fixture()
    def built(self, sports_graph, sports_mapping):
        scheme = TypeSignatureScheme(sports_graph, 32, seed=7)
        prefilter = TablePrefilter(
            scheme, LSHConfig(32, 8), sports_mapping
        )
        return scheme, prefilter

    def test_round_trip_preserves_candidates(self, built, sports_graph,
                                             sports_mapping, tmp_path):
        scheme, prefilter = built
        path = tmp_path / "lsei.json"
        prefilter.save(path)
        # Reload with an *equivalent* scheme (same seed and width).
        loaded = TablePrefilter.load(
            path, TypeSignatureScheme(sports_graph, 32, seed=7),
            sports_mapping,
        )
        for query in (
            Query.single("kg:player0", "kg:team0"),
            Query.single("kg:city1"),
        ):
            assert loaded.candidate_tables(query) == \
                prefilter.candidate_tables(query)
            assert loaded.candidate_tables(query, votes=3) == \
                prefilter.candidate_tables(query, votes=3)

    def test_round_trip_preserves_structure(self, built, sports_graph,
                                            sports_mapping, tmp_path):
        scheme, prefilter = built
        path = tmp_path / "lsei.json"
        prefilter.save(path)
        loaded = TablePrefilter.load(
            path, TypeSignatureScheme(sports_graph, 32, seed=7),
            sports_mapping,
        )
        assert loaded.num_indexed_keys() == prefilter.num_indexed_keys()
        assert loaded.indexed_tables == prefilter.indexed_tables
        assert loaded.config == prefilter.config

    def test_loaded_index_supports_dynamic_updates(self, built,
                                                   sports_graph,
                                                   sports_mapping,
                                                   tmp_path):
        scheme, prefilter = built
        path = tmp_path / "lsei.json"
        prefilter.save(path)
        loaded = TablePrefilter.load(
            path, TypeSignatureScheme(sports_graph, 32, seed=7),
            sports_mapping,
        )
        loaded.remove_table("T00")
        assert "T00" not in loaded.candidate_tables(
            Query.single("kg:player0")
        )

    def test_column_aggregation_flag_round_trips(self, sports_graph,
                                                 sports_mapping, tmp_path):
        scheme = TypeSignatureScheme(sports_graph, 32, seed=7)
        prefilter = TablePrefilter(
            scheme, LSHConfig(32, 8), sports_mapping,
            column_aggregation=True,
        )
        path = tmp_path / "lsei.json"
        prefilter.save(path)
        loaded = TablePrefilter.load(path, scheme, sports_mapping)
        assert loaded.column_aggregation is True
        assert loaded.num_indexed_keys() == prefilter.num_indexed_keys()


class TestQuerySetPersistence:
    def test_round_trip(self, small_benchmark, tmp_path):
        from repro.benchgen import load_queries, save_queries

        path = tmp_path / "queries.json"
        save_queries(small_benchmark.queries, path)
        loaded = load_queries(path)
        original = small_benchmark.queries
        assert set(loaded.one_tuple) == set(original.one_tuple)
        assert set(loaded.five_tuple) == set(original.five_tuple)
        for qid, query in original.all_queries().items():
            assert loaded.all_queries()[qid] == query
        assert loaded.categories == original.categories
        assert loaded.domains == original.domains

    def test_dict_round_trip(self, small_benchmark):
        from repro.benchgen import queries_from_dict, queries_to_dict

        clone = queries_from_dict(queries_to_dict(small_benchmark.queries))
        assert len(clone) == len(small_benchmark.queries)

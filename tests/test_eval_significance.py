"""Tests for paired significance machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    bootstrap_ci,
    compare_systems,
    permutation_test,
)
from repro.exceptions import ConfigurationError


class TestPermutationTest:
    def test_identical_systems_not_significant(self):
        values = [0.5, 0.6, 0.7, 0.8]
        assert permutation_test(values, values) == 1.0

    def test_clearly_better_system_significant(self):
        rng = np.random.default_rng(0)
        base = rng.uniform(0.2, 0.4, size=30)
        better = base + 0.3 + rng.normal(0, 0.01, size=30)
        assert permutation_test(better.tolist(), base.tolist()) < 0.01

    def test_symmetry(self):
        a = [0.9, 0.8, 0.7, 0.95, 0.85]
        b = [0.5, 0.6, 0.4, 0.55, 0.45]
        assert permutation_test(a, b) == pytest.approx(
            permutation_test(b, a)
        )

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            permutation_test([1.0], [1.0, 2.0])

    def test_empty_input(self):
        with pytest.raises(ConfigurationError):
            permutation_test([], [])

    @given(st.lists(st.floats(0, 1), min_size=2, max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_p_value_in_range(self, values):
        shifted = [v * 0.9 for v in values]
        p = permutation_test(values, shifted, iterations=200)
        assert 0.0 < p <= 1.0


class TestBootstrapCI:
    def test_interval_contains_zero_for_identical(self):
        values = [0.5, 0.6, 0.7]
        low, high = bootstrap_ci(values, values)
        assert low == high == 0.0

    def test_interval_ordering(self):
        rng = np.random.default_rng(1)
        a = rng.uniform(0, 1, 25).tolist()
        b = rng.uniform(0, 1, 25).tolist()
        low, high = bootstrap_ci(a, b)
        assert low <= high

    def test_clear_difference_excludes_zero(self):
        a = [0.8, 0.9, 0.85, 0.95, 0.9, 0.88]
        b = [0.1, 0.2, 0.15, 0.25, 0.2, 0.18]
        low, high = bootstrap_ci(a, b)
        assert low > 0.0

    def test_invalid_confidence(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0], [0.5], confidence=1.5)


class TestCompareSystems:
    def test_full_report(self):
        # n=8 one-sided wins: the permutation test can reach p < 0.05
        # (with n=5 the floor is 1/2^4 = 0.0625).
        a = [0.9, 0.8, 0.85, 0.95, 0.9, 0.88, 0.92, 0.87]
        b = [0.5, 0.4, 0.45, 0.55, 0.5, 0.48, 0.52, 0.47]
        result = compare_systems(a, b)
        assert result.mean_difference == pytest.approx(0.4)
        assert result.significant
        assert result.ci_low <= result.mean_difference <= result.ci_high

    def test_insignificant_noise(self):
        rng = np.random.default_rng(2)
        a = rng.uniform(0, 1, 10)
        b = a + rng.normal(0, 0.001, 10)  # negligible difference
        result = compare_systems(a.tolist(), b.tolist(), iterations=2000)
        assert abs(result.mean_difference) < 0.01

    def test_format_row(self):
        result = compare_systems([0.9, 0.95], [0.1, 0.15])
        row = result.format_row("STST vs BM25")
        assert "STST vs BM25" in row
        assert "p=" in row


class TestPlots:
    def test_box_plot_row_width_and_markers(self):
        from repro.eval import box_plot_row

        row = box_plot_row([0.1, 0.4, 0.5, 0.6, 0.9], width=40)
        assert len(row) == 40
        for marker in "|[]#":
            assert marker in row

    def test_box_plot_row_empty(self):
        from repro.eval import box_plot_row

        assert box_plot_row([], width=10) == " " * 10

    def test_box_plot_single_value(self):
        from repro.eval import box_plot_row

        row = box_plot_row([0.5], width=20)
        assert "#" in row

    def test_box_plot_figure(self):
        from repro.eval import box_plot_figure

        figure = box_plot_figure(
            {"STST": [0.8, 0.9, 0.85], "BM25": [0.5, 0.6, 0.55]},
            title="NDCG@10",
        )
        assert "NDCG@10" in figure
        assert "STST" in figure and "BM25" in figure
        assert "med=" in figure

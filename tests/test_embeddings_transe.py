"""Tests for the TransE trainer."""

import numpy as np
import pytest

from repro.embeddings import EmbeddingStore
from repro.embeddings.transe import TransEConfig, TransETrainer, train_transe
from repro.exceptions import ConfigurationError, EmbeddingError
from repro.kg import Entity, KnowledgeGraph


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TransEConfig(dimensions=0)
        with pytest.raises(ConfigurationError):
            TransEConfig(margin=0.0)
        with pytest.raises(ConfigurationError):
            TransEConfig(epochs=0)


class TestTraining:
    def test_edgeless_graph_rejected(self):
        graph = KnowledgeGraph()
        graph.add_entity(Entity("kg:a"))
        with pytest.raises(EmbeddingError):
            train_transe(graph, epochs=1)

    def test_returns_store_with_all_entities(self, sports_graph):
        store = train_transe(sports_graph, dimensions=8, epochs=2, seed=0)
        assert isinstance(store, EmbeddingStore)
        assert store.dimensions == 8
        for uri in sports_graph.uris():
            assert uri in store

    def test_entities_within_unit_ball_after_training(self, sports_graph):
        store = train_transe(sports_graph, dimensions=8, epochs=3, seed=0)
        matrix = store.matrix()
        # Last renorm happens at epoch start; updates within an epoch
        # can push slightly past 1 before the margin loss saturates.
        assert np.linalg.norm(matrix, axis=1).max() < 2.0

    def test_determinism(self, sports_graph):
        a = train_transe(sports_graph, dimensions=8, epochs=2, seed=4)
        b = train_transe(sports_graph, dimensions=8, epochs=2, seed=4)
        assert np.allclose(a.vector("kg:player0"), b.vector("kg:player0"))

    def test_translation_structure_learned(self, sports_graph):
        """h + r should land nearer its true tail than a random entity."""
        config = TransEConfig(dimensions=24, epochs=120,
                              learning_rate=0.05, seed=0)
        trainer = TransETrainer(sports_graph, config)
        store = trainer.train()
        # Re-derive the relation vector implicitly: compare distances of
        # (player + ?) vs teams using pair statistics instead - simply
        # check players land closer to their own team than to a city.
        wins = 0
        total = 0
        for i in range(16):
            player = store.vector(f"kg:player{i}")
            own_team = store.vector(f"kg:team{i % 8}")
            other_city = store.vector(f"kg:city{(i + 2) % 4}")
            if np.linalg.norm(player - own_team) < \
                    np.linalg.norm(player - other_city):
                wins += 1
            total += 1
        assert wins / total > 0.5

    def test_plugs_into_similarity_and_search(self, sports_graph,
                                              sports_lake, sports_mapping):
        from repro.core import Query, TableSearchEngine
        from repro.similarity import EmbeddingCosineSimilarity

        store = train_transe(sports_graph, dimensions=16, epochs=10, seed=1)
        engine = TableSearchEngine(
            sports_lake, sports_mapping, EmbeddingCosineSimilarity(store)
        )
        results = engine.search(Query.single("kg:player0", "kg:team0"),
                                k=5)
        assert len(results) == 5
        # The exact-match table must reach the top (identity sim = 1).
        assert results.table_ids()[0] in ("T00", "T06", "T08")

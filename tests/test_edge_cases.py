"""Edge-case battery across the stack.

Degenerate lakes, unicode mentions, duplicate query entities, width
extremes — situations a production deployment meets on day one.
"""

import pytest

from repro.core import Query, TableSearchEngine, topk_search
from repro.datalake import (
    DataLake,
    Table,
    load_table_csv,
    save_table_csv,
)
from repro.kg import Entity, KnowledgeGraph
from repro.linking import EntityMapping, LabelLinker
from repro.lsh import LSHConfig, TablePrefilter, TypeSignatureScheme
from repro.similarity import TypeJaccardSimilarity


class TestEmptyAndTinyCorpora:
    def test_search_on_empty_lake(self, sports_graph):
        engine = TableSearchEngine(
            DataLake(), EntityMapping(), TypeJaccardSimilarity(sports_graph)
        )
        results = engine.search(Query.single("kg:player0"))
        assert len(results) == 0

    def test_topk_on_empty_lake(self, sports_graph):
        engine = TableSearchEngine(
            DataLake(), EntityMapping(), TypeJaccardSimilarity(sports_graph)
        )
        assert len(topk_search(engine, Query.single("kg:player0"), 5)) == 0

    def test_prefilter_on_empty_mapping(self, sports_graph):
        prefilter = TablePrefilter(
            TypeSignatureScheme(sports_graph, 16),
            LSHConfig(16, 8),
            EntityMapping(),
        )
        assert prefilter.candidate_tables(Query.single("kg:player0")) == \
            set()

    def test_single_table_lake(self, sports_graph):
        lake = DataLake([Table("only", ["P"], [["Player 0"]])])
        mapping = LabelLinker(sports_graph).link_lake(lake)
        engine = TableSearchEngine(
            lake, mapping, TypeJaccardSimilarity(sports_graph)
        )
        results = engine.search(Query.single("kg:player0"))
        assert results.table_ids() == ["only"]
        assert results.score_of("only") == pytest.approx(1.0)

    def test_zero_row_table_is_irrelevant(self, sports_graph):
        lake = DataLake([Table("empty", ["P"], [])])
        engine = TableSearchEngine(
            lake, EntityMapping(), TypeJaccardSimilarity(sports_graph)
        )
        assert len(engine.search(Query.single("kg:player0"))) == 0

    def test_all_numeric_table_never_linked(self, sports_graph):
        lake = DataLake([Table("nums", ["A", "B"], [[1, 2.5], [3, 4.5]])])
        mapping = LabelLinker(sports_graph).link_lake(lake)
        assert len(mapping) == 0


class TestUnicodeAndOddMentions:
    @pytest.fixture()
    def unicode_graph(self):
        graph = KnowledgeGraph()
        graph.add_entity(
            Entity("kg:zlatan", "Žlåtan Ibrahimović",
                   frozenset({"Person"}))
        )
        graph.add_entity(
            Entity("kg:tokyo", "東京", frozenset({"City"}))
        )
        return graph

    def test_unicode_labels_link_exactly(self, unicode_graph):
        linker = LabelLinker(unicode_graph)
        assert linker.link_value("Žlåtan Ibrahimović") == "kg:zlatan"
        assert linker.link_value("東京") == "kg:tokyo"

    def test_unicode_survives_csv(self, unicode_graph, tmp_path):
        table = Table("u", ["Name"], [["Žlåtan Ibrahimović"], ["東京"]])
        path = tmp_path / "u.csv"
        save_table_csv(table, path)
        loaded = load_table_csv(path)
        assert loaded.rows == table.rows

    def test_unicode_end_to_end_search(self, unicode_graph):
        lake = DataLake(
            [Table("u", ["Name"], [["Žlåtan Ibrahimović"]])]
        )
        mapping = LabelLinker(unicode_graph).link_lake(lake)
        engine = TableSearchEngine(
            lake, mapping, TypeJaccardSimilarity(unicode_graph)
        )
        results = engine.search(Query.single("kg:zlatan"))
        assert results.table_ids() == ["u"]


class TestQueryExtremes:
    def test_duplicate_entities_in_tuple(self, sports_lake, sports_mapping,
                                         sports_graph):
        engine = TableSearchEngine(
            sports_lake, sports_mapping, TypeJaccardSimilarity(sports_graph)
        )
        # The same entity twice: injectivity forces two different
        # columns, so the duplicate maps weakly - no crash, sane score.
        query = Query.single("kg:player0", "kg:player0")
        results = engine.search(query, k=3)
        assert len(results) == 3
        assert all(0.0 < st.score <= 1.0 for st in results)

    def test_query_wider_than_any_table(self, sports_lake, sports_mapping,
                                        sports_graph):
        engine = TableSearchEngine(
            sports_lake, sports_mapping, TypeJaccardSimilarity(sports_graph)
        )
        wide = Query.single(*[f"kg:player{i}" for i in range(10)])
        results = engine.search(wide, k=3)
        assert len(results) == 3
        # With only 4 entity-bearing columns, at most 4 of 10 query
        # entities can map: the score is far from perfect.
        assert results.top(1).table_ids()  # non-empty
        assert max(st.score for st in results) < 0.9

    def test_many_tuples_query(self, sports_lake, sports_mapping,
                               sports_graph):
        engine = TableSearchEngine(
            sports_lake, sports_mapping, TypeJaccardSimilarity(sports_graph)
        )
        query = Query([(f"kg:player{i}",) for i in range(20)])
        results = engine.search(query, k=5)
        assert len(results) == 5

    def test_query_of_unlinked_entity(self, sports_lake, sports_mapping,
                                      sports_graph):
        # city3 entities exist in the KG and tables; an entity that is
        # in the KG but never linked anywhere behaves like a pure
        # semantic probe.
        graph = sports_graph
        engine = TableSearchEngine(
            sports_lake, sports_mapping, TypeJaccardSimilarity(graph)
        )
        # kg:team7 is linked; use a query mixing linked + never-linked.
        query = Query.single("kg:team7", "kg:ghost-entity")
        results = engine.search(query, k=3)
        assert len(results) == 3


class TestMetadataEdgeCases:
    def test_table_with_no_metadata_still_searchable(self, sports_graph):
        from repro.baselines import BM25TableSearch

        lake = DataLake([Table("t", ["P"], [["Player 0"]])])
        bm25 = BM25TableSearch(lake)
        assert bm25.search(["player"]).table_ids() == ["t"]

    def test_ground_truth_without_category_metadata(self, sports_graph):
        from repro.eval import build_ground_truth

        lake = DataLake([Table("t", ["P"], [["Player 0"]])])
        mapping = LabelLinker(sports_graph).link_lake(lake)
        truth = build_ground_truth(
            lake, mapping, Query.single("kg:player0"),
            query_category="whatever/topic", query_domain="whatever",
        )
        # No metadata on the table: only the entity component fires.
        assert truth.gain("t") == pytest.approx(2.0)

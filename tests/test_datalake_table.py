"""Unit tests for the table model."""

import pytest

from repro.datalake import Table
from repro.exceptions import DataLakeError


@pytest.fixture()
def table():
    return Table(
        "T1",
        ["Player", "Team", "Year"],
        [
            ["Tony Giarratano", "Detroit Tigers", 2005],
            ["Ron Santo", "Chicago Cubs", None],
            [None, "Chicago Cubs", 1970],
        ],
        metadata={"caption": "Players"},
    )


class TestConstruction:
    def test_requires_id_and_attributes(self):
        with pytest.raises(DataLakeError):
            Table("", ["A"], [])
        with pytest.raises(DataLakeError):
            Table("T", [], [])

    def test_rejects_duplicate_attributes(self):
        with pytest.raises(DataLakeError):
            Table("T", ["A", "A"], [])

    def test_rejects_ragged_rows(self):
        with pytest.raises(DataLakeError) as exc:
            Table("T", ["A", "B"], [["x"]])
        assert "row 0" in str(exc.value)

    def test_empty_table_allowed(self):
        table = Table("T", ["A"], [])
        assert table.num_rows == 0
        assert table.num_cells == 0

    def test_metadata_copied(self):
        meta = {"caption": "x"}
        table = Table("T", ["A"], [], metadata=meta)
        meta["caption"] = "mutated"
        assert table.metadata["caption"] == "x"


class TestShapeAndAccess:
    def test_shape(self, table):
        assert table.num_rows == 3
        assert table.num_columns == 3
        assert table.num_cells == 9
        assert len(table) == 3

    def test_iteration(self, table):
        rows = list(table)
        assert rows[0][0] == "Tony Giarratano"

    def test_cell(self, table):
        assert table.cell(1, 1) == "Chicago Cubs"
        assert table.cell(1, 2) is None
        with pytest.raises(DataLakeError):
            table.cell(5, 0)

    def test_column_access(self, table):
        assert table.column(2) == [2005, None, 1970]
        assert table.column_by_name("Team") == [
            "Detroit Tigers", "Chicago Cubs", "Chicago Cubs",
        ]
        with pytest.raises(DataLakeError):
            table.column(9)
        with pytest.raises(DataLakeError):
            table.column_by_name("Nope")

    def test_column_index(self, table):
        assert table.column_index("Year") == 2


class TestTextView:
    def test_text_values_skip_nulls_include_metadata(self, table):
        texts = table.text_values()
        assert "Tony Giarratano" in texts
        assert "2005" in texts
        assert "Players" in texts
        assert None not in texts
        assert len(texts) == 7 + 1  # 7 non-null cells + 1 metadata value

    def test_non_null_cells(self, table):
        assert table.non_null_cells() == 7

    def test_repr(self, table):
        assert "3 rows x 3 cols" in repr(table)

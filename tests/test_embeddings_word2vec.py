"""Tests for the from-scratch skip-gram implementation."""

import numpy as np
import pytest

from repro.embeddings import SkipGramModel, Vocabulary
from repro.exceptions import ConfigurationError, EmbeddingError


def _cosine(a, b):
    return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))


@pytest.fixture(scope="module")
def cluster_corpus():
    """Two token clusters that co-occur internally but never across."""
    rng = np.random.default_rng(0)
    sentences = []
    for _ in range(300):
        group = ["a1", "a2", "a3"] if rng.random() < 0.5 else ["b1", "b2", "b3"]
        sentences.append(list(rng.permutation(group)))
    return sentences


class TestVocabulary:
    def test_indexing(self):
        vocab = Vocabulary([["x", "y"], ["y", "z"]])
        assert len(vocab) == 3
        assert "y" in vocab
        assert vocab.encode(["x", "missing", "z"]) == [
            vocab.index["x"], vocab.index["z"],
        ]

    def test_min_count_filters(self):
        vocab = Vocabulary([["x", "x", "y"]], min_count=2)
        assert "x" in vocab
        assert "y" not in vocab

    def test_empty_vocabulary_rejected(self):
        with pytest.raises(EmbeddingError):
            Vocabulary([["x"]], min_count=5)

    def test_negative_distribution_sums_to_one(self):
        vocab = Vocabulary([["x", "x", "x", "y"]])
        dist = vocab.negative_sampling_distribution()
        assert abs(dist.sum() - 1.0) < 1e-12
        # x is more frequent, so it gets more negative-sampling mass.
        assert dist[vocab.index["x"]] > dist[vocab.index["y"]]


class TestSkipGramModel:
    def test_parameter_validation(self):
        for kwargs in ({"dimensions": 0}, {"window": 0}, {"negative": 0},
                       {"epochs": 0}):
            with pytest.raises(ConfigurationError):
                SkipGramModel(**kwargs)

    def test_untrained_access_raises(self):
        model = SkipGramModel()
        with pytest.raises(EmbeddingError):
            model.vector("x")
        with pytest.raises(EmbeddingError):
            model.vectors()

    def test_short_sentences_rejected(self):
        model = SkipGramModel()
        with pytest.raises(EmbeddingError):
            model.train([["only"]])

    def test_vector_shapes(self, cluster_corpus):
        model = SkipGramModel(dimensions=12, epochs=1, seed=0)
        model.train(cluster_corpus)
        assert model.vector("a1").shape == (12,)
        assert len(model.vectors()) == 6

    def test_oov_vector_raises(self, cluster_corpus):
        model = SkipGramModel(dimensions=8, epochs=1).train(cluster_corpus)
        with pytest.raises(EmbeddingError):
            model.vector("zzz")

    def test_clusters_separate(self, cluster_corpus):
        model = SkipGramModel(dimensions=16, epochs=5, learning_rate=0.1,
                              seed=0)
        model.train(cluster_corpus)
        within = _cosine(model.vector("a1"), model.vector("a2"))
        across = _cosine(model.vector("a1"), model.vector("b1"))
        assert within > across

    def test_determinism(self, cluster_corpus):
        m1 = SkipGramModel(dimensions=8, epochs=1, seed=7).train(cluster_corpus)
        m2 = SkipGramModel(dimensions=8, epochs=1, seed=7).train(cluster_corpus)
        assert np.allclose(m1.vector("a1"), m2.vector("a1"))

    def test_different_seeds_differ(self, cluster_corpus):
        m1 = SkipGramModel(dimensions=8, epochs=1, seed=1).train(cluster_corpus)
        m2 = SkipGramModel(dimensions=8, epochs=1, seed=2).train(cluster_corpus)
        assert not np.allclose(m1.vector("a1"), m2.vector("a1"))


class TestSubsampling:
    def test_negative_subsample_rejected(self):
        with pytest.raises(ConfigurationError):
            SkipGramModel(subsample=-0.1)

    def test_subsampling_drops_frequent_tokens(self):
        rng = np.random.default_rng(0)
        # 'the' dominates the corpus; content tokens are rare.
        sentences = [
            ["the", f"w{rng.integers(50)}", "the", f"w{rng.integers(50)}"]
            for _ in range(400)
        ]
        model = SkipGramModel(dimensions=4, epochs=1, subsample=1e-3,
                              seed=0)
        model.vocabulary = Vocabulary(sentences)
        encoded = [model.vocabulary.encode(s) for s in sentences]
        kept = model._subsample(encoded, np.random.default_rng(1))
        the_index = model.vocabulary.index["the"]
        before = sum(s.count(the_index) for s in encoded)
        after = sum(s.count(the_index) for s in kept)
        assert after < before * 0.7

    def test_subsampled_training_still_works(self):
        sentences = [["a", "b", "c"]] * 200
        model = SkipGramModel(dimensions=4, epochs=1, subsample=1e-2,
                              seed=0)
        model.train(sentences)
        assert model.vector("a").shape == (4,)

    def test_zero_subsample_is_identity(self, cluster_corpus):
        plain = SkipGramModel(dimensions=4, epochs=1, seed=3)
        explicit = SkipGramModel(dimensions=4, epochs=1, subsample=0.0,
                                 seed=3)
        plain.train(cluster_corpus)
        explicit.train(cluster_corpus)
        assert np.allclose(plain.vector("a1"), explicit.vector("a1"))

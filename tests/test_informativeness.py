"""Tests for the informativeness weighting I(e) of Section 5.2."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.similarity import (
    Informativeness,
    UniformInformativeness,
    informativeness_or_uniform,
)


class TestInformativeness:
    def test_rare_entities_weigh_more(self):
        info = Informativeness({"rare": 1, "common": 90}, num_tables=100)
        assert info("rare") > info("common")

    def test_weight_bounds(self):
        info = Informativeness({"a": 1, "b": 50, "c": 100}, num_tables=100)
        for uri in ("a", "b", "c"):
            assert 0.0 < info(uri) <= 1.0

    def test_single_table_entity_gets_full_weight(self):
        info = Informativeness({"a": 1}, num_tables=100)
        assert info("a") == pytest.approx(1.0)

    def test_unseen_entity_defaults_to_one(self):
        info = Informativeness({"a": 5}, num_tables=10)
        assert info("never-seen") == 1.0

    def test_frequency_clamped_to_corpus_size(self):
        info = Informativeness({"a": 1000}, num_tables=10)
        assert 0.0 < info("a") <= 1.0

    def test_zero_frequency_treated_as_one(self):
        info = Informativeness({"a": 0}, num_tables=10)
        assert info("a") == pytest.approx(1.0)

    def test_container_protocol(self):
        info = Informativeness({"a": 1}, num_tables=2)
        assert "a" in info
        assert "b" not in info
        assert len(info) == 1

    def test_from_mapping(self, sports_mapping, sports_lake):
        info = Informativeness.from_mapping(sports_mapping, len(sports_lake))
        # Teams appear in more tables than most players -> lower weight.
        assert info("kg:player9") >= info("kg:team0")

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=4),
            st.integers(min_value=1, max_value=500),
            max_size=20,
        ),
        st.integers(min_value=1, max_value=500),
    )
    def test_monotone_in_frequency(self, freqs, num_tables):
        info = Informativeness(freqs, num_tables)
        items = sorted(freqs.items(), key=lambda kv: kv[1])
        for (_, f1), (_, f2) in zip(items, items[1:]):
            assert f1 <= f2
        weights = [info(uri) for uri, _ in items]
        for w1, w2 in zip(weights, weights[1:]):
            assert w1 >= w2 - 1e-12  # weight non-increasing in frequency


class TestUniform:
    def test_always_one(self):
        uniform = UniformInformativeness()
        assert uniform("anything") == 1.0
        assert uniform.weight("other") == 1.0

    def test_helper_dispatch(self, sports_mapping):
        assert isinstance(
            informativeness_or_uniform(None, 10), UniformInformativeness
        )
        assert isinstance(
            informativeness_or_uniform(sports_mapping, 10), Informativeness
        )

"""Unit tests for random-walk extraction."""

import pytest

from repro.exceptions import ConfigurationError
from repro.kg import Entity, KnowledgeGraph, RandomWalker


@pytest.fixture()
def chain_graph():
    g = KnowledgeGraph()
    for i in range(5):
        g.add_entity(Entity(f"kg:n{i}"))
    for i in range(4):
        g.add_edge(f"kg:n{i}", "next", f"kg:n{i + 1}")
    return g


class TestRandomWalker:
    def test_invalid_parameters(self, chain_graph):
        with pytest.raises(ConfigurationError):
            RandomWalker(chain_graph, walk_length=0)
        with pytest.raises(ConfigurationError):
            RandomWalker(chain_graph, walks_per_entity=0)

    def test_walk_length_bound(self, chain_graph):
        walker = RandomWalker(chain_graph, walk_length=3, undirected=False)
        walk = walker.walk_from("kg:n0")
        assert walk[0] == "kg:n0"
        assert len(walk) <= 4

    def test_directed_walk_follows_edges(self, chain_graph):
        walker = RandomWalker(chain_graph, walk_length=10, undirected=False)
        walk = walker.walk_from("kg:n0")
        # On a directed chain, the only walk is the chain itself.
        assert walk == [f"kg:n{i}" for i in range(5)]

    def test_sink_node_stops_directed_walk(self, chain_graph):
        walker = RandomWalker(chain_graph, walk_length=10, undirected=False)
        assert walker.walk_from("kg:n4") == ["kg:n4"]

    def test_undirected_walk_never_stops_early_on_chain(self, chain_graph):
        walker = RandomWalker(chain_graph, walk_length=6, undirected=True,
                              seed=3)
        walk = walker.walk_from("kg:n4")
        assert len(walk) == 7

    def test_isolated_node_yields_single_token(self):
        g = KnowledgeGraph()
        g.add_entity(Entity("kg:solo"))
        walker = RandomWalker(g, walk_length=5)
        assert walker.walk_from("kg:solo") == ["kg:solo"]

    def test_corpus_size(self, chain_graph):
        walker = RandomWalker(chain_graph, walks_per_entity=3)
        corpus = walker.walks()
        assert len(corpus) == 3 * 5

    def test_corpus_with_seed_subset(self, chain_graph):
        walker = RandomWalker(chain_graph, walks_per_entity=2)
        corpus = walker.walks(seeds=["kg:n1", "kg:n2"])
        assert len(corpus) == 4
        assert all(w[0] in ("kg:n1", "kg:n2") for w in corpus)

    def test_determinism(self, chain_graph):
        a = RandomWalker(chain_graph, seed=42).walks()
        b = RandomWalker(chain_graph, seed=42).walks()
        assert a == b

    def test_different_seeds_differ(self, chain_graph):
        a = RandomWalker(chain_graph, seed=1, walk_length=8).walks()
        b = RandomWalker(chain_graph, seed=2, walk_length=8).walks()
        assert a != b

    def test_predicates_interleaved(self, chain_graph):
        walker = RandomWalker(chain_graph, walk_length=2,
                              include_predicates=True, undirected=False)
        walk = walker.walk_from("kg:n0")
        assert walk == ["kg:n0", "next", "kg:n1", "next", "kg:n2"]

"""Tests for the embedding store and its cosine operations."""

import numpy as np
import pytest

from repro.embeddings import EmbeddingStore
from repro.exceptions import DimensionMismatchError, EmbeddingError


@pytest.fixture()
def store():
    return EmbeddingStore(
        {
            "e1": np.array([1.0, 0.0, 0.0]),
            "e2": np.array([2.0, 0.0, 0.0]),   # same direction as e1
            "e3": np.array([0.0, 1.0, 0.0]),   # orthogonal
            "e4": np.array([-1.0, 0.0, 0.0]),  # opposite
            "e0": np.array([0.0, 0.0, 0.0]),   # zero vector edge case
        }
    )


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(EmbeddingError):
            EmbeddingStore({})

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            EmbeddingStore({"a": np.zeros(3), "b": np.zeros(4)})

    def test_basic_properties(self, store):
        assert len(store) == 5
        assert store.dimensions == 3
        assert "e1" in store and "missing" not in store
        assert set(store.uris()) == {"e0", "e1", "e2", "e3", "e4"}

    def test_matrix_read_only(self, store):
        matrix = store.matrix()
        with pytest.raises(ValueError):
            matrix[0, 0] = 99.0


class TestCosine:
    def test_identity_direction(self, store):
        assert abs(store.cosine("e1", "e2") - 1.0) < 1e-12

    def test_orthogonal(self, store):
        assert abs(store.cosine("e1", "e3")) < 1e-12

    def test_opposite(self, store):
        assert abs(store.cosine("e1", "e4") + 1.0) < 1e-12

    def test_zero_vector_is_safe(self, store):
        assert store.cosine("e0", "e1") == 0.0

    def test_unknown_uri_raises(self, store):
        with pytest.raises(EmbeddingError):
            store.cosine("e1", "nope")
        with pytest.raises(EmbeddingError):
            store.vector("nope")

    def test_cosine_to_all_matches_pairwise(self, store):
        sims = store.cosine_to_all("e1")
        for i, uri in enumerate(store.uris()):
            assert abs(sims[i] - store.cosine("e1", uri)) < 1e-12

    def test_nearest_excludes_self(self, store):
        nearest = store.nearest("e1", top_k=2)
        assert nearest[0][0] == "e2"
        assert all(uri != "e1" for uri, _ in nearest)

    def test_nearest_top_k_bound(self, store):
        assert len(store.nearest("e1", top_k=100)) == 4

    def test_nearest_non_positive_top_k(self, store):
        assert store.nearest("e1", top_k=0) == []
        assert store.nearest("e1", top_k=-3) == []

    def test_nearest_matches_full_sort_reference(self):
        # The argpartition fast path must return exactly what a full
        # sort would, for every k, including tie-heavy inputs (several
        # collinear vectors share a cosine of 1.0; ties break by
        # insertion index).
        rng = np.random.default_rng(123)
        vectors = {f"n{i}": rng.normal(size=6) for i in range(40)}
        for i in range(5):
            vectors[f"dup{i}"] = vectors["n0"] * (i + 2)  # exact ties
        store = EmbeddingStore(vectors)
        uris = store.uris()
        for probe in ("n0", "n17", "dup3"):
            sims = store.cosine_to_all(probe)
            by_rank = sorted(
                range(len(uris)), key=lambda i: (-sims[i], i)
            )
            reference = [
                (uris[i], float(sims[i]))
                for i in by_rank
                if uris[i] != probe
            ]
            for top_k in (1, 3, 10, len(uris) - 1, len(uris) + 5):
                assert store.nearest(probe, top_k=top_k) == \
                    reference[:top_k], (probe, top_k)


class TestAggregation:
    def test_mean_vector(self, store):
        mean = store.mean_vector(["e1", "e3"])
        assert np.allclose(mean, [0.5, 0.5, 0.0])

    def test_mean_vector_skips_unknown(self, store):
        mean = store.mean_vector(["e1", "missing"])
        assert np.allclose(mean, [1.0, 0.0, 0.0])

    def test_mean_vector_all_unknown(self, store):
        assert store.mean_vector(["x", "y"]) is None


class TestPersistence:
    def test_round_trip(self, store, tmp_path):
        path = tmp_path / "embeddings.json"
        store.save(path)
        loaded = EmbeddingStore.load(path)
        assert set(loaded.uris()) == set(store.uris())
        for uri in store.uris():
            assert np.allclose(loaded.vector(uri), store.vector(uri))

"""Tests for SemRel score explanations."""

import pytest

from repro.core import Query, TableSearchEngine, explain_table
from repro.similarity import Informativeness, TypeJaccardSimilarity


@pytest.fixture()
def engine(sports_lake, sports_mapping, sports_graph):
    return TableSearchEngine(
        sports_lake,
        sports_mapping,
        TypeJaccardSimilarity(sports_graph),
        informativeness=Informativeness.from_mapping(
            sports_mapping, len(sports_lake)
        ),
    )


class TestExplainTable:
    def test_score_matches_engine(self, engine, sports_lake):
        """The explanation must reproduce Algorithm 1's score exactly."""
        query = Query.single("kg:player0", "kg:team0", "kg:city0")
        for table_id in ("T00", "T03", "T07"):
            table = sports_lake.get(table_id)
            explanation = explain_table(engine, query, table)
            expected = engine.score_table(query, table).score
            assert explanation.score == pytest.approx(expected)

    def test_multi_tuple_breakdown(self, engine, sports_lake):
        query = Query([("kg:player0", "kg:team0"), ("kg:player9",)])
        explanation = explain_table(engine, query, sports_lake.get("T00"))
        assert len(explanation.tuples) == 2
        assert explanation.tuples[0].query_tuple == ("kg:player0", "kg:team0")
        assert len(explanation.tuples[1].entities) == 1

    def test_exact_match_entity_details(self, engine, sports_lake):
        query = Query.single("kg:player0", "kg:team0")
        explanation = explain_table(engine, query, sports_lake.get("T00"))
        by_entity = {
            e.entity: e for e in explanation.tuples[0].entities
        }
        player = by_entity["kg:player0"]
        assert player.column == 0
        assert player.column_name == "Player"
        assert player.coordinate == pytest.approx(1.0)
        assert player.best_row == 0  # first fixture row holds Player 0
        assert player.best_row_entity == "kg:player0"
        assert player.best_row_similarity == pytest.approx(1.0)
        assert 0.0 < player.weight <= 1.0

    def test_unmappable_entity_reported(self, engine, sports_lake):
        # Width-5 query against 3 entity columns: someone gets no column
        # (Year carries no entities).
        query = Query.single("kg:player0", "kg:player1", "kg:player2",
                             "kg:player3", "kg:player4")
        explanation = explain_table(engine, query, sports_lake.get("T00"))
        entities = explanation.tuples[0].entities
        unassigned_or_zero = [
            e for e in entities if e.column == -1 or e.coordinate == 0.0
        ]
        assert unassigned_or_zero  # the surplus entities carry no signal
        for entity in unassigned_or_zero:
            if entity.column == -1:
                assert entity.column_name is None
                assert entity.best_row == -1
                assert entity.best_row_entity is None

    def test_distance_consistent_with_score(self, engine, sports_lake):
        query = Query.single("kg:player5", "kg:team5")
        explanation = explain_table(engine, query, sports_lake.get("T01"))
        for tup in explanation.tuples:
            assert tup.score == pytest.approx(1.0 / (tup.distance + 1.0))

    def test_render_with_and_without_graph(self, engine, sports_lake,
                                           sports_graph):
        query = Query.single("kg:player0", "kg:team0")
        explanation = explain_table(engine, query, sports_lake.get("T00"))
        plain = explanation.render()
        labeled = explanation.render(sports_graph)
        assert "T00" in plain
        assert "kg:player0" in plain
        assert "Player 0" in labeled
        assert "SemRel" in labeled

    def test_facade_explain(self, sports_lake, sports_mapping, sports_graph):
        from repro import Thetis

        thetis = Thetis(sports_lake, sports_graph, sports_mapping)
        query = Query.single("kg:player0", "kg:team0")
        explanation = thetis.explain(query, "T00")
        assert explanation.table_id == "T00"
        assert explanation.score == pytest.approx(
            thetis.search(query, k=1).score_of("T00")
        )

"""End-to-end tests for the HTTP serving layer.

Each test boots a real :class:`~repro.serve.server.ServerThread` on an
ephemeral port over a private copy of the sports corpus and talks to it
with plain ``http.client`` — the same wire a production client uses.
The load-bearing properties: batched serving is bit-identical to
direct ``Thetis.search``, overload fast-fails with 503 while admitted
work completes, deadlines surface as 504, snapshot swaps are invisible
to in-flight queries, and shutdown drains then closes the engine.
"""

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro import Query, Thetis
from repro.serve import LoadGenerator, ServeConfig, ServerThread


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def build_served_thetis(sports_lake, sports_graph, sports_mapping) -> Thetis:
    """A private engine over copied containers.

    The server owns and closes its Thetis on shutdown, and /tables
    mutations must never leak into the shared session fixtures.
    """
    reference = Thetis(sports_lake, sports_graph, sports_mapping)
    lake, mapping = reference.snapshot_inputs()
    return Thetis(lake, sports_graph, mapping)


def http_request(port, method, path, payload=None, timeout=30.0):
    """One request against localhost; returns (status, decoded body)."""
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=timeout)
    try:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        return response.status, (json.loads(raw) if raw else None)
    finally:
        connection.close()


QUERY_TUPLES = [
    [["kg:player0", "kg:team0", "kg:city0"]],
    [["kg:player5", "kg:team5"]],
    [["kg:player9"], ["kg:team1", "kg:city1"]],
    [["kg:city2", "kg:city3"]],
]


@pytest.fixture()
def server(sports_lake, sports_graph, sports_mapping):
    served = build_served_thetis(sports_lake, sports_graph, sports_mapping)
    handle = ServerThread(
        served,
        ServeConfig(port=0, max_batch_size=8, flush_interval=0.005),
    )
    handle.start().wait_ready()
    yield handle
    handle.stop()


@pytest.fixture()
def reference(sports_lake, sports_graph, sports_mapping):
    return Thetis(sports_lake, sports_graph, sports_mapping)


def expected_results(reference, tuples, k=10, mode="search",
                     method="types"):
    query = Query(tuple(tuple(t) for t in tuples))
    if mode == "topk":
        results = reference.search_topk(query, k=k, method=method)
    else:
        results = reference.search(query, k=k, method=method)
    return [
        {"rank": rank, "table_id": scored.table_id, "score": scored.score}
        for rank, scored in enumerate(results, start=1)
    ]


# ----------------------------------------------------------------------
# Control plane
# ----------------------------------------------------------------------
class TestControlPlane:
    def test_healthz(self, server):
        status, body = http_request(server.port, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["uptime_seconds"] >= 0

    def test_readyz_after_warmup(self, server):
        status, body = http_request(server.port, "GET", "/readyz")
        assert status == 200
        assert body["status"] == "ready"

    def test_metrics_document(self, server):
        http_request(server.port, "POST", "/search",
                     {"tuples": QUERY_TUPLES[0]})
        status, body = http_request(server.port, "GET", "/metrics")
        assert status == 200
        assert body["requests_total"] >= 1
        assert body["requests"]["/search:200"] == 1
        assert body["batches_total"] >= 1
        assert body["snapshot_version"] == 0
        assert body["queue_limit"] == 64
        assert "/search" in body["latency"]
        assert body["latency"]["/search"]["count"] == 1
        # Cache stats from the engine are included with hit rates.
        assert "similarity" in body["cache"]
        assert 0.0 <= body["cache"]["similarity"]["hit_rate"] <= 1.0

    def test_unknown_endpoint_404(self, server):
        status, body = http_request(server.port, "GET", "/nope")
        assert status == 404
        assert "no such endpoint" in body["error"]

    def test_wrong_method_405(self, server):
        status, _ = http_request(server.port, "GET", "/search")
        assert status == 405
        status, _ = http_request(server.port, "POST", "/healthz",
                                 payload={})
        assert status == 405


# ----------------------------------------------------------------------
# Query path
# ----------------------------------------------------------------------
class TestSearchParity:
    def test_search_bit_identical_to_direct(self, server, reference):
        """POST /search must reproduce Thetis.search exactly — same
        tables, same order, same float scores through the JSON wire."""
        for tuples in QUERY_TUPLES:
            status, body = http_request(
                server.port, "POST", "/search", {"tuples": tuples}
            )
            assert status == 200
            assert body["results"] == expected_results(reference, tuples)

    def test_topk_bit_identical_to_direct(self, server, reference):
        for tuples in QUERY_TUPLES[:2]:
            status, body = http_request(
                server.port, "POST", "/topk", {"tuples": tuples, "k": 4}
            )
            assert status == 200
            assert body["results"] == expected_results(
                reference, tuples, k=4, mode="topk"
            )

    def test_concurrent_batched_queries_identical_to_sequential(
            self, server, reference):
        """A concurrent burst (which the server coalesces into batches)
        returns exactly what sequential direct calls return."""
        payloads = [QUERY_TUPLES[i % len(QUERY_TUPLES)] for i in range(16)]
        responses = [None] * len(payloads)

        def client(index):
            responses[index] = http_request(
                server.port, "POST", "/search",
                {"tuples": payloads[index]},
            )

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(len(payloads))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index, (status, body) in enumerate(responses):
            assert status == 200
            assert body["results"] == expected_results(
                reference, payloads[index]
            )
        # The burst actually exercised coalescing.
        _, metrics = http_request(server.port, "GET", "/metrics")
        assert metrics["batches_total"] >= 1
        assert metrics["batched_queries_total"] >= len(payloads)

    def test_k_truncates(self, server):
        status, body = http_request(
            server.port, "POST", "/search",
            {"tuples": QUERY_TUPLES[0], "k": 3},
        )
        assert status == 200
        assert body["count"] == 3

    def test_malformed_body_400(self, server):
        connection = http.client.HTTPConnection("127.0.0.1", server.port,
                                                timeout=10)
        try:
            connection.request(
                "POST", "/search", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            response.read()
        finally:
            connection.close()

    def test_unknown_field_400(self, server):
        status, body = http_request(
            server.port, "POST", "/search",
            {"tuples": QUERY_TUPLES[0], "bogus": 1},
        )
        assert status == 400
        assert "unknown" in body["error"]


class TestPrefilterServing:
    def test_prefilter_mode_matches_exact_topk(self, server, reference):
        """On the sports corpus the LSEI shortlist covers every scoring
        table, so the prefiltered wire ranking equals the exact one."""
        for tuples in QUERY_TUPLES:
            status, body = http_request(
                server.port, "POST", "/search",
                {"tuples": tuples, "mode": "prefilter"},
            )
            assert status == 200
            assert body["mode"] == "prefilter"
            assert body["results"] == expected_results(reference, tuples)

    def test_metrics_expose_prefilter_block(self, server):
        http_request(
            server.port, "POST", "/search",
            {"tuples": QUERY_TUPLES[0], "mode": "prefilter"},
        )
        status, metrics = http_request(server.port, "GET", "/metrics")
        assert status == 200
        block = metrics["prefilter"]
        assert block["queries"] >= 1
        assert 0.0 <= block["candidate_reduction"] <= 1.0
        # No guardrail configured on the default server fixture.
        assert block["guardrail"]["checks"] == 0

    def test_guardrail_sampling_records_recall(self, sports_lake,
                                               sports_graph, sports_mapping):
        served = build_served_thetis(sports_lake, sports_graph,
                                     sports_mapping)
        handle = ServerThread(
            served,
            ServeConfig(port=0, max_batch_size=8, flush_interval=0.005,
                        prefilter_guardrail_every=2),
        )
        handle.start().wait_ready()
        try:
            for tuples in QUERY_TUPLES:
                status, _ = http_request(
                    handle.port, "POST", "/search",
                    {"tuples": tuples, "mode": "prefilter"},
                )
                assert status == 200
            _, metrics = http_request(handle.port, "GET", "/metrics")
            guardrail = metrics["prefilter"]["guardrail"]
            assert guardrail["checks"] == 2  # every 2nd of 4 queries
            assert guardrail["min_recall"] >= 0.95
        finally:
            handle.stop()

    def test_mode_rejected_on_topk_endpoint(self, server):
        status, body = http_request(
            server.port, "POST", "/topk",
            {"tuples": QUERY_TUPLES[0], "mode": "exact"},
        )
        assert status == 400
        assert "POST /search" in body["error"]

    def test_exact_wire_mode_is_plain_search(self, server, reference):
        status, body = http_request(
            server.port, "POST", "/search",
            {"tuples": QUERY_TUPLES[0], "mode": "exact"},
        )
        assert status == 200
        assert body["mode"] == "search"
        assert body["results"] == expected_results(reference,
                                                   QUERY_TUPLES[0])


class TestExplain:
    def test_explain_matches_direct(self, server, reference):
        tuples = QUERY_TUPLES[0]
        status, body = http_request(
            server.port, "POST", "/explain",
            {"tuples": tuples, "table_id": "T00"},
        )
        assert status == 200
        query = Query(tuple(tuple(t) for t in tuples))
        direct = reference.explain(query, "T00")
        assert body["score"] == direct.score
        assert "T00" in body["report"]

    def test_explain_unknown_table_404(self, server):
        status, _ = http_request(
            server.port, "POST", "/explain",
            {"tuples": QUERY_TUPLES[0], "table_id": "T99"},
        )
        assert status == 404


# ----------------------------------------------------------------------
# Backpressure and deadlines over the wire
# ----------------------------------------------------------------------
def _slowed(handle, delay):
    """Wrap the server's batch runner with an artificial delay."""
    original = handle.server.batcher.runner

    async def slow_runner(items):
        await asyncio.sleep(delay)
        return await original(items)

    handle.server.batcher.runner = slow_runner
    return handle


class TestOverload:
    def test_burst_gets_503_but_admitted_work_completes(
            self, sports_lake, sports_graph, sports_mapping, reference):
        served = build_served_thetis(sports_lake, sports_graph,
                                     sports_mapping)
        handle = _slowed(
            ServerThread(
                served,
                ServeConfig(port=0, max_batch_size=1, flush_interval=0.0,
                            max_queue_depth=1, request_timeout=30.0),
            ),
            delay=0.25,
        )
        handle.start().wait_ready()
        try:
            outcomes = [None] * 10
            durations = [None] * 10

            def client(index):
                started = time.perf_counter()
                outcomes[index] = http_request(
                    handle.port, "POST", "/search",
                    {"tuples": QUERY_TUPLES[0]},
                )
                durations[index] = time.perf_counter() - started

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(10)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            statuses = [status for status, _ in outcomes]
            assert 200 in statuses     # in-flight work completed...
            assert 503 in statuses     # ...while the excess was shed
            assert set(statuses) <= {200, 503}
            for (status, body), duration in zip(outcomes, durations):
                if status == 503:
                    # Fast-fail: a rejection never waits out the queue.
                    assert duration < 5.0
                    assert "overloaded" in body["error"]
                else:
                    assert body["results"] == expected_results(
                        reference, QUERY_TUPLES[0]
                    )
            _, metrics = http_request(handle.port, "GET", "/metrics")
            assert metrics["rejected_total"] == statuses.count(503)
        finally:
            handle.stop()
        assert served.closed


class TestTimeout:
    def test_slow_query_times_out_with_504(
            self, sports_lake, sports_graph, sports_mapping):
        served = build_served_thetis(sports_lake, sports_graph,
                                     sports_mapping)
        handle = _slowed(
            ServerThread(
                served,
                ServeConfig(port=0, flush_interval=0.0,
                            request_timeout=0.05),
            ),
            delay=0.5,
        )
        handle.start().wait_ready()
        try:
            status, body = http_request(
                handle.port, "POST", "/search",
                {"tuples": QUERY_TUPLES[0]},
            )
            assert status == 504
            assert "deadline" in body["error"] or "timed out" in body["error"]
            _, metrics = http_request(handle.port, "GET", "/metrics")
            assert metrics["timeout_total"] >= 1
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# Hot-swapped snapshots over the wire
# ----------------------------------------------------------------------
NEW_TABLE = {
    "table": {
        "id": "TX",
        "attributes": ["Player", "Team", "City"],
        "rows": [["Player 0", "Team 0", "City 0"],
                 ["Player 8", "Team 0", "City 0"]],
        "metadata": {"caption": "hot-added roster"},
    },
    "link": True,
}


class TestSnapshotSwaps:
    def test_add_then_remove_table(self, server):
        status, body = http_request(server.port, "POST", "/tables",
                                    NEW_TABLE)
        assert status == 200
        assert body["snapshot_version"] == 1
        assert body["links_created"] > 0

        # The new table is immediately searchable...
        status, body = http_request(
            server.port, "POST", "/search",
            {"tuples": [["kg:player0", "kg:team0", "kg:city0"]], "k": 13},
        )
        assert status == 200
        assert body["snapshot_version"] == 1
        assert any(r["table_id"] == "TX" for r in body["results"])

        # ...duplicate adds are rejected...
        status, _ = http_request(server.port, "POST", "/tables", NEW_TABLE)
        assert status == 400

        # ...and removal swaps another generation in.
        status, body = http_request(server.port, "DELETE", "/tables/TX")
        assert status == 200
        assert body["snapshot_version"] == 2
        status, _ = http_request(server.port, "DELETE", "/tables/TX")
        assert status == 404

        _, metrics = http_request(server.port, "GET", "/metrics")
        assert metrics["snapshot_swaps_total"] == 2
        assert metrics["snapshot_version"] == 2

    def test_swaps_under_concurrent_queries(self, server, reference):
        """Queries racing a series of snapshot swaps all succeed and
        stay coherent for whichever generation served them."""
        errors = []
        stop = threading.Event()
        expected = expected_results(reference, QUERY_TUPLES[0], k=5)

        def client():
            try:
                while not stop.is_set():
                    status, body = http_request(
                        server.port, "POST", "/search",
                        {"tuples": QUERY_TUPLES[0], "k": 5},
                    )
                    assert status == 200, body
                    # T00 is the exact-match top hit in every
                    # generation (mutations only add/remove TZ*).
                    assert body["results"][0] == expected[0]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for index in range(3):
                payload = json.loads(json.dumps(NEW_TABLE))
                payload["table"]["id"] = f"TZ{index}"
                status, _ = http_request(server.port, "POST", "/tables",
                                         payload)
                assert status == 200
            status, _ = http_request(server.port, "DELETE", "/tables/TZ0")
            assert status == 200
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors
        _, metrics = http_request(server.port, "GET", "/metrics")
        assert metrics["snapshot_swaps_total"] == 4
        assert metrics["snapshot_version"] == 4

    def test_mutations_never_touch_session_lake(self, server,
                                                sports_lake):
        status, _ = http_request(server.port, "POST", "/tables", NEW_TABLE)
        assert status == 200
        assert "TX" not in sports_lake
        assert len(sports_lake) == 12


# ----------------------------------------------------------------------
# Shutdown
# ----------------------------------------------------------------------
class TestShutdown:
    def test_graceful_stop_closes_engine(self, sports_lake, sports_graph,
                                         sports_mapping):
        served = build_served_thetis(sports_lake, sports_graph,
                                     sports_mapping)
        handle = ServerThread(served, ServeConfig(port=0))
        handle.start().wait_ready()
        port = handle.port
        status, _ = http_request(port, "POST", "/search",
                                 {"tuples": QUERY_TUPLES[0]})
        assert status == 200
        handle.stop()
        assert served.closed
        with pytest.raises(OSError):
            http_request(port, "GET", "/healthz", timeout=2.0)

    def test_stop_idempotent(self, sports_lake, sports_graph,
                             sports_mapping):
        served = build_served_thetis(sports_lake, sports_graph,
                                     sports_mapping)
        handle = ServerThread(served, ServeConfig(port=0))
        handle.start().wait_ready()
        handle.stop()
        handle.stop()  # second stop is a no-op

    def test_context_manager(self, sports_lake, sports_graph,
                             sports_mapping):
        served = build_served_thetis(sports_lake, sports_graph,
                                     sports_mapping)
        with ServerThread(served, ServeConfig(port=0)) as handle:
            handle.wait_ready()
            status, _ = http_request(handle.port, "GET", "/healthz")
            assert status == 200
        assert served.closed


# ----------------------------------------------------------------------
# Load generator against a live server
# ----------------------------------------------------------------------
class TestLoadGenerator:
    def test_closed_loop_run(self, server):
        generator = LoadGenerator(
            "127.0.0.1", server.port,
            payloads=[{"tuples": t} for t in QUERY_TUPLES],
        )
        report = generator.run_closed(concurrency=4, total_requests=24)
        assert report.sent == 24
        assert report.ok == 24
        assert report.rejected == 0
        assert report.throughput > 0
        assert report.percentile_ms(0.50) <= report.percentile_ms(0.99)
        doc = report.to_json()
        assert doc["ok"] == 24
        assert doc["latency_ms"]["p99"] >= doc["latency_ms"]["p50"]

    def test_open_loop_run(self, server):
        generator = LoadGenerator(
            "127.0.0.1", server.port,
            payloads=[{"tuples": QUERY_TUPLES[0]}],
        )
        report = generator.run_open(rate=40.0, duration=0.5)
        assert report.mode == "open"
        assert report.sent >= 1
        assert report.ok >= 1

"""Tests for rank fusion (RRF, CombSUM/MNZ, logistic learning-to-rank)."""

import pytest

from repro.core import (
    LogisticFusion,
    ResultSet,
    ScoredTable,
    comb_mnz,
    comb_sum,
    reciprocal_rank_fusion,
)
from repro.exceptions import ConfigurationError


def _ranking(*pairs):
    return ResultSet(ScoredTable(score, tid) for tid, score in pairs)


@pytest.fixture()
def rankings():
    a = _ranking(("X", 0.9), ("A", 0.8), ("B", 0.7))
    b = _ranking(("X", 5.0), ("C", 4.0), ("A", 3.0))
    return [a, b]


class TestRRF:
    def test_agreement_wins(self, rankings):
        fused = reciprocal_rank_fusion(rankings)
        assert fused.table_ids()[0] == "X"  # rank 1 in both

    def test_union_of_candidates(self, rankings):
        fused = reciprocal_rank_fusion(rankings)
        assert set(fused.table_ids()) == {"X", "A", "B", "C"}

    def test_single_ranking_preserves_order(self, rankings):
        fused = reciprocal_rank_fusion(rankings[:1])
        assert fused.table_ids() == rankings[0].table_ids()

    def test_validation(self, rankings):
        with pytest.raises(ConfigurationError):
            reciprocal_rank_fusion([])
        with pytest.raises(ConfigurationError):
            reciprocal_rank_fusion(rankings, k=0)

    def test_k_dampens_head_weight(self, rankings):
        sharp = reciprocal_rank_fusion(rankings, k=1)
        flat = reciprocal_rank_fusion(rankings, k=1000)
        # Both keep X first, but relative gaps differ.
        gap = lambda rs: (rs.score_of("X") - rs.score_of("A"))
        assert gap(sharp) > gap(flat)


class TestCombFusion:
    def test_comb_sum_normalizes_scales(self, rankings):
        # System b's raw scores are 5x larger; normalization equalizes.
        fused = comb_sum(rankings)
        assert fused.table_ids()[0] == "X"
        assert fused.score_of("X") == pytest.approx(2.0)

    def test_comb_mnz_rewards_agreement(self, rankings):
        fused = comb_mnz(rankings)
        # A appears in both systems, B and C in one each.
        assert fused.score_of("A") > fused.score_of("B")
        assert fused.score_of("A") > fused.score_of("C")

    def test_constant_scores_handled(self):
        constant = _ranking(("P", 0.5), ("Q", 0.5))
        fused = comb_sum([constant])
        assert fused.score_of("P") == fused.score_of("Q") == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            comb_sum([])
        with pytest.raises(ConfigurationError):
            comb_mnz([])


class TestLogisticFusion:
    def _training_data(self):
        # System 0 is reliable (relevant tables score high), system 1
        # is anti-correlated noise; the model should learn to trust 0.
        data = []
        for i in range(6):
            good = _ranking((f"rel{i}", 0.9), (f"irr{i}", 0.2))
            bad = _ranking((f"irr{i}", 0.9), (f"rel{i}", 0.2))
            gains = {f"rel{i}": 3.0}
            data.append(([good, bad], gains))
        return data

    def test_learns_to_trust_reliable_system(self):
        model = LogisticFusion(num_systems=2, seed=1)
        model.fit(self._training_data())
        assert model.weights[0] > model.weights[1]
        test = [
            _ranking(("new_rel", 0.95), ("new_irr", 0.1)),
            _ranking(("new_irr", 0.95), ("new_rel", 0.1)),
        ]
        fused = model.fuse(test)
        assert fused.table_ids()[0] == "new_rel"

    def test_fuse_before_fit_rejected(self):
        model = LogisticFusion(num_systems=2)
        with pytest.raises(ConfigurationError):
            model.fuse([_ranking(("a", 1.0)), _ranking(("a", 1.0))])

    def test_system_count_enforced(self):
        model = LogisticFusion(num_systems=2)
        with pytest.raises(ConfigurationError):
            model.fit([([_ranking(("a", 1.0))], {"a": 1.0})])
        model.fit(self._training_data())
        with pytest.raises(ConfigurationError):
            model.fuse([_ranking(("a", 1.0))])

    def test_empty_training_rejected(self):
        model = LogisticFusion(num_systems=1)
        with pytest.raises(ConfigurationError):
            model.fit([])

    def test_invalid_num_systems(self):
        with pytest.raises(ConfigurationError):
            LogisticFusion(num_systems=0)

    def test_features_for_union_and_zero_fill(self, rankings):
        pool, matrix = LogisticFusion.features_for(rankings)
        assert pool == ["A", "B", "C", "X"]
        assert matrix.shape == (4, 2)
        b_index = pool.index("B")
        assert matrix[b_index, 1] == 0.0  # B absent from system 1


class TestFusionProperties:
    """Hypothesis properties over the fusion combinators."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    _rankings = st.lists(
        st.dictionaries(
            st.sampled_from([f"T{i}" for i in range(8)]),
            st.floats(0.0, 1.0),
            min_size=1,
            max_size=6,
        ),
        min_size=1,
        max_size=4,
    )

    @settings(max_examples=40, deadline=None)
    @given(_rankings)
    def test_rrf_candidates_are_union(self, score_dicts):
        rankings = [ResultSet.from_scores(d) for d in score_dicts]
        fused = reciprocal_rank_fusion(rankings)
        union = set().union(*(set(d) for d in score_dicts))
        assert set(fused.table_ids()) == union

    @settings(max_examples=40, deadline=None)
    @given(_rankings)
    def test_comb_sum_scores_bounded_by_system_count(self, score_dicts):
        rankings = [ResultSet.from_scores(d) for d in score_dicts]
        fused = comb_sum(rankings)
        for scored in fused:
            assert -1e-9 <= scored.score <= len(rankings) + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(_rankings)
    def test_comb_mnz_dominates_comb_sum(self, score_dicts):
        rankings = [ResultSet.from_scores(d) for d in score_dicts]
        sums = comb_sum(rankings)
        mnz = comb_mnz(rankings)
        for table_id in sums.table_ids():
            assert mnz.score_of(table_id) >= sums.score_of(table_id) - 1e-9

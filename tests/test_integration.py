"""End-to-end integration tests over a generated benchmark corpus.

These tests assert the *qualitative* findings of Section 7 at test
scale: semantic search retrieves topically relevant tables, LSH
prefiltering preserves quality while shrinking the search space, and
complementing BM25 with semantic search improves recall.
"""

import pytest

from repro import Thetis
from repro.baselines import BM25TableSearch, text_query_from_labels
from repro.eval import ExperimentRunner, ndcg_at_k, recall_at_k
from repro.lsh import RECOMMENDED_CONFIG


@pytest.fixture(scope="module")
def thetis(small_benchmark):
    system = Thetis(
        small_benchmark.lake, small_benchmark.graph, small_benchmark.mapping
    )
    system.train_embeddings(dimensions=24, epochs=2, walks_per_entity=6,
                            walk_length=4, seed=0)
    return system


@pytest.fixture(scope="module")
def bm25(small_benchmark):
    return BM25TableSearch(small_benchmark.lake)


class TestSearchQuality:
    def test_types_search_ndcg_positive(self, small_benchmark, thetis):
        scores = []
        for qid, query in small_benchmark.queries.one_tuple.items():
            truth = small_benchmark.ground_truth(qid)
            results = thetis.search(query, k=10, method="types")
            scores.append(ndcg_at_k(results.table_ids(10), truth.gains, 10))
        assert sum(scores) / len(scores) > 0.3

    def test_embeddings_search_ndcg_positive(self, small_benchmark, thetis):
        scores = []
        for qid, query in small_benchmark.queries.one_tuple.items():
            truth = small_benchmark.ground_truth(qid)
            results = thetis.search(query, k=10, method="embeddings")
            scores.append(ndcg_at_k(results.table_ids(10), truth.gains, 10))
        assert sum(scores) / len(scores) > 0.2

    def test_lsh_quality_close_to_exact(self, small_benchmark, thetis):
        exact_scores, lsh_scores = [], []
        for qid, query in small_benchmark.queries.one_tuple.items():
            truth = small_benchmark.ground_truth(qid)
            exact = thetis.search(query, k=10)
            approx = thetis.search(query, k=10, use_lsh=True,
                                   lsh_config=RECOMMENDED_CONFIG)
            exact_scores.append(
                ndcg_at_k(exact.table_ids(10), truth.gains, 10)
            )
            lsh_scores.append(
                ndcg_at_k(approx.table_ids(10), truth.gains, 10)
            )
        mean_exact = sum(exact_scores) / len(exact_scores)
        mean_lsh = sum(lsh_scores) / len(lsh_scores)
        assert mean_lsh >= 0.7 * mean_exact

    def test_lsh_reduces_search_space(self, small_benchmark, thetis):
        prefilter = thetis.prefilter("types", RECOMMENDED_CONFIG)
        reductions = []
        for query in small_benchmark.queries.one_tuple.values():
            candidates = prefilter.candidate_tables(query)
            reductions.append(
                prefilter.reduction(len(small_benchmark.lake), candidates)
            )
        assert sum(reductions) / len(reductions) > 0.2

    def test_semantic_finds_tables_bm25_misses(self, small_benchmark,
                                               thetis, bm25):
        """The paper's disjointness finding: large result-set difference."""
        differences = []
        for qid, query in small_benchmark.queries.one_tuple.items():
            semantic = thetis.search(query, k=100)
            keyword = bm25.search(
                text_query_from_labels(query, small_benchmark.graph), k=100
            )
            differences.append(len(semantic.difference(keyword, k=100)))
        assert max(differences) > 10

    def test_complement_holds_recall_of_bm25(self, small_benchmark,
                                             thetis, bm25):
        """STSTC recall stays close to BM25's at unit-test scale.

        At 200 tables BM25 is nearly saturated (recall ~1), so the
        *improvement* the paper reports only materializes at corpus
        scale - the Figure 5 benchmark covers that; here we check the
        merge does not damage a saturated baseline.
        """
        bm25_recalls, merged_recalls = [], []
        k = 100
        for qid, query in small_benchmark.queries.five_tuple.items():
            truth = small_benchmark.ground_truth(qid)
            keyword = bm25.search(
                text_query_from_labels(query, small_benchmark.graph), k=k
            )
            semantic = thetis.search(query, k=k)
            merged = semantic.complement(keyword, k=k)
            bm25_recalls.append(recall_at_k(keyword.table_ids(k),
                                            truth.gains, k))
            merged_recalls.append(recall_at_k(merged.table_ids(k),
                                              truth.gains, k))
        assert sum(merged_recalls) >= 0.9 * sum(bm25_recalls)


class TestRunnerIntegration:
    def test_full_experiment_loop(self, small_benchmark, thetis, bm25):
        queries = small_benchmark.queries.one_tuple
        truths = {qid: small_benchmark.ground_truth(qid) for qid in queries}
        runner = ExperimentRunner(queries, truths)
        reports = runner.run_all(
            {
                "STST": lambda q, k: thetis.search(q, k=k),
                "BM25": lambda q, k: bm25.search(
                    text_query_from_labels(q, small_benchmark.graph), k=k
                ),
            },
            k=10,
        )
        assert reports["STST"].ndcg_summary()["mean"] > 0.0
        for report in reports.values():
            assert len(report.outcomes) == len(queries)

"""Unit tests for the bidirectional entity mapping Phi."""

import pytest

from repro.exceptions import LinkingError
from repro.linking import EntityMapping


@pytest.fixture()
def mapping():
    m = EntityMapping()
    m.link("T1", 0, 0, "kg:a")
    m.link("T1", 0, 1, "kg:b")
    m.link("T1", 1, 0, "kg:a")
    m.link("T2", 0, 0, "kg:a")
    return m


class TestForward:
    def test_entity_at(self, mapping):
        assert mapping.entity_at("T1", 0, 0) == "kg:a"
        assert mapping.entity_at("T1", 5, 5) is None

    def test_entity_row(self, mapping):
        assert mapping.entity_row("T1", 0, 3) == ["kg:a", "kg:b", None]
        assert mapping.entity_row("T9", 0, 2) == [None, None]

    def test_entities_in_table(self, mapping):
        assert mapping.entities_in_table("T1") == {"kg:a", "kg:b"}
        assert mapping.entities_in_table("T9") == frozenset()

    def test_entities_in_column(self, mapping):
        assert mapping.entities_in_column("T1", 0) == ["kg:a", "kg:a"]
        assert mapping.entities_in_column("T1", 2) == []


class TestInverse:
    def test_cells_of(self, mapping):
        assert mapping.cells_of("kg:a") == {
            ("T1", 0, 0), ("T1", 1, 0), ("T2", 0, 0),
        }
        assert mapping.cells_of("kg:z") == frozenset()

    def test_tables_with_entity(self, mapping):
        assert mapping.tables_with_entity("kg:a") == {"T1", "T2"}
        assert mapping.tables_with_entity("kg:b") == {"T1"}

    def test_table_frequency(self, mapping):
        assert mapping.table_frequency("kg:a") == 2
        assert mapping.table_frequency("kg:b") == 1
        assert mapping.table_frequency("kg:z") == 0


class TestMutation:
    def test_relink_same_entity_idempotent(self, mapping):
        mapping.link("T1", 0, 0, "kg:a")
        assert len(mapping) == 4

    def test_relink_conflict_rejected(self, mapping):
        with pytest.raises(LinkingError):
            mapping.link("T1", 0, 0, "kg:other")

    def test_negative_coordinates_rejected(self):
        with pytest.raises(LinkingError):
            EntityMapping().link("T", -1, 0, "kg:a")

    def test_unlink(self, mapping):
        assert mapping.unlink("T2", 0, 0) == "kg:a"
        assert mapping.entity_at("T2", 0, 0) is None
        assert mapping.tables_with_entity("kg:a") == {"T1"}
        assert mapping.unlink("T2", 0, 0) is None

    def test_unlink_keeps_entity_if_still_in_table(self, mapping):
        mapping.unlink("T1", 0, 0)
        # kg:a still linked at (T1, 1, 0)
        assert "kg:a" in mapping.entities_in_table("T1")

    def test_linked_cell_count(self, mapping):
        assert mapping.linked_cell_count("T1") == 3
        assert mapping.linked_cell_count("T9") == 0

    def test_copy_is_independent(self, mapping):
        clone = mapping.copy()
        clone.link("T3", 0, 0, "kg:new")
        assert len(clone) == len(mapping) + 1
        assert mapping.entity_at("T3", 0, 0) is None

    def test_merge(self):
        a = EntityMapping()
        a.link("T1", 0, 0, "kg:a")
        b = EntityMapping()
        b.link("T2", 0, 0, "kg:b")
        a.merge(b)
        assert len(a) == 2
        assert a.entity_at("T2", 0, 0) == "kg:b"

    def test_contains_and_iteration(self, mapping):
        assert ("T1", 0, 0) in mapping
        assert ("T1", 9, 9) not in mapping
        assert set(mapping.all_entities()) == {"kg:a", "kg:b"}
        assert len(list(mapping.all_links())) == 4

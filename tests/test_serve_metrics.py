"""Tests for serving metrics: histograms, counters, JSON document."""

import pytest

from repro.serve.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    LatencyHistogram,
    ServerMetrics,
    percentile_of,
)


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.percentile(0.5) == 0.0
        snap = histogram.snapshot()
        assert snap["count"] == 0
        assert len(snap["buckets"]) == len(DEFAULT_LATENCY_BUCKETS) + 1

    def test_observe_counts_and_sum(self):
        histogram = LatencyHistogram()
        for value in (0.0005, 0.003, 0.003, 0.2):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total_seconds == pytest.approx(0.2065)

    def test_percentile_within_bucket(self):
        histogram = LatencyHistogram(buckets=(0.01, 0.1, 1.0))
        for _ in range(100):
            histogram.observe(0.05)  # all in the (0.01, 0.1] bucket
        p50 = histogram.percentile(0.50)
        assert 0.01 < p50 <= 0.1

    def test_percentile_monotone(self):
        histogram = LatencyHistogram()
        for i in range(1, 101):
            histogram.observe(i / 1000.0)  # 1ms .. 100ms
        p50 = histogram.percentile(0.50)
        p95 = histogram.percentile(0.95)
        p99 = histogram.percentile(0.99)
        assert p50 <= p95 <= p99
        assert 0.01 <= p50 <= 0.1

    def test_overflow_bucket_reports_last_edge(self):
        histogram = LatencyHistogram(buckets=(0.01, 0.1))
        histogram.observe(5.0)
        assert histogram.percentile(0.99) == 0.1

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=())
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=(0.1, 0.01))
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=(0.1, 0.1))

    def test_bad_percentile_rejected(self):
        histogram = LatencyHistogram()
        with pytest.raises(ValueError):
            histogram.percentile(0.0)
        with pytest.raises(ValueError):
            histogram.percentile(1.5)


class TestServerMetrics:
    def test_request_accounting(self):
        metrics = ServerMetrics()
        metrics.request_started()
        assert metrics.in_flight == 1
        metrics.request_finished("/search", 200, seconds=0.01)
        assert metrics.in_flight == 0
        assert metrics.total_requests() == 1
        assert metrics.requests_by_status() == {"/search:200": 1}
        assert metrics.latency("/search").count == 1

    def test_rejections_tracked_on_query_paths_only(self):
        metrics = ServerMetrics()
        for endpoint, status in [
            ("/search", 503), ("/topk", 504), ("/readyz", 503),
        ]:
            metrics.request_started()
            metrics.request_finished(endpoint, status)
        assert metrics.rejected_total == 1   # /readyz 503 is not overload
        assert metrics.timeout_total == 1

    def test_batch_and_swap_counters(self):
        metrics = ServerMetrics()
        metrics.batch_executed(3)
        metrics.batch_executed(5)
        metrics.snapshot_swapped()
        doc = metrics.to_json(queue_depth=2, queue_limit=64,
                              snapshot_version=1)
        assert doc["batches_total"] == 2
        assert doc["batched_queries_total"] == 8
        assert doc["mean_batch_size"] == pytest.approx(4.0)
        assert doc["snapshot_swaps_total"] == 1
        assert doc["queue_depth"] == 2
        assert doc["queue_limit"] == 64
        assert doc["snapshot_version"] == 1

    def test_to_json_includes_cache_stats(self):
        class _Stats:
            size, maxsize, hits, misses, evictions = 3, 10, 7, 3, 0
            hit_rate = 0.7

        metrics = ServerMetrics()
        doc = metrics.to_json(cache_stats={"types": _Stats()})
        assert doc["cache"]["types"]["hit_rate"] == pytest.approx(0.7)
        assert doc["cache"]["types"]["size"] == 3


class TestPercentileOf:
    def test_empty(self):
        assert percentile_of([], 0.5) == 0.0

    def test_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]  # 1..100
        assert percentile_of(values, 0.50) == 50.0
        assert percentile_of(values, 0.95) == 95.0
        assert percentile_of(values, 0.99) == 99.0
        assert percentile_of(values, 1.00) == 100.0

    def test_single_sample(self):
        assert percentile_of([0.25], 0.99) == 0.25

    def test_unsorted_input(self):
        assert percentile_of([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_bad_p(self):
        with pytest.raises(ValueError):
            percentile_of([1.0], 0.0)

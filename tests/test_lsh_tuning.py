"""Tests for the LSH configuration auto-tuner."""

import pytest

from repro.core import Query, TableSearchEngine
from repro.exceptions import ConfigurationError
from repro.lsh import LSHConfig, LSHTuner, TypeSignatureScheme
from repro.similarity import TypeJaccardSimilarity


@pytest.fixture()
def tuner(sports_lake, sports_mapping, sports_graph):
    engine = TableSearchEngine(
        sports_lake, sports_mapping, TypeJaccardSimilarity(sports_graph)
    )
    return LSHTuner(
        engine,
        scheme_factory=lambda n: TypeSignatureScheme(sports_graph, n, seed=1),
        k=5,
    )


QUERIES = [
    Query.single("kg:player0", "kg:team0"),
    Query.single("kg:player9", "kg:team1"),
    Query.single("kg:city2",),
]


class TestLSHTuner:
    def test_invalid_k(self, sports_lake, sports_mapping, sports_graph):
        engine = TableSearchEngine(
            sports_lake, sports_mapping, TypeJaccardSimilarity(sports_graph)
        )
        with pytest.raises(ConfigurationError):
            LSHTuner(engine, lambda n: None, k=0)

    def test_evaluate_returns_bounded_metrics(self, tuner):
        outcome = tuner.evaluate(LSHConfig(32, 8), QUERIES)
        assert 0.0 <= outcome.mean_reduction <= 1.0
        assert 0.0 <= outcome.ndcg_retention <= 1.0 + 1e-9
        assert outcome.config == LSHConfig(32, 8)
        assert outcome.votes == 1

    def test_sweep_covers_grid_sorted_by_reduction(self, tuner):
        configs = (LSHConfig(32, 8), LSHConfig(16, 8))
        outcomes = tuner.sweep(QUERIES, configs, votes_options=(1, 2))
        assert len(outcomes) == 4
        reductions = [o.mean_reduction for o in outcomes]
        assert reductions == sorted(reductions, reverse=True)

    def test_sweep_requires_queries(self, tuner):
        with pytest.raises(ConfigurationError):
            tuner.sweep([])

    def test_recommend_prefers_quality_floor(self, tuner):
        outcome = tuner.recommend(
            QUERIES,
            configs=(LSHConfig(32, 8), LSHConfig(30, 10)),
            min_retention=0.5,
        )
        assert outcome.ndcg_retention >= 0.5

    def test_recommend_falls_back_to_best_retention(self, tuner):
        # An impossible retention floor falls back gracefully.
        outcome = tuner.recommend(
            QUERIES, configs=(LSHConfig(32, 8),), min_retention=2.0
        )
        assert outcome.config == LSHConfig(32, 8)

    def test_format_row(self, tuner):
        outcome = tuner.evaluate(LSHConfig(32, 8), QUERIES)
        row = outcome.format_row()
        assert "(32, 8)" in row
        assert "reduction" in row

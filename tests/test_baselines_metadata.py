"""Tests for the metadata-only keyword baseline."""

import pytest

from repro.baselines import MetadataKeywordSearch
from repro.core import Query
from repro.datalake import DataLake, Table


@pytest.fixture()
def lake():
    return DataLake(
        [
            Table("rosters", ["Player"], [["Ron Santo"]],
                  metadata={"caption": "Baseball rosters 1970",
                            "source": "wiki"}),
            Table("films", ["Actor"], [["Meryl Streep"]],
                  metadata={"caption": "Famous film actors"}),
            Table("bare", ["X"], [["baseball content but no metadata"]]),
        ]
    )


class TestMetadataKeywordSearch:
    def test_matches_only_metadata(self, lake):
        searcher = MetadataKeywordSearch(lake)
        results = searcher.search(["baseball"])
        # 'bare' contains "baseball" in its CELLS but has no metadata:
        # the restrictive-metadata assumption makes it unfindable.
        assert results.table_ids() == ["rosters"]

    def test_cell_content_invisible(self, lake):
        searcher = MetadataKeywordSearch(lake)
        assert len(searcher.search(["santo"])) == 0
        assert len(searcher.search(["streep"])) == 0

    def test_field_restriction(self, lake):
        searcher = MetadataKeywordSearch(lake, fields=["caption"])
        assert len(searcher.search(["wiki"])) == 0
        assert searcher.search(["rosters"]).table_ids() == ["rosters"]

    def test_num_documents(self, lake):
        assert MetadataKeywordSearch(lake).num_documents == 3

    def test_search_query_wrapper(self, lake, sports_graph):
        searcher = MetadataKeywordSearch(lake)
        results = searcher.search_query(
            Query.single("kg:player0"), sports_graph, k=5
        )
        assert len(results) == 0  # sports labels absent from metadata

    def test_benchmark_metadata_searchable(self, small_benchmark):
        """Generated corpora carry captions, so the baseline works."""
        searcher = MetadataKeywordSearch(small_benchmark.lake)
        results = searcher.search(["baseball", "roster"], k=10)
        assert len(results) > 0
        for scored in results:
            metadata = small_benchmark.lake.get(scored.table_id).metadata
            caption = metadata.get("caption", "").lower()
            assert "baseball" in caption or "roster" in caption

"""Tests for row/query score aggregation policies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import QueryAggregation, RowAggregation
from repro.exceptions import ConfigurationError


class TestRowAggregation:
    def test_max(self):
        assert RowAggregation.MAX.aggregate([0.1, 0.9, 0.5]) == 0.9

    def test_avg(self):
        assert RowAggregation.AVG.aggregate([0.0, 1.0]) == 0.5

    def test_empty(self):
        assert RowAggregation.MAX.aggregate([]) == 0.0
        assert RowAggregation.AVG.aggregate([]) == 0.0

    def test_aggregate_columns_max(self):
        grid = [[0.1, 0.9], [0.8, 0.2]]
        assert RowAggregation.MAX.aggregate_columns(grid) == [0.8, 0.9]

    def test_aggregate_columns_avg(self):
        grid = [[0.0, 1.0], [1.0, 0.0]]
        assert RowAggregation.AVG.aggregate_columns(grid) == [0.5, 0.5]

    def test_aggregate_columns_empty(self):
        assert RowAggregation.MAX.aggregate_columns([]) == []

    def test_ragged_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            RowAggregation.MAX.aggregate_columns([[0.1], [0.1, 0.2]])

    @given(st.lists(st.lists(st.floats(0, 1), min_size=3, max_size=3),
                    min_size=1, max_size=10))
    def test_max_dominates_avg(self, grid):
        """Per coordinate, max aggregation never falls below avg."""
        max_coords = RowAggregation.MAX.aggregate_columns(grid)
        avg_coords = RowAggregation.AVG.aggregate_columns(grid)
        for hi, lo in zip(max_coords, avg_coords):
            assert hi >= lo - 1e-12


class TestQueryAggregation:
    def test_mean(self):
        assert QueryAggregation.MEAN.aggregate([0.2, 0.4]) == \
            pytest.approx(0.3)

    def test_max(self):
        assert QueryAggregation.MAX.aggregate([0.2, 0.4]) == 0.4

    def test_empty(self):
        assert QueryAggregation.MEAN.aggregate([]) == 0.0
        assert QueryAggregation.MAX.aggregate([]) == 0.0

    def test_single_value(self):
        assert QueryAggregation.MEAN.aggregate([0.7]) == 0.7
        assert QueryAggregation.MAX.aggregate([0.7]) == 0.7

"""Unit and property tests for the type taxonomy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import KnowledgeGraphError, UnknownTypeError
from repro.kg import TypeTaxonomy

from tests.conftest import make_sports_taxonomy


class TestBasics:
    def test_add_and_contains(self):
        taxonomy = TypeTaxonomy()
        taxonomy.add_type("Thing")
        taxonomy.add_type("Agent", "Thing")
        assert "Thing" in taxonomy
        assert "Agent" in taxonomy
        assert "Ghost" not in taxonomy
        assert len(taxonomy) == 2

    def test_parent_registered_implicitly(self):
        taxonomy = TypeTaxonomy()
        taxonomy.add_type("Agent", "Thing")
        assert "Thing" in taxonomy
        assert taxonomy.parent("Thing") is None

    def test_empty_name_rejected(self):
        with pytest.raises(KnowledgeGraphError):
            TypeTaxonomy().add_type("")

    def test_reassigning_parent_conflicts(self):
        taxonomy = TypeTaxonomy()
        taxonomy.add_type("A")
        taxonomy.add_type("B")
        taxonomy.add_type("C", "A")
        with pytest.raises(KnowledgeGraphError):
            taxonomy.add_type("C", "B")

    def test_late_parent_assignment_for_root(self):
        taxonomy = TypeTaxonomy()
        taxonomy.add_type("B")
        taxonomy.add_type("A")
        taxonomy.add_type("B", "A")  # promote root B under A
        assert taxonomy.parent("B") == "A"

    def test_readd_same_parent_is_noop(self):
        taxonomy = TypeTaxonomy()
        taxonomy.add_type("A")
        taxonomy.add_type("B", "A")
        taxonomy.add_type("B", "A")
        assert taxonomy.children("A") == ["B"]

    def test_cycle_detection(self):
        taxonomy = TypeTaxonomy()
        taxonomy.add_type("A")
        taxonomy.add_type("B", "A")
        with pytest.raises(KnowledgeGraphError):
            taxonomy.add_type("A", "B")

    def test_unknown_type_errors(self):
        taxonomy = TypeTaxonomy()
        for method in (taxonomy.parent, taxonomy.children,
                       taxonomy.ancestors, taxonomy.descendants,
                       taxonomy.depth):
            with pytest.raises(UnknownTypeError):
                method("Nope")


class TestQueries:
    @pytest.fixture()
    def taxonomy(self):
        return make_sports_taxonomy()

    def test_ancestors_chain(self, taxonomy):
        assert taxonomy.ancestors("BaseballPlayer") == [
            "BaseballPlayer", "Athlete", "Person", "Agent", "Thing",
        ]

    def test_ancestors_exclude_self(self, taxonomy):
        assert taxonomy.ancestors("Athlete", include_self=False) == [
            "Person", "Agent", "Thing",
        ]

    def test_descendants(self, taxonomy):
        assert taxonomy.descendants("Athlete") == {
            "BaseballPlayer", "VolleyballPlayer",
        }
        assert "Athlete" in taxonomy.descendants("Athlete", include_self=True)

    def test_roots(self, taxonomy):
        assert taxonomy.roots() == ["Thing"]

    def test_depth(self, taxonomy):
        assert taxonomy.depth("Thing") == 0
        assert taxonomy.depth("BaseballPlayer") == 4

    def test_expand_known_and_unknown(self, taxonomy):
        expanded = taxonomy.expand(["City", "CustomType"])
        assert {"City", "Place", "Thing", "CustomType"} == expanded

    def test_lowest_common_ancestor(self, taxonomy):
        assert taxonomy.lowest_common_ancestor(
            "BaseballPlayer", "VolleyballPlayer") == "Athlete"
        assert taxonomy.lowest_common_ancestor(
            "BaseballPlayer", "City") == "Thing"
        assert taxonomy.lowest_common_ancestor(
            "Athlete", "BaseballPlayer") == "Athlete"


@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                max_size=30))
def test_chain_taxonomy_ancestors_are_consistent(depths):
    """Ancestors of any node in a generated chain end at the root."""
    taxonomy = TypeTaxonomy()
    taxonomy.add_type("n0")
    for i in range(1, len(depths) + 1):
        taxonomy.add_type(f"n{i}", f"n{i - 1}")
    for i in range(len(depths) + 1):
        chain = taxonomy.ancestors(f"n{i}")
        assert chain[0] == f"n{i}"
        assert chain[-1] == "n0"
        assert len(chain) == i + 1
        assert taxonomy.depth(f"n{i}") == i

"""Tests for Table-2 style corpus statistics."""

from repro.datalake import DataLake, Table, corpus_statistics
from repro.linking import EntityMapping


def _lake():
    return DataLake(
        [
            Table("T1", ["A", "B"], [[1, 2], [3, 4]]),        # 2x2
            Table("T2", ["A", "B", "C"], [[1, 2, 3]] * 4),     # 4x3
        ]
    )


class TestCorpusStatistics:
    def test_empty_lake(self):
        stats = corpus_statistics(DataLake())
        assert stats.num_tables == 0
        assert stats.mean_rows == 0.0

    def test_shape_means(self):
        stats = corpus_statistics(_lake())
        assert stats.num_tables == 2
        assert stats.mean_rows == 3.0
        assert stats.mean_columns == 2.5
        assert stats.mean_coverage == 0.0  # no mapping supplied

    def test_coverage_with_mapping(self):
        lake = _lake()
        mapping = EntityMapping()
        mapping.link("T1", 0, 0, "kg:x")  # 1 of 4 cells
        mapping.link("T2", 0, 0, "kg:x")
        mapping.link("T2", 1, 1, "kg:y")
        mapping.link("T2", 2, 2, "kg:z")  # 3 of 12 cells
        stats = corpus_statistics(lake, mapping)
        assert abs(stats.mean_coverage - (0.25 + 0.25) / 2) < 1e-12

    def test_format_row(self):
        row = corpus_statistics(_lake()).format_row("demo")
        assert "demo" in row
        assert "T=" in row and "Cov=" in row

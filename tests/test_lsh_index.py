"""Tests for the banded LSH index and the table prefilter (LSEI)."""

import numpy as np
import pytest

from repro.core import Query
from repro.exceptions import ConfigurationError
from repro.lsh import (
    EmbeddingSignatureScheme,
    LSHConfig,
    LSHIndex,
    TablePrefilter,
    TypeSignatureScheme,
    frequent_types,
)


class TestLSHIndex:
    def test_add_and_lookup_same_signature(self):
        index = LSHIndex(LSHConfig(8, 4))
        sig = np.arange(8)
        index.add("a", sig)
        index.add("b", sig)
        buckets = index.lookup_signature(sig)
        assert len(buckets) == 2  # bands
        assert all(set(bucket) == {"a", "b"} for bucket in buckets)

    def test_partial_band_agreement(self):
        index = LSHIndex(LSHConfig(8, 4))
        sig_a = np.array([1, 2, 3, 4, 5, 6, 7, 8])
        sig_b = np.array([1, 2, 3, 4, 9, 9, 9, 9])  # shares band 0 only
        index.add("a", sig_a)
        buckets = index.lookup_signature(sig_b)
        assert buckets[0] == ["a"]
        assert buckets[1] == []

    def test_duplicate_add_ignored(self):
        index = LSHIndex(LSHConfig(4, 2))
        index.add("a", np.arange(4))
        index.add("a", np.arange(4))
        assert len(index) == 1

    def test_wrong_signature_width(self):
        index = LSHIndex(LSHConfig(8, 4))
        with pytest.raises(ConfigurationError):
            index.add("a", np.arange(6))

    def test_lookup_unknown_key(self):
        index = LSHIndex(LSHConfig(4, 2))
        assert index.lookup("ghost") == [[], []]

    def test_bucket_count(self):
        index = LSHIndex(LSHConfig(4, 2))
        index.add("a", np.array([1, 2, 3, 4]))
        index.add("b", np.array([1, 2, 9, 9]))
        assert index.bucket_count() == 3  # shared band-0 bucket + 2 distinct

    def test_remove_prunes_signature_and_buckets(self):
        index = LSHIndex(LSHConfig(4, 2))
        index.add("a", np.array([1, 2, 3, 4]))
        index.add("b", np.array([1, 2, 9, 9]))
        index.remove("b")
        assert len(index) == 1
        assert "b" not in index
        # b's private band-1 bucket is gone; the shared band-0 bucket
        # shrank to just a.
        assert index.bucket_count() == 2
        assert index.lookup("a") == [["a"], ["a"]]

    def test_remove_unknown_key_is_noop(self):
        index = LSHIndex(LSHConfig(4, 2))
        index.add("a", np.arange(4))
        index.remove("ghost")
        assert len(index) == 1

    def test_remove_then_add_rehashes(self):
        index = LSHIndex(LSHConfig(4, 2))
        index.add("a", np.array([1, 2, 3, 4]))
        index.remove("a")
        # Without the removal, add() would silently keep the old
        # signature; after it, the fresh signature must win.
        index.add("a", np.array([7, 7, 7, 7]))
        buckets = index.lookup_signature(np.array([7, 7, 7, 7]))
        assert all(bucket == ["a"] for bucket in buckets)
        assert index.lookup_signature(np.array([1, 2, 3, 4])) == [[], []]


class TestFrequentTypes:
    def test_ubiquitous_types_detected(self, sports_graph, sports_mapping,
                                       sports_lake):
        frequent = frequent_types(
            sports_mapping, sports_graph, sports_lake.table_ids()
        )
        # Every fixture table holds players, teams, and cities: the types
        # shared by all of them are ubiquitous.
        assert "Thing" in frequent
        assert "Agent" in frequent

    def test_threshold_one_keeps_everything(self, sports_graph,
                                            sports_mapping, sports_lake):
        assert frequent_types(
            sports_mapping, sports_graph, sports_lake.table_ids(),
            threshold=1.0,
        ) == frozenset()

    def test_empty_tables(self, sports_graph, sports_mapping):
        assert frequent_types(sports_mapping, sports_graph, []) == frozenset()


class TestTablePrefilter:
    @pytest.fixture()
    def type_prefilter(self, sports_graph, sports_mapping, sports_lake):
        excluded = frequent_types(
            sports_mapping, sports_graph, sports_lake.table_ids()
        )
        scheme = TypeSignatureScheme(sports_graph, 32, excluded_types=excluded)
        return TablePrefilter(scheme, LSHConfig(32, 8), sports_mapping)

    def test_scheme_config_width_mismatch(self, sports_graph, sports_mapping):
        scheme = TypeSignatureScheme(sports_graph, 16)
        with pytest.raises(ConfigurationError):
            TablePrefilter(scheme, LSHConfig(32, 8), sports_mapping)

    def test_candidates_contain_exact_match_tables(self, type_prefilter,
                                                   sports_mapping):
        query = Query.single("kg:player0", "kg:team0")
        candidates = type_prefilter.candidate_tables(query)
        # Tables actually containing the query entities must survive.
        for uri in ("kg:player0", "kg:team0"):
            assert sports_mapping.tables_with_entity(uri) <= candidates

    def test_votes_shrink_candidates(self, type_prefilter):
        query = Query.single("kg:player0", "kg:team0")
        low = type_prefilter.candidate_tables(query, votes=1)
        high = type_prefilter.candidate_tables(query, votes=50)
        assert high <= low

    def test_invalid_votes(self, type_prefilter):
        with pytest.raises(ConfigurationError):
            type_prefilter.candidate_tables(Query.single("kg:player0"),
                                            votes=0)

    def test_unhashable_query_returns_all_indexed(self, type_prefilter):
        # An entity with no types cannot be hashed -> fall back to all.
        query = Query.single("kg:ghost")
        assert type_prefilter.candidate_tables(query) == \
            set(type_prefilter.indexed_tables)

    def test_aggregate_query_mode(self, type_prefilter):
        query = Query([("kg:player0", "kg:team0"),
                       ("kg:player1", "kg:team1")])
        candidates = type_prefilter.candidate_tables(query,
                                                     aggregate_query=True)
        assert isinstance(candidates, set)

    def test_reduction(self, type_prefilter):
        assert type_prefilter.reduction(10, {"a", "b"}) == 0.8
        assert type_prefilter.reduction(0, set()) == 0.0
        assert type_prefilter.reduction(4, ["x", "x", "y"]) == 0.5

    def test_embedding_prefilter(self, sports_embeddings, sports_mapping):
        scheme = EmbeddingSignatureScheme(sports_embeddings, 32)
        prefilter = TablePrefilter(scheme, LSHConfig(32, 8), sports_mapping)
        query = Query.single("kg:player0", "kg:team0")
        candidates = prefilter.candidate_tables(query)
        assert sports_mapping.tables_with_entity("kg:player0") <= candidates

    def test_column_aggregation_mode(self, sports_graph, sports_mapping):
        scheme = TypeSignatureScheme(sports_graph, 32)
        prefilter = TablePrefilter(
            scheme, LSHConfig(32, 8), sports_mapping, column_aggregation=True
        )
        # Keys are (table, column) groups: 12 tables x 3 entity columns.
        assert prefilter.num_indexed_keys() == 36
        query = Query.single("kg:player0", "kg:team0")
        candidates = prefilter.candidate_tables(query)
        assert candidates <= set(prefilter.indexed_tables)

    def test_indexed_tables_cover_linked_tables(self, type_prefilter,
                                                sports_lake):
        assert set(type_prefilter.indexed_tables) == set(
            sports_lake.table_ids()
        )


class TestPrefilterLifecycle:
    """remove_table / add_table round trips (the serve mutation path)."""

    @staticmethod
    def _column_prefilter(sports_graph, mapping):
        scheme = TypeSignatureScheme(sports_graph, 32)
        return TablePrefilter(
            scheme, LSHConfig(32, 8), mapping, column_aggregation=True
        )

    def test_remove_prunes_column_keys(self, sports_graph, sports_mapping):
        prefilter = self._column_prefilter(
            sports_graph, sports_mapping.copy()
        )
        keys_before = prefilter.num_indexed_keys()
        buckets_before = prefilter._index.bucket_count()
        prefilter.remove_table("T00")
        # T00's three (table, column) groups are gone everywhere: the
        # key count, the postings, and the bucket structure.
        assert prefilter.num_indexed_keys() == keys_before - 3
        assert not any(
            key.startswith("T00#") for key in prefilter._postings
        )
        assert "T00#0" not in prefilter._index
        assert prefilter._index.bucket_count() <= buckets_before
        assert "T00" not in prefilter.indexed_tables
        query = Query.single("kg:player0", "kg:team0")
        assert "T00" not in prefilter.candidate_tables(query)

    def test_remove_readd_round_trip(self, sports_graph, sports_mapping):
        prefilter = self._column_prefilter(
            sports_graph, sports_mapping.copy()
        )
        keys_before = prefilter.num_indexed_keys()
        snapshot_before = prefilter.to_dict()
        prefilter.remove_table("T00")
        prefilter.add_table("T00")
        assert prefilter.num_indexed_keys() == keys_before
        assert "T00" in prefilter.indexed_tables
        query = Query.single("kg:player0", "kg:team0")
        assert "T00" in prefilter.candidate_tables(query)
        # The persisted form is identical to the pre-removal snapshot:
        # nothing leaked, nothing went stale.
        assert prefilter.to_dict() == snapshot_before

    def test_readd_rehashes_changed_columns(self, sports_graph,
                                            sports_mapping):
        mapping = sports_mapping.copy()
        prefilter = self._column_prefilter(sports_graph, mapping)
        old_signature = np.array(
            prefilter._index._signatures["T00#0"], copy=True
        )
        prefilter.remove_table("T00")
        # The table's contents change while it is out of the index:
        # column 0 now holds cities instead of players.
        mapping.unlink_table("T00")
        for row in range(4):
            mapping.link("T00", row, 0, f"kg:city{row}")
        prefilter.add_table("T00")
        new_signature = prefilter._index._signatures["T00#0"]
        assert not np.array_equal(old_signature, new_signature), (
            "re-added table reused its stale pre-removal signature"
        )
        # And the behavioral consequence: a city query now votes for
        # T00 through the re-hashed column group.
        votes = prefilter._table_votes_for_signature(new_signature)
        assert votes["T00"] >= 1

    def test_remove_missing_table_is_noop(self, sports_graph,
                                          sports_mapping):
        prefilter = self._column_prefilter(
            sports_graph, sports_mapping.copy()
        )
        keys_before = prefilter.num_indexed_keys()
        prefilter.remove_table("ghost")
        assert prefilter.num_indexed_keys() == keys_before

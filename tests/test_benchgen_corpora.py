"""Tests for table generation, queries, synthetic expansion, workload."""

import pytest

from repro.benchgen import (
    GITTABLES_PROFILE,
    PROFILES,
    SYNTHETIC_PROFILE,
    WT2015_PROFILE,
    CorpusProfile,
    QueryGenerator,
    TableGenerator,
    WorldBuilder,
    build_benchmark,
    expand_lake,
)
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def world():
    return WorldBuilder(scale=0.3, seed=2).build()


class TestCorpusProfile:
    def test_paper_profiles_registered(self):
        assert set(PROFILES) == {"wt2015", "wt2019", "gittables", "synthetic"}
        assert PROFILES["gittables"].prelinked is False

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CorpusProfile("x", 1.0, 5.0, 0.3)
        with pytest.raises(ConfigurationError):
            CorpusProfile("x", 10.0, 5.0, 1.5)


class TestTableGenerator:
    def test_generate_counts_and_ids(self, world):
        corpus = TableGenerator(world, WT2015_PROFILE, seed=0).generate(40)
        assert len(corpus.lake) == 40
        assert corpus.lake.table_ids()[0] == "wt2015-000000"
        assert len(corpus.topics) == 40

    def test_metadata_stamped(self, world):
        corpus = TableGenerator(world, WT2015_PROFILE, seed=0).generate(10)
        for table in corpus.lake:
            assert "category" in table.metadata
            assert "domain" in table.metadata
            assert corpus.topics[table.table_id] == table.metadata["category"]

    def test_prelinked_mapping_points_at_real_cells(self, world):
        corpus = TableGenerator(world, WT2015_PROFILE, seed=1).generate(20)
        assert corpus.mapping is not None
        for (table_id, row, col), uri in corpus.mapping.all_links():
            table = corpus.lake.get(table_id)
            assert table.cell(row, col) == world.graph.get(uri).label

    def test_gittables_has_no_mapping(self, world):
        corpus = TableGenerator(world, GITTABLES_PROFILE, seed=1).generate(5)
        assert corpus.mapping is None

    def test_shape_targets_hit(self, world):
        corpus = TableGenerator(world, SYNTHETIC_PROFILE, seed=3).generate(150)
        rows = [t.num_rows for t in corpus.lake]
        cols = [t.num_columns for t in corpus.lake]
        assert abs(sum(rows) / len(rows) - SYNTHETIC_PROFILE.mean_rows) < 3.0
        assert abs(sum(cols) / len(cols) - SYNTHETIC_PROFILE.mean_columns) < 1.0

    def test_determinism(self, world):
        a = TableGenerator(world, WT2015_PROFILE, seed=5).generate(10)
        b = TableGenerator(world, WT2015_PROFILE, seed=5).generate(10)
        for ta, tb in zip(a.lake, b.lake):
            assert ta.rows == tb.rows


class TestQueryGenerator:
    def test_paired_queries(self, world):
        queries = QueryGenerator(world, seed=0).generate(10)
        assert len(queries.one_tuple) == 10
        assert len(queries.five_tuple) == 10
        assert len(queries) == 20

    def test_one_tuple_contained_in_five(self, world):
        queries = QueryGenerator(world, seed=1).generate(5)
        for qid, one in queries.one_tuple.items():
            five = queries.five_tuple[qid.replace("-1t", "-5t")]
            assert one.tuples[0] == five.tuples[0]
            assert len(five) == 5

    def test_categories_assigned(self, world):
        queries = QueryGenerator(world, seed=2).generate(5)
        for qid in queries.all_queries():
            assert "/" in queries.categories[qid]
            assert queries.domains[qid]

    def test_query_entities_exist_in_graph(self, world):
        queries = QueryGenerator(world, seed=3).generate(5)
        for query in queries.all_queries().values():
            for uri in query.entities():
                assert uri in world.graph

    def test_invalid_count(self, world):
        with pytest.raises(ConfigurationError):
            QueryGenerator(world).generate(0)

    def test_min_width_too_large(self, world):
        with pytest.raises(ConfigurationError):
            QueryGenerator(world, min_width=10)


class TestExpandLake:
    def test_expansion_size(self, world):
        corpus = TableGenerator(world, WT2015_PROFILE, seed=4).generate(10)
        expanded, mapping = expand_lake(
            corpus.lake, corpus.mapping, 25, seed=0
        )
        assert len(expanded) == 35
        assert mapping is not None

    def test_exclude_base(self, world):
        corpus = TableGenerator(world, WT2015_PROFILE, seed=4).generate(10)
        expanded, _ = expand_lake(
            corpus.lake, corpus.mapping, 7, include_base=False
        )
        assert len(expanded) == 7

    def test_rows_come_from_one_source(self, world):
        corpus = TableGenerator(world, WT2015_PROFILE, seed=4).generate(10)
        expanded, _ = expand_lake(corpus.lake, corpus.mapping, 20, seed=1)
        sources = {tuple(t.rows): t for t in corpus.lake}
        for table in expanded:
            if not table.table_id.startswith("syn-"):
                continue
            candidates = [
                s for s in corpus.lake
                if s.attributes == table.attributes
                and all(row in s.rows for row in table.rows)
            ]
            assert candidates, f"no source table covers {table.table_id}"

    def test_links_carried_over(self, world):
        corpus = TableGenerator(world, WT2015_PROFILE, seed=4).generate(10)
        expanded, mapping = expand_lake(corpus.lake, corpus.mapping, 30,
                                        seed=2)
        synthetic_links = [
            (ref, uri) for ref, uri in mapping.all_links()
            if ref[0].startswith("syn-")
        ]
        assert synthetic_links
        for (table_id, row, col), uri in synthetic_links:
            table = expanded.get(table_id)
            assert table.cell(row, col) == world.graph.get(uri).label

    def test_no_mapping_passthrough(self, world):
        corpus = TableGenerator(world, GITTABLES_PROFILE, seed=4).generate(4)
        _, mapping = expand_lake(corpus.lake, None, 5)
        assert mapping is None

    def test_validation(self, world):
        corpus = TableGenerator(world, WT2015_PROFILE, seed=4).generate(2)
        with pytest.raises(ConfigurationError):
            expand_lake(corpus.lake, corpus.mapping, -1)
        from repro.datalake import DataLake
        with pytest.raises(ConfigurationError):
            expand_lake(DataLake(), None, 5)


class TestBuildBenchmark:
    def test_bundle_complete(self, small_benchmark):
        bench = small_benchmark
        assert len(bench.lake) == 200
        assert len(bench.queries.one_tuple) == 6
        assert len(bench.mapping) > 0
        stats = bench.statistics()
        assert stats.num_tables == 200
        assert 0.15 < stats.mean_coverage < 0.40

    def test_ground_truth_nonempty_for_queries(self, small_benchmark):
        for query_id in small_benchmark.queries.one_tuple:
            truth = small_benchmark.ground_truth(query_id)
            assert len(truth.relevant_ids()) > 0

    def test_gittables_benchmark_links_via_label_index(self):
        bench = build_benchmark(
            GITTABLES_PROFILE, num_tables=20, num_query_pairs=2,
            kg_scale=0.3, seed=5,
        )
        assert len(bench.mapping) > 0
        # Linked cells hold the exact entity label.
        for (table_id, row, col), uri in list(bench.mapping.all_links())[:50]:
            cell = bench.lake.get(table_id).cell(row, col)
            assert str(cell).lower() == bench.graph.get(uri).label.lower()

    def test_world_reuse(self, small_benchmark):
        bench2 = build_benchmark(
            WT2015_PROFILE, num_tables=10, num_query_pairs=2,
            world=small_benchmark.world, seed=99,
        )
        assert bench2.world is small_benchmark.world

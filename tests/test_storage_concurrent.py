"""Concurrent readers over one spilled index directory.

Cluster workers cold-start by memmapping the same ``save_index``
directory — N processes, one physical copy of ``arrays.bin`` in the
page cache.  These tests pin the safety properties that deployment
leans on: independent reader processes observe *bit-identical* array
bytes (and therefore produce bit-identical shard scores), and a
truncated payload fails loudly in every reader instead of serving
garbage from the intact prefix.
"""

import hashlib
import multiprocessing
import os
import random
import sys

import numpy as np
import pytest

from repro.core.kernel import SegmentedCorpusIndex, load_index, save_index
from repro.core.kernel.storage import ARRAYS_FILENAME, _CORPUS_ARRAYS
from repro.exceptions import IndexStorageError

from tests.test_core_kernel import make_lake, make_sigma

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="fork-based reader processes"
)


def index_digest(index: SegmentedCorpusIndex) -> str:
    """SHA-256 over every corpus array of every segment, in order."""
    digest = hashlib.sha256()
    for segment in index.segments:
        for name in _CORPUS_ARRAYS:
            array = np.ascontiguousarray(getattr(segment, name))
            digest.update(name.encode())
            digest.update(str(array.dtype).encode())
            digest.update(array.tobytes())
    return digest.hexdigest()


def _read_in_child(path, sigma, mapping, queue):
    """Forked reader: memmap the directory and report what it saw."""
    try:
        index = load_index(path, sigma, mapping)
        stats = index.stats()
        queue.put(
            ("ok", index_digest(index), stats.live_tables, stats.segments)
        )
    except IndexStorageError as exc:
        queue.put(("storage-error", str(exc), None, None))


def spawn_readers(path, sigma, mapping, count=2):
    context = multiprocessing.get_context("fork")
    queue = context.Queue()
    readers = [
        context.Process(
            target=_read_in_child, args=(path, sigma, mapping, queue)
        )
        for _ in range(count)
    ]
    for reader in readers:
        reader.start()
    outcomes = [queue.get(timeout=60) for _ in readers]
    for reader in readers:
        reader.join(timeout=60)
    return outcomes


@pytest.fixture()
def saved_index(tmp_path):
    rng = random.Random(29)
    lake, mapping = make_lake(rng, num_tables=10)
    sigma = make_sigma("types", rng)
    index = SegmentedCorpusIndex.compile(
        lake, mapping, sigma, segment_tables=4
    )
    save_index(index, str(tmp_path))
    return str(tmp_path), sigma, mapping, index


class TestConcurrentReaders:
    def test_two_processes_see_bit_identical_arrays(self, saved_index):
        path, sigma, mapping, built = saved_index
        expected = index_digest(built)
        outcomes = spawn_readers(path, sigma, mapping, count=2)
        assert [status for status, *_ in outcomes] == ["ok", "ok"]
        digests = {digest for _, digest, _, _ in outcomes}
        # Both child memmaps AND the in-process compile agree byte
        # for byte — the "every worker holds the same corpus" premise.
        assert digests == {expected}
        for _, _, live_tables, segments in outcomes:
            assert live_tables == built.stats().live_tables
            assert segments == built.stats().segments

    def test_reader_coexists_with_open_memmap(self, saved_index):
        # A second process mapping the directory while the parent holds
        # its own live memmap must not disturb either view.
        path, sigma, mapping, built = saved_index
        parent_view = load_index(path, sigma, mapping)
        before = index_digest(parent_view)
        outcomes = spawn_readers(path, sigma, mapping, count=1)
        assert outcomes[0][0] == "ok"
        assert outcomes[0][1] == before
        assert index_digest(parent_view) == before  # parent undisturbed

    def test_truncated_arrays_fail_in_every_reader(self, saved_index):
        path, sigma, mapping, _ = saved_index
        arrays_path = os.path.join(path, ARRAYS_FILENAME)
        size = os.path.getsize(arrays_path)
        with open(arrays_path, "r+b") as handle:
            handle.truncate(size - 7)
        outcomes = spawn_readers(path, sigma, mapping, count=2)
        assert [status for status, *_ in outcomes] == [
            "storage-error", "storage-error"
        ]
        with pytest.raises(IndexStorageError):
            load_index(path, sigma, mapping)

"""End-to-end scatter-gather serving tests over real sockets.

Everything here drives a :class:`~repro.cluster.ClusterHarness` — a
coordinator plus N workers on ephemeral localhost ports — and checks
the headline contract: cluster responses are *bit-identical* to a
single-process :class:`~repro.system.Thetis`, in ``exact`` and
``prefilter`` mode alike, including while the fleet is degraded.
"""

import http.client
import json
import time

import pytest

from repro.benchgen import WT2015_PROFILE, build_benchmark
from repro.cluster import ClusterConfig, ClusterHarness
from repro.system import Thetis

K = 5


def post_search(port, payload, timeout=30.0):
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=timeout)
    try:
        connection.request(
            "POST", "/search", body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def get_json(port, path, timeout=30.0):
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def ranking(body):
    return [(entry["score"], entry["table_id"])
            for entry in body["results"]]


def wait_until(predicate, timeout=20.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not reached in time")


@pytest.fixture(scope="module")
def cluster_bench():
    return build_benchmark(
        WT2015_PROFILE, num_tables=60, num_query_pairs=3, seed=7
    )


@pytest.fixture(scope="module")
def reference(cluster_bench):
    with Thetis(
        cluster_bench.lake, cluster_bench.graph, cluster_bench.mapping,
        engine_kind="vectorized",
    ) as thetis:
        yield thetis


@pytest.fixture(scope="module")
def queries(cluster_bench):
    return list(cluster_bench.queries.all_queries().values())[:4]


def make_factory(bench):
    def factory(index):
        return Thetis(
            bench.lake, bench.graph, bench.mapping,
            engine_kind="vectorized",
        )

    return factory


def payload_of(query, mode=None, k=K):
    body = {"tuples": [list(t) for t in query.tuples], "k": k}
    if mode is not None:
        body["mode"] = mode
    return body


@pytest.fixture(scope="module")
def fleet(cluster_bench):
    config = ClusterConfig(heartbeat_interval=0.2, dead_after=2)
    with ClusterHarness(make_factory(cluster_bench), workers=2,
                        config=config) as harness:
        yield harness


class TestParity:
    def test_exact_mode_is_bit_equal(self, fleet, reference, queries):
        for query in queries:
            expected = [(s.score, s.table_id)
                        for s in reference.search(query, k=K)]
            status, body = post_search(fleet.port, payload_of(query))
            assert status == 200
            assert body["degraded"] is False
            assert ranking(body) == expected

    def test_prefilter_mode_is_bit_equal(self, fleet, reference, queries):
        for query in queries:
            expected = [
                (s.score, s.table_id)
                for s in reference.search(query, k=K, mode="prefilter")
            ]
            status, body = post_search(
                fleet.port, payload_of(query, mode="prefilter")
            )
            assert status == 200
            assert ranking(body) == expected

    def test_full_coverage_is_reported(self, fleet, queries):
        status, body = post_search(fleet.port, payload_of(queries[0]))
        assert status == 200
        cluster = body["cluster"]
        assert cluster["covered_tables"] == cluster["tables_total"] == 60
        assert cluster["uncovered_tables"] == 0
        assert cluster["failed_workers"] == []
        assert cluster["hedged_retry"] is False

    def test_union_and_join_tasks_are_bit_equal(
        self, fleet, reference, queries
    ):
        """Task scatters merge shard partials into the exact ranking.

        Every worker restricts the vectorized union/join engines to its
        shard; ``merge_topk`` over the per-shard partials must equal a
        single-process search of the same task.
        """
        for task in ("union", "join"):
            for query in queries[:2]:
                expected = [
                    (s.score, s.table_id)
                    for s in reference.search(query, k=K, task=task)
                ]
                status, body = post_search(
                    fleet.port, dict(payload_of(query), task=task)
                )
                assert status == 200
                assert body["task"] == task
                assert body["degraded"] is False
                assert ranking(body) == expected

    def test_bad_request_is_400(self, fleet):
        status, body = post_search(fleet.port, {"tuples": []})
        assert status == 400

    def test_unknown_path_is_404(self, fleet):
        status, _ = get_json(fleet.port, "/nope")
        assert status == 404


class TestEndpoints:
    def test_healthz(self, fleet):
        status, body = get_json(fleet.port, "/healthz")
        assert status == 200 and body["status"] == "ok"

    def test_readyz(self, fleet):
        status, body = get_json(fleet.port, "/readyz")
        assert status == 200
        assert body["workers_live"] == 2

    def test_cluster_status_lists_workers(self, fleet):
        status, body = get_json(fleet.port, "/cluster/status")
        assert status == 200
        ids = sorted(w["worker_id"] for w in body["workers"])
        assert ids == ["worker-0", "worker-1"]
        assert body["workers_live"] == 2
        assert body["epoch"] >= 2  # one flip per registration
        # Heartbeats scrape per-worker stats into the status document.
        scraped = wait_until(lambda: all(
            "tables_total" in w
            for w in get_json(fleet.port, "/cluster/status")[1]["workers"]
        ) or None)
        assert scraped

    def test_metrics_cluster_block(self, fleet, queries):
        post_search(fleet.port, payload_of(queries[0]))
        status, body = get_json(fleet.port, "/metrics")
        assert status == 200
        cluster = body["cluster"]
        assert cluster["workers_total"] == 2
        assert cluster["workers_live"] == 2
        assert cluster["scatters_total"] >= 1
        assert cluster["shard_requests_total"] >= 2
        assert body["requests_total"] >= 1


class TestFailover:
    def test_crash_degrade_promote_recover(self, cluster_bench, reference,
                                           queries):
        """The kill-a-worker lifecycle, end to end.

        With R=2 replication a single death keeps every table covered:
        the crash-window response must stay 200 and bit-identical (via
        hedged retry to replicas), flagged ``degraded`` until the
        heartbeat loop declares the worker dead and flips the epoch.
        """
        query = queries[0]
        expected = [(s.score, s.table_id)
                    for s in reference.search(query, k=K)]
        config = ClusterConfig(heartbeat_interval=0.2, dead_after=2)
        with ClusterHarness(make_factory(cluster_bench), workers=3,
                            config=config) as harness:
            status, body = post_search(harness.port, payload_of(query))
            assert status == 200 and not body["degraded"]

            harness.crash_worker(0)
            status, body = post_search(harness.port, payload_of(query))
            assert status == 200  # never a 500 during fail-over
            assert body["degraded"] is True
            assert body["cluster"]["failed_workers"] == ["worker-0"]
            assert body["cluster"]["hedged_retry"] is True
            assert ranking(body) == expected  # replicas fill the gap

            # Heartbeats mark the worker dead and promote replicas;
            # responses then go clean again.
            def clean():
                status, body = post_search(harness.port, payload_of(query))
                assert status == 200
                return None if body["degraded"] else body

            body = wait_until(clean)
            assert ranking(body) == expected
            _, doc = get_json(harness.port, "/cluster/status")
            states = {w["worker_id"]: w["state"] for w in doc["workers"]}
            assert states["worker-0"] == "dead"

    def test_live_rebalance_add_worker(self, cluster_bench, reference,
                                       queries):
        """Joining a worker flips the epoch with zero downtime."""
        query = queries[0]
        expected = [(s.score, s.table_id)
                    for s in reference.search(query, k=K)]
        config = ClusterConfig(heartbeat_interval=0.2, dead_after=2)
        with ClusterHarness(make_factory(cluster_bench), workers=1,
                            config=config) as harness:
            status, body = post_search(harness.port, payload_of(query))
            assert status == 200 and ranking(body) == expected
            epoch_before = body["cluster"]["epoch"]
            assert body["cluster"]["workers_scattered"] == 1

            harness.add_worker(1)

            def rebalanced():
                status, body = post_search(harness.port, payload_of(query))
                assert status == 200
                scattered = body["cluster"]["workers_scattered"]
                return body if scattered == 2 else None

            body = wait_until(rebalanced)
            assert body["cluster"]["epoch"] > epoch_before
            assert not body["degraded"]
            assert ranking(body) == expected

"""Unit tests for the inverted index and tokenizer."""

from repro.linking import InvertedIndex, tokenize


class TestTokenize:
    def test_lowercase_alnum(self):
        assert tokenize("Tony Giarratano (2005)") == [
            "tony", "giarratano", "2005",
        ]

    def test_empty_and_punctuation_only(self):
        assert tokenize("") == []
        assert tokenize("--- !!!") == []

    def test_numbers_kept(self):
        assert tokenize("route 66") == ["route", "66"]


class TestInvertedIndex:
    def _index(self):
        index = InvertedIndex()
        index.add_many(
            [
                ("e1", "Milwaukee Brewers"),
                ("e2", "Milwaukee"),
                ("e3", "Chicago Cubs"),
                ("e4", "Chicago"),
            ]
        )
        return index

    def test_num_documents(self):
        assert self._index().num_documents == 4

    def test_document_frequency(self):
        index = self._index()
        assert index.document_frequency("milwaukee") == 2
        assert index.document_frequency("cubs") == 1
        assert index.document_frequency("zzz") == 0

    def test_postings(self):
        postings = self._index().postings("chicago")
        assert postings == {"e3": 1, "e4": 1}

    def test_candidates(self):
        assert set(self._index().candidates("Milwaukee Cubs")) == {
            "e1", "e2", "e3",
        }

    def test_search_prefers_exact_short_document(self):
        index = self._index()
        hits = index.search("Milwaukee")
        assert hits[0][0] == "e2"  # shorter doc ranks above "Milwaukee Brewers"

    def test_search_full_label(self):
        index = self._index()
        assert index.search("Milwaukee Brewers", top_k=1)[0][0] == "e1"

    def test_search_no_match(self):
        assert self._index().search("volleyball") == []

    def test_search_empty_query(self):
        assert self._index().search("") == []

    def test_search_empty_index(self):
        assert InvertedIndex().search("anything") == []

    def test_additive_indexing(self):
        index = InvertedIndex()
        index.add("d", "alpha")
        index.add("d", "beta")
        assert index.document_frequency("alpha") == 1
        assert index.document_frequency("beta") == 1
        assert index.num_documents == 1

    def test_deterministic_tie_break(self):
        index = InvertedIndex()
        index.add("b", "same text")
        index.add("a", "same text")
        hits = index.search("same text")
        assert [h[0] for h in hits] == ["a", "b"]

    def test_top_k_limit(self):
        index = self._index()
        assert len(index.search("Milwaukee Chicago", top_k=2)) == 2

"""End-to-end tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("corpus")
    code = main([
        "generate", "--out", str(out), "--tables", "60",
        "--queries", "2", "--seed", "3",
    ])
    assert code == 0
    return out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--out", "x"])
        assert args.profile == "wt2015"
        assert args.tables == 500

    def test_serve_defaults(self):
        args = build_parser().parse_args([
            "serve", "--graph", "g", "--lake", "l", "--mapping", "m",
        ])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.method == "types"
        assert args.max_batch == 8
        assert args.flush_interval == pytest.approx(0.002)
        assert args.queue_depth == 64
        assert args.timeout == pytest.approx(30.0)
        assert args.batch_workers == 1
        assert not args.no_warm

    def test_serve_custom_knobs(self):
        args = build_parser().parse_args([
            "serve", "--graph", "g", "--lake", "l", "--mapping", "m",
            "--port", "0", "--max-batch", "16", "--queue-depth", "8",
            "--timeout", "2.5", "--no-warm", "--workers", "4",
        ])
        assert args.port == 0
        assert args.max_batch == 16
        assert args.queue_depth == 8
        assert args.timeout == pytest.approx(2.5)
        assert args.no_warm
        assert args.workers == 4


class TestGenerate(object):
    def test_writes_all_artifacts(self, corpus_dir):
        for name in ("graph.json", "lake.json", "mapping.json",
                     "queries.json"):
            assert (corpus_dir / name).exists(), name

    def test_queries_payload_shape(self, corpus_dir):
        payload = json.loads((corpus_dir / "queries.json").read_text())
        assert len(payload["queries"]) == 4  # 2 pairs x (1t + 5t)
        assert set(payload["categories"]) == set(payload["queries"])


class TestStats:
    def test_stats_with_mapping(self, corpus_dir, capsys):
        code = main([
            "stats", "--lake", str(corpus_dir / "lake.json"),
            "--mapping", str(corpus_dir / "mapping.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "T=" in out and "Cov=" in out

    def test_stats_without_mapping(self, corpus_dir, capsys):
        code = main(["stats", "--lake", str(corpus_dir / "lake.json")])
        assert code == 0
        assert "Cov=  0.0%" in capsys.readouterr().out


class TestLink:
    def test_link_round_trip(self, corpus_dir, tmp_path, capsys):
        out_path = tmp_path / "relinked.json"
        code = main([
            "link", "--graph", str(corpus_dir / "graph.json"),
            "--lake", str(corpus_dir / "lake.json"),
            "--out", str(out_path), "--exact-only",
        ])
        assert code == 0
        assert out_path.exists()
        assert "linked" in capsys.readouterr().out


class TestSearch:
    def _first_query_tuple(self, corpus_dir):
        payload = json.loads((corpus_dir / "queries.json").read_text())
        one_tuple_ids = [q for q in payload["queries"] if q.endswith("-1t")]
        return payload["queries"][one_tuple_ids[0]][0]

    def test_search_types(self, corpus_dir, capsys):
        entities = self._first_query_tuple(corpus_dir)
        code = main([
            "search",
            "--graph", str(corpus_dir / "graph.json"),
            "--lake", str(corpus_dir / "lake.json"),
            "--mapping", str(corpus_dir / "mapping.json"),
            "--tuple", ",".join(entities),
            "-k", "3",
        ])
        assert code == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l]
        assert len(lines) == 3
        assert lines[0].startswith("  1.")

    def test_search_with_lsh_and_explain(self, corpus_dir, capsys):
        entities = self._first_query_tuple(corpus_dir)
        code = main([
            "search",
            "--graph", str(corpus_dir / "graph.json"),
            "--lake", str(corpus_dir / "lake.json"),
            "--mapping", str(corpus_dir / "mapping.json"),
            "--tuple", ",".join(entities),
            "-k", "2", "--lsh", "--explain",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SemRel" in out  # explanation rendered

    def test_search_multi_tuple(self, corpus_dir, capsys):
        entities = self._first_query_tuple(corpus_dir)
        code = main([
            "search",
            "--graph", str(corpus_dir / "graph.json"),
            "--lake", str(corpus_dir / "lake.json"),
            "--mapping", str(corpus_dir / "mapping.json"),
            "--tuple", ",".join(entities),
            "--tuple", entities[0],
            "-k", "2",
        ])
        assert code == 0


class TestProfile:
    def test_profile_graph(self, corpus_dir, capsys):
        code = main(["profile", "--graph", str(corpus_dir / "graph.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "nodes:" in out
        assert "most frequent types:" in out

    def test_profile_tables(self, corpus_dir, capsys):
        code = main([
            "profile", "--lake", str(corpus_dir / "lake.json"),
            "--mapping", str(corpus_dir / "mapping.json"),
            "--top", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("table '") == 2
        assert "linked=" in out

    def test_profile_specific_table(self, corpus_dir, capsys):
        import json as _json

        lake_payload = _json.loads((corpus_dir / "lake.json").read_text())
        table_id = lake_payload["tables"][0]["id"]
        code = main([
            "profile", "--lake", str(corpus_dir / "lake.json"),
            "--table", table_id,
        ])
        assert code == 0
        assert table_id in capsys.readouterr().out

    def test_profile_nothing_errors(self, capsys):
        assert main(["profile"]) == 2


class TestTune:
    def test_tune_runs_and_recommends(self, corpus_dir, capsys):
        code = main([
            "tune",
            "--graph", str(corpus_dir / "graph.json"),
            "--lake", str(corpus_dir / "lake.json"),
            "--mapping", str(corpus_dir / "mapping.json"),
            "--queries", str(corpus_dir / "queries.json"),
            "--config", "16,8", "--config", "30,10",
            "--sample", "2", "--min-retention", "0.5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended:" in out
        assert "(16, 8)" in out and "(30, 10)" in out


class TestBench:
    def test_bench_writes_report(self, corpus_dir, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main([
            "bench",
            "--graph", str(corpus_dir / "graph.json"),
            "--lake", str(corpus_dir / "lake.json"),
            "--mapping", str(corpus_dir / "mapping.json"),
            "--queries", str(corpus_dir / "queries.json"),
            "--out", str(out), "-k", "5",
        ])
        assert code == 0
        content = out.read_text()
        assert "# Semantic table search benchmark" in content
        assert "| STST |" in content
        assert "| BM25 |" in content
        assert "STST vs BM25 (NDCG)" in content
        printed = capsys.readouterr().out
        assert "report written to" in printed


class TestSearchEmbeddings:
    def test_search_with_embeddings_method(self, corpus_dir, capsys):
        import json as _json

        payload = _json.loads((corpus_dir / "queries.json").read_text())
        one_tuple_ids = [q for q in payload["queries"] if q.endswith("-1t")]
        entities = payload["queries"][one_tuple_ids[0]][0]
        code = main([
            "search",
            "--graph", str(corpus_dir / "graph.json"),
            "--lake", str(corpus_dir / "lake.json"),
            "--mapping", str(corpus_dir / "mapping.json"),
            "--tuple", ",".join(entities),
            "-k", "2", "--method", "embeddings", "--dimensions", "8",
        ])
        assert code == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l]
        assert len(lines) == 2


class TestErrorHandling:
    def test_missing_file_reports_error(self, capsys):
        code = main(["stats", "--lake", "/nonexistent/lake.json"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_corrupt_json_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = main(["stats", "--lake", str(bad)])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_profile_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--out", "x", "--profile", "nope"]
            )


class TestContextualLink:
    def test_contextual_flag(self, corpus_dir, tmp_path, capsys):
        out_path = tmp_path / "contextual.json"
        code = main([
            "link", "--graph", str(corpus_dir / "graph.json"),
            "--lake", str(corpus_dir / "lake.json"),
            "--out", str(out_path), "--contextual",
        ])
        assert code == 0
        assert out_path.exists()

"""Tests for versioned engine snapshots and copy-and-swap updates."""

import threading

import pytest

from repro import Query, Thetis
from repro.datalake import Table
from repro.exceptions import ServeError
from repro.serve.snapshot import EngineSnapshot, SnapshotManager


class FakeEngine:
    """Stands in for Thetis where only close() matters."""

    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


def fresh_thetis(sports_lake, sports_graph, sports_mapping) -> Thetis:
    """A private Thetis over copies of the session fixtures.

    Snapshot managers take ownership and close their engine, and
    mutations must never leak into the shared session corpus.
    """
    reference = Thetis(sports_lake, sports_graph, sports_mapping)
    lake, mapping = reference.snapshot_inputs()
    return Thetis(lake, sports_graph, mapping)


def extra_table(table_id: str = "TX") -> Table:
    return Table(
        table_id,
        ["Player", "Team"],
        [["Player 0", "Team 0"], ["Player 8", "Team 0"]],
        metadata={"caption": "extra"},
    )


QUERY = Query.single("kg:player0", "kg:team0", "kg:city0")


class TestEngineSnapshot:
    def test_refcount_close_after_drain(self):
        engine = FakeEngine()
        snapshot = EngineSnapshot(engine, version=0)
        snapshot.acquire()
        snapshot.acquire()
        snapshot.retire()
        assert not engine.closed  # two readers still on it
        snapshot.release()
        assert not engine.closed
        snapshot.release()
        assert engine.closed  # retired AND drained

    def test_retire_with_no_readers_closes_immediately(self):
        engine = FakeEngine()
        snapshot = EngineSnapshot(engine, version=0)
        snapshot.retire()
        assert engine.closed

    def test_retire_idempotent(self):
        engine = FakeEngine()
        snapshot = EngineSnapshot(engine, version=0)
        snapshot.retire()
        snapshot.retire()
        assert engine.closed

    def test_acquire_after_drain_rejected(self):
        snapshot = EngineSnapshot(FakeEngine(), version=0)
        snapshot.retire()
        with pytest.raises(ServeError):
            snapshot.acquire()


class TestSnapshotManager:
    def test_checkout_yields_current(self, sports_lake, sports_graph,
                                     sports_mapping):
        manager = SnapshotManager(
            fresh_thetis(sports_lake, sports_graph, sports_mapping)
        )
        try:
            with manager.checkout() as snapshot:
                assert snapshot.version == 0
                results = snapshot.thetis.search(QUERY, k=3)
                assert results.table_ids()[0] == "T00"
        finally:
            manager.close()

    def test_apply_swaps_version_and_contents(self, sports_lake,
                                              sports_graph,
                                              sports_mapping):
        manager = SnapshotManager(
            fresh_thetis(sports_lake, sports_graph, sports_mapping)
        )
        try:
            old_engine = manager.current.thetis
            manager.apply(
                lambda thetis: thetis.add_table(extra_table(), link=True)
            )
            assert manager.version == 1
            # The retired generation had no readers, so it closed.
            assert old_engine.closed
            with manager.checkout() as snapshot:
                assert "TX" in snapshot.thetis.lake
                assert snapshot.version == 1
        finally:
            manager.close()

    def test_inflight_reader_finishes_on_old_generation(
            self, sports_lake, sports_graph, sports_mapping):
        manager = SnapshotManager(
            fresh_thetis(sports_lake, sports_graph, sports_mapping)
        )
        try:
            with manager.checkout() as snapshot:
                manager.apply(
                    lambda thetis: thetis.add_table(extra_table(),
                                                    link=True)
                )
                # The swap happened, but this reader's pinned engine is
                # still the pre-mutation generation and still open.
                assert manager.version == 1
                assert snapshot.version == 0
                assert "TX" not in snapshot.thetis.lake
                assert not snapshot.thetis.closed
                results = snapshot.thetis.search(QUERY, k=3)
                assert results.table_ids()[0] == "T00"
                old_engine = snapshot.thetis
            # Released: the retired generation drains and closes.
            assert old_engine.closed
        finally:
            manager.close()

    def test_failed_mutation_leaves_state_unchanged(
            self, sports_lake, sports_graph, sports_mapping):
        manager = SnapshotManager(
            fresh_thetis(sports_lake, sports_graph, sports_mapping)
        )
        try:
            current = manager.current.thetis
            with pytest.raises(RuntimeError, match="bad mutation"):
                manager.apply(
                    lambda thetis: (_ for _ in ()).throw(
                        RuntimeError("bad mutation")
                    )
                )
            assert manager.version == 0
            assert manager.current.thetis is current
            assert not current.closed
            with manager.checkout() as snapshot:
                assert snapshot.thetis.search(QUERY, k=1)
        finally:
            manager.close()

    def test_mutations_do_not_touch_session_fixtures(
            self, sports_lake, sports_graph, sports_mapping):
        manager = SnapshotManager(
            fresh_thetis(sports_lake, sports_graph, sports_mapping)
        )
        try:
            manager.apply(
                lambda thetis: thetis.add_table(extra_table(), link=True)
            )
            assert "TX" not in sports_lake
            assert len(sports_lake) == 12
        finally:
            manager.close()

    def test_close_then_checkout_rejected(self, sports_lake, sports_graph,
                                          sports_mapping):
        engine = fresh_thetis(sports_lake, sports_graph, sports_mapping)
        manager = SnapshotManager(engine)
        manager.close()
        assert engine.closed
        with pytest.raises(ServeError):
            with manager.checkout():
                pass
        with pytest.raises(ServeError):
            manager.apply(lambda thetis: None)

    def test_close_idempotent(self, sports_lake, sports_graph,
                              sports_mapping):
        manager = SnapshotManager(
            fresh_thetis(sports_lake, sports_graph, sports_mapping)
        )
        manager.close()
        manager.close()

    def test_on_swap_callback(self, sports_lake, sports_graph,
                              sports_mapping):
        versions = []
        manager = SnapshotManager(
            fresh_thetis(sports_lake, sports_graph, sports_mapping),
            on_swap=versions.append,
        )
        try:
            manager.apply(
                lambda thetis: thetis.add_table(extra_table("TA"),
                                                link=True)
            )
            manager.apply(
                lambda thetis: thetis.add_table(extra_table("TB"),
                                                link=True)
            )
            assert versions == [1, 2]
        finally:
            manager.close()

    def test_warm_on_swap(self, sports_lake, sports_graph,
                          sports_mapping):
        manager = SnapshotManager(
            fresh_thetis(sports_lake, sports_graph, sports_mapping),
            warm_method="types",
        )
        try:
            manager.apply(
                lambda thetis: thetis.add_table(extra_table(), link=True)
            )
            engine = manager.current.thetis.engine("types")
            # warm() pre-built the per-table views, TX included.
            assert "TX" in engine._column_counts
        finally:
            manager.close()


class TestSwapUnderConcurrentReaders:
    def test_queries_never_fail_during_swaps(self, sports_lake,
                                             sports_graph,
                                             sports_mapping):
        """Reader threads hammer checkout+search while the main thread
        applies a series of mutations; every search must succeed and
        return a coherent result for its pinned generation."""
        manager = SnapshotManager(
            fresh_thetis(sports_lake, sports_graph, sports_mapping)
        )
        errors = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    with manager.checkout() as snapshot:
                        results = snapshot.thetis.search(QUERY, k=3)
                        assert results.table_ids()[0] == "T00"
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for index in range(5):
                table_id = f"TZ{index}"
                manager.apply(
                    lambda thetis, tid=table_id: thetis.add_table(
                        extra_table(tid), link=True
                    )
                )
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        try:
            assert not errors
            assert manager.version == 5
            with manager.checkout() as snapshot:
                for index in range(5):
                    assert f"TZ{index}" in snapshot.thetis.lake
        finally:
            manager.close()

"""Tests for multi-probe LSH querying."""

import pytest

from repro.core import Query
from repro.exceptions import ConfigurationError
from repro.lsh import EmbeddingSignatureScheme, LSHConfig, TablePrefilter
from repro.lsh.multiprobe import MultiProbePrefilter, probe_band_keys


class TestProbeSequence:
    def test_zero_flips_is_identity(self):
        assert list(probe_band_keys((0, 1, 0), 0)) == [(0, 1, 0)]

    def test_one_flip_neighbors(self):
        probes = list(probe_band_keys((0, 1), 1))
        assert probes[0] == (0, 1)  # own bucket first
        assert set(probes[1:]) == {(1, 1), (0, 0)}

    def test_two_flip_count(self):
        probes = list(probe_band_keys((0, 0, 0, 0), 2))
        # 1 + C(4,1) + C(4,2) = 1 + 4 + 6
        assert len(probes) == 11
        assert len(set(probes)) == 11

    def test_negative_flips_rejected(self):
        with pytest.raises(ConfigurationError):
            list(probe_band_keys((0, 1), -1))


class TestMultiProbePrefilter:
    @pytest.fixture()
    def prefilters(self, sports_embeddings, sports_mapping):
        scheme = EmbeddingSignatureScheme(sports_embeddings, 32, seed=3)
        base = TablePrefilter(scheme, LSHConfig(32, 8), sports_mapping)
        return base, MultiProbePrefilter(base, max_flips=1)

    def test_probing_is_superset_of_plain_lookup(self, prefilters):
        base, multi = prefilters
        for uri in ("kg:player0", "kg:team3", "kg:city1"):
            query = Query.single(uri)
            plain = base.candidate_tables(query)
            probed = multi.candidate_tables(query)
            assert plain <= probed, uri

    def test_zero_flips_matches_plain(self, prefilters):
        base, _ = prefilters
        multi0 = MultiProbePrefilter(base, max_flips=0)
        query = Query.single("kg:player5", "kg:team2")
        assert multi0.candidate_tables(query) == \
            base.candidate_tables(query)

    def test_votes_threshold_applies(self, prefilters):
        _, multi = prefilters
        query = Query.single("kg:player0", "kg:team0")
        loose = multi.candidate_tables(query, votes=1)
        strict = multi.candidate_tables(query, votes=20)
        assert strict <= loose
        with pytest.raises(ConfigurationError):
            multi.candidate_tables(query, votes=0)

    def test_unhashable_query_falls_back(self, prefilters):
        _, multi = prefilters
        assert multi.candidate_tables(Query.single("kg:ghost")) == \
            set(multi.prefilter.indexed_tables)

    def test_reduction_delegates(self, prefilters):
        _, multi = prefilters
        assert multi.reduction(10, {"a", "b"}) == 0.8

    def test_invalid_max_flips(self, prefilters):
        base, _ = prefilters
        with pytest.raises(ConfigurationError):
            MultiProbePrefilter(base, max_flips=-1)

    def test_candidates_remain_sound(self, prefilters, sports_lake):
        _, multi = prefilters
        query = Query.single("kg:player0")
        candidates = multi.candidate_tables(query)
        assert candidates <= set(sports_lake.table_ids())

"""Tests for the generator's web-table realism knobs.

Surface variants, schema variation, noise rows, heterogeneous
coverage, and entity-bearing captions were each added because a
specific paper effect depends on them (docs/reproduction_notes.md §6);
these tests pin the behaviours down.
"""

import numpy as np
import pytest

from repro.benchgen import (
    WT2015_PROFILE,
    TableGenerator,
    WorldBuilder,
)


@pytest.fixture(scope="module")
def world():
    return WorldBuilder(scale=0.3, seed=8).build()


class TestSurfaceVariants:
    def test_variant_shapes(self, world):
        generator = TableGenerator(world, WT2015_PROFILE, seed=0)
        label = "Elena Ramvik"
        variants = {generator._surface_variant(label) for _ in range(60)}
        assert label not in variants
        # All three documented forms appear over enough draws.
        assert any(v.startswith("E. ") for v in variants)
        assert "Ramvik" in variants
        assert any(v == "Elena R." for v in variants)

    def test_single_token_label(self, world):
        generator = TableGenerator(world, WT2015_PROFILE, seed=0)
        assert generator._surface_variant("Brookdale") == "Bro."

    def test_unlinked_cells_carry_variants(self, world):
        generator = TableGenerator(world, WT2015_PROFILE, seed=1)
        corpus = generator.generate(30)
        exact_labels = {e.label for e in world.graph.entities()}
        mismatches = 0
        linked_cells = 0
        for table in corpus.lake:
            for row in range(table.num_rows):
                for col in range(table.num_columns):
                    value = table.cell(row, col)
                    if not isinstance(value, str):
                        continue
                    uri = corpus.mapping.entity_at(table.table_id, row, col)
                    if uri is not None:
                        linked_cells += 1
                        assert value in exact_labels
                    elif value not in exact_labels:
                        mismatches += 1
        assert linked_cells > 0
        assert mismatches > 0  # unlinked mentions are noisy


class TestSchemaVariation:
    def test_same_topic_tables_vary_in_schema(self, world):
        generator = TableGenerator(world, WT2015_PROFILE, seed=2,
                                   drop_role_prob=0.3)
        corpus = generator.generate(80)
        by_topic = {}
        for table in corpus.lake:
            by_topic.setdefault(
                table.metadata["category"], set()
            ).add(table.attributes)
        # At least one topic produced more than one distinct schema.
        assert any(len(schemas) > 1 for schemas in by_topic.values())

    def test_zero_drop_prob_keeps_all_roles(self, world):
        generator = TableGenerator(world, WT2015_PROFILE, seed=2,
                                   drop_role_prob=0.0, noise_row_prob=0.0)
        domain = world.domain("baseball")
        topic = domain.topics[0]
        table = generator.generate_table("t", domain, topic, None,
                                         num_rows=3)
        for role in topic.roles:
            assert role.capitalize() in table.attributes


class TestNoiseRows:
    def test_noise_rows_mention_other_domains(self, world):
        generator = TableGenerator(world, WT2015_PROFILE, seed=3,
                                   noise_row_prob=0.5)
        corpus = generator.generate(20)
        cross_domain_links = 0
        for table in corpus.lake:
            domain = table.metadata["domain"]
            for uri in corpus.mapping.entities_in_table(table.table_id):
                if (not uri.startswith(f"kg:{domain}/")
                        and not uri.startswith("kg:city")
                        and not uri.startswith("kg:country")):
                    cross_domain_links += 1
        assert cross_domain_links > 0

    def test_zero_noise_prob_keeps_tables_pure(self, world):
        generator = TableGenerator(world, WT2015_PROFILE, seed=3,
                                   noise_row_prob=0.0)
        corpus = generator.generate(20)
        for table in corpus.lake:
            domain = table.metadata["domain"]
            for uri in corpus.mapping.entities_in_table(table.table_id):
                assert (uri.startswith(f"kg:{domain}/")
                        or uri.startswith("kg:city")
                        or uri.startswith("kg:country")), uri


class TestCoverageHeterogeneity:
    def test_per_table_coverage_varies(self, world):
        generator = TableGenerator(world, WT2015_PROFILE, seed=4)
        corpus = generator.generate(120)
        fractions = []
        for table in corpus.lake:
            if table.num_cells:
                fractions.append(
                    corpus.mapping.linked_cell_count(table.table_id)
                    / table.num_cells
                )
        spread = np.std(fractions)
        assert spread > 0.05  # genuinely heterogeneous
        assert abs(np.mean(fractions) - WT2015_PROFILE.coverage) < 0.08


class TestCaptions:
    def test_caption_names_an_entity(self, world):
        generator = TableGenerator(world, WT2015_PROFILE, seed=5,
                                   noise_row_prob=0.0)
        corpus = generator.generate(15)
        labels = {e.label for e in world.graph.entities()}
        named = 0
        for table in corpus.lake:
            caption = table.metadata["caption"]
            assert ":" in caption or caption.endswith("table")
            anchor = caption.split(": ", 1)[-1]
            if anchor in labels:
                named += 1
        assert named >= 10  # the vast majority of captions are anchored

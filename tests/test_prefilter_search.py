"""Tests for the fused prefilter serve path (Section 6 pipeline).

Covers the candidate-generation stage end to end: ``search_candidates``
parity with the scalar restricted search, ``mode="exact"``
bit-compatibility, Thetis mode routing, :class:`PrefilterStats`
accounting, the recall guardrail, and — the load-bearing property —
candidate-set *containment* under randomized add/remove mutation: at
vote threshold 1 the LSEI shortlist must be a superset of every table
with a nonzero exact score, so the prefiltered ranking equals the
exact one.
"""

import random

import pytest

from repro import Query, Table, Thetis
from repro.core.kernel import PrefilterStats
from repro.core.topk import topk_search
from repro.exceptions import ConfigurationError
from repro.lsh import LSHConfig

TOLERANCE = 1e-9

#: A small banding config that keeps sports-world signatures cheap.
CONFIG = LSHConfig(32, 8)

QUERIES = [
    Query.single("kg:player0", "kg:team0"),
    Query.single("kg:player5", "kg:city1"),
    Query((("kg:player2", "kg:team2"), ("kg:player10", "kg:city2"))),
    Query.single("kg:city3"),
]


def _fresh_thetis(sports_graph, engine_kind="vectorized"):
    """A mutable Thetis over fresh copies of the sports world."""
    from repro.linking import LabelLinker
    from tests.conftest import make_sports_lake

    lake = make_sports_lake()
    mapping = LabelLinker(sports_graph).link_lake(lake)
    return Thetis(lake, sports_graph, mapping, engine_kind=engine_kind)


def _assert_same_ranking(left, right, tolerance=TOLERANCE):
    assert left.table_ids() == right.table_ids()
    for tid in left.table_ids():
        assert left.score_of(tid) == pytest.approx(
            right.score_of(tid), abs=tolerance
        )


# ----------------------------------------------------------------------
class TestSearchCandidatesParity:
    """``search_candidates`` must match the base restricted search."""

    @pytest.fixture(scope="class")
    def engines(self, sports_lake, sports_graph, sports_mapping):
        vec = Thetis(sports_lake, sports_graph, sports_mapping,
                     engine_kind="vectorized")
        sca = Thetis(sports_lake, sports_graph, sports_mapping,
                     engine_kind="scalar")
        return vec.engine("types"), sca.engine("types")

    @pytest.mark.parametrize("k", [None, 1, 3, 12])
    def test_full_lake_candidates(self, engines, k):
        vec, sca = engines
        candidates = [f"T{i:02d}" for i in range(12)]
        for query in QUERIES:
            got = vec.search_candidates(query, candidates, k=k)
            want = sca.search(query, k=k, candidates=candidates)
            _assert_same_ranking(got, want)

    def test_subset_with_ghosts_and_duplicates(self, engines):
        vec, sca = engines
        candidates = ["T03", "T00", "ghost", "T07", "T00", "T11"]
        for query in QUERIES:
            got = vec.search_candidates(query, candidates, k=5)
            want = sca.search(query, k=5, candidates=candidates)
            _assert_same_ranking(got, want)

    def test_empty_candidates(self, engines):
        vec, _ = engines
        results = vec.search_candidates(QUERIES[0], [], k=5)
        assert len(results) == 0

    def test_k_below_one_returns_empty(self, engines):
        vec, _ = engines
        stats = PrefilterStats()
        results = vec.search_candidates(
            QUERIES[0], ["T00", "T01"], k=0, stats=stats
        )
        assert len(results) == 0
        assert stats.as_dict()["scoring_calls"] == 1

    def test_search_dispatches_candidates(self, engines):
        vec, sca = engines
        candidates = ["T02", "T04", "T06"]
        got = vec.search(QUERIES[0], k=3, candidates=candidates)
        want = sca.search(QUERIES[0], k=3, candidates=candidates)
        _assert_same_ranking(got, want)

    def test_stats_recorded(self, engines):
        vec, _ = engines
        stats = PrefilterStats()
        vec.search_candidates(
            QUERIES[0], [f"T{i:02d}" for i in range(12)], k=3, stats=stats
        )
        payload = stats.as_dict()
        assert payload["scoring_calls"] == 1
        assert payload["mean_shortlist"] > 0


# ----------------------------------------------------------------------
class TestTopkSearchCandidates:
    """The scalar fallback path: ``topk_search`` restricted to a set."""

    def test_matches_restricted_exact(self, sports_lake, sports_graph,
                                      sports_mapping):
        thetis = Thetis(sports_lake, sports_graph, sports_mapping)
        engine = thetis.engine("types")
        candidates = ["T00", "T05", "T09", "T11"]
        stats = PrefilterStats()
        for query in QUERIES:
            got = topk_search(engine, query, 3, candidates=candidates,
                              stats=stats)
            want = engine.search(query, k=3, candidates=candidates)
            _assert_same_ranking(got, want)
        assert stats.as_dict()["scoring_calls"] == len(QUERIES)


# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine_kind", ["scalar", "vectorized"])
class TestThetisModes:
    def test_exact_mode_is_bit_compatible(self, sports_lake, sports_graph,
                                          sports_mapping, engine_kind):
        thetis = Thetis(sports_lake, sports_graph, sports_mapping,
                        engine_kind=engine_kind)
        for query in QUERIES:
            default = thetis.search(query, k=5)
            exact = thetis.search(query, k=5, mode="exact")
            assert default.table_ids() == exact.table_ids()
            for tid in default.table_ids():
                # Same code path — scores must be identical, not close.
                assert default.score_of(tid) == exact.score_of(tid)

    def test_prefilter_mode_matches_exact_topk(self, sports_lake,
                                               sports_graph, sports_mapping,
                                               engine_kind):
        thetis = Thetis(sports_lake, sports_graph, sports_mapping,
                        engine_kind=engine_kind)
        for query in QUERIES:
            exact = thetis.search(query, k=5, mode="exact")
            approx = thetis.search(query, k=5, mode="prefilter",
                                   lsh_config=CONFIG)
            _assert_same_ranking(approx, exact)

    def test_search_many_prefilter_parity(self, sports_lake, sports_graph,
                                          sports_mapping, engine_kind):
        thetis = Thetis(sports_lake, sports_graph, sports_mapping,
                        engine_kind=engine_kind)
        queries = {f"q{i}": query for i, query in enumerate(QUERIES)}
        batched = thetis.search_many(queries, k=4, mode="prefilter",
                                     lsh_config=CONFIG)
        for name, query in queries.items():
            single = thetis.search(query, k=4, mode="prefilter",
                                   lsh_config=CONFIG)
            _assert_same_ranking(batched[name], single)

    def test_unknown_mode_rejected(self, sports_lake, sports_graph,
                                   sports_mapping, engine_kind):
        thetis = Thetis(sports_lake, sports_graph, sports_mapping,
                        engine_kind=engine_kind)
        with pytest.raises(ConfigurationError):
            thetis.search(QUERIES[0], mode="fuzzy")
        with pytest.raises(ConfigurationError):
            thetis.search_many({"q": QUERIES[0]}, mode="fuzzy")

    def test_guardrail_records_recall(self, sports_lake, sports_graph,
                                      sports_mapping, engine_kind):
        thetis = Thetis(sports_lake, sports_graph, sports_mapping,
                        engine_kind=engine_kind)
        recall = thetis.prefilter_recall(QUERIES[0], k=5,
                                         lsh_config=CONFIG)
        assert recall == pytest.approx(1.0)
        guardrail = thetis.prefilter_stats.as_dict()["guardrail"]
        assert guardrail["checks"] == 1
        assert guardrail["min_recall"] == pytest.approx(1.0)

    def test_query_stats_accumulate(self, sports_lake, sports_graph,
                                    sports_mapping, engine_kind):
        thetis = Thetis(sports_lake, sports_graph, sports_mapping,
                        engine_kind=engine_kind)
        thetis.search(QUERIES[0], k=5, mode="prefilter", lsh_config=CONFIG)
        payload = thetis.prefilter_stats.as_dict()
        assert payload["queries"] == 1
        assert payload["scoring_calls"] == 1


# ----------------------------------------------------------------------
class TestContainmentUnderMutation:
    """Randomized add/remove: candidates must cover all scoring tables.

    At vote threshold 1 every table containing a query entity shares
    that entity's bucket (per-entity mode), so the LSEI shortlist is a
    provable superset of the nonzero-score set — and the prefiltered
    top-k therefore equals the exact top-k.  Incremental
    ``add_table``/``remove_table`` maintenance must preserve this
    through arbitrary mutation sequences (the lifecycle bug this PR
    fixes silently broke it on remove + re-add).
    """

    @staticmethod
    def _random_table(rng, table_id):
        rows = []
        for _ in range(rng.randint(1, 4)):
            player = rng.randrange(32)
            rows.append([f"Player {player}", f"Team {player % 8}",
                         f"City {player % 4}", 2000 + rng.randrange(4)])
        return Table(table_id, ["Player", "Team", "City", "Year"], rows)

    def _assert_containment(self, thetis, prefilter):
        engine = thetis.engine("types")
        for query in QUERIES:
            exact = engine.search(query)
            positive = {tid for tid in exact.table_ids()
                        if exact.score_of(tid) > 0.0}
            candidates = prefilter.candidate_tables(query, votes=1)
            missing = positive - candidates
            assert not missing, (
                f"prefilter dropped scoring tables {sorted(missing)}"
            )
            approx = thetis.search(query, k=5, mode="prefilter",
                                   lsh_config=CONFIG)
            _assert_same_ranking(approx, exact.top(5))

    @pytest.mark.parametrize("engine_kind,seed", [
        ("scalar", 3), ("vectorized", 3), ("vectorized", 4),
    ])
    def test_random_add_remove_sequence(self, sports_graph, engine_kind,
                                        seed):
        rng = random.Random(seed)
        thetis = _fresh_thetis(sports_graph, engine_kind)
        prefilter = thetis.prefilter("types", CONFIG)
        live = [f"T{i:02d}" for i in range(12)]
        counter = 0
        for step in range(12):
            if live and rng.random() < 0.4:
                victim = rng.choice(live)
                live.remove(victim)
                thetis.remove_table(victim)
            else:
                table_id = f"M{counter:02d}"
                counter += 1
                thetis.add_table(self._random_table(rng, table_id))
                live.append(table_id)
            if step % 3 == 2:
                self._assert_containment(thetis, prefilter)
        self._assert_containment(thetis, prefilter)

    def test_remove_then_readd_same_id(self, sports_graph):
        # The lifecycle regression in miniature: stale column
        # signatures after re-add used to make the reshaped table
        # invisible to its new entities' buckets.
        thetis = _fresh_thetis(sports_graph)
        prefilter = thetis.prefilter("types", CONFIG,
                                     column_aggregation=True)
        assert "T00" in prefilter.indexed_tables
        thetis.remove_table("T00")
        assert "T00" not in prefilter.indexed_tables
        thetis.add_table(Table(
            "T00", ["City", "Year"],
            [[f"City {i}", 2010 + i] for i in range(4)],
        ))
        query = Query.single("kg:city0", "kg:city1")
        candidates = prefilter.candidate_tables(query, votes=1)
        assert "T00" in candidates
        exact = thetis.engine("types").search(query)
        approx = thetis.search(query, k=5, mode="prefilter",
                               lsh_config=CONFIG)
        _assert_same_ranking(approx, exact.top(5))


# ----------------------------------------------------------------------
class TestPrefilterStats:
    def test_empty_snapshot(self):
        payload = PrefilterStats().as_dict()
        assert payload["queries"] == 0
        assert payload["candidate_reduction"] == 0.0
        assert payload["guardrail"]["checks"] == 0

    def test_reduction_and_scoring_accounting(self):
        stats = PrefilterStats()
        stats.record_query(total_tables=100, num_candidates=20)
        stats.record_query(total_tables=100, num_candidates=10)
        stats.record_scoring(shortlisted=20, scored=8, early_terminated=True)
        stats.record_scoring(shortlisted=10, scored=10,
                             early_terminated=False)
        payload = stats.as_dict()
        assert payload["queries"] == 2
        assert payload["mean_candidates"] == pytest.approx(15.0)
        # 200 lake slots considered, 30 survived -> 85% reduction.
        assert payload["candidate_reduction"] == pytest.approx(0.85)
        assert payload["scoring_calls"] == 2
        assert payload["mean_shortlist"] == pytest.approx(15.0)
        assert payload["scored_fraction"] == pytest.approx(18 / 30)
        assert payload["early_termination_rate"] == pytest.approx(0.5)

    def test_guardrail_accounting(self):
        stats = PrefilterStats()
        stats.record_guardrail(1.0)
        stats.record_guardrail(0.8)
        guardrail = stats.as_dict()["guardrail"]
        assert guardrail["checks"] == 2
        assert guardrail["mean_recall"] == pytest.approx(0.9)
        assert guardrail["min_recall"] == pytest.approx(0.8)

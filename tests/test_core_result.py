"""Tests for ranked result sets and the complementation combinator."""

import pytest

from repro.core import ResultSet, ScoredTable


@pytest.fixture()
def results():
    return ResultSet(
        [
            ScoredTable(0.5, "T2"),
            ScoredTable(0.9, "T1"),
            ScoredTable(0.5, "T0"),
            ScoredTable(0.1, "T3"),
        ]
    )


class TestRanking:
    def test_descending_with_id_tiebreak(self, results):
        assert results.table_ids() == ["T1", "T0", "T2", "T3"]

    def test_len_iter_contains(self, results):
        assert len(results) == 4
        assert "T1" in results
        assert "TX" not in results
        assert [st.table_id for st in results][0] == "T1"

    def test_score_of(self, results):
        assert results.score_of("T1") == 0.9
        assert results.score_of("TX") is None

    def test_top(self, results):
        top = results.top(2)
        assert top.table_ids() == ["T1", "T0"]
        assert results.top(0).table_ids() == []
        assert results.top(99).table_ids() == results.table_ids()

    def test_table_ids_with_k(self, results):
        assert results.table_ids(2) == ["T1", "T0"]

    def test_from_scores(self):
        rs = ResultSet.from_scores({"A": 0.1, "B": 0.9})
        assert rs.table_ids() == ["B", "A"]

    def test_scores_dict(self, results):
        assert results.scores()["T3"] == 0.1


class TestSetOperations:
    def test_difference(self, results):
        other = ResultSet([ScoredTable(1.0, "T1"), ScoredTable(0.9, "TX")])
        assert results.difference(other, k=2) == {"T0"}

    def test_difference_full(self, results):
        other = ResultSet([])
        assert results.difference(other) == {"T0", "T1", "T2", "T3"}


class TestComplement:
    def test_merges_heads_of_both(self):
        semantic = ResultSet(
            [ScoredTable(1.0 - i / 10, f"S{i}") for i in range(10)]
        )
        keyword = ResultSet(
            [ScoredTable(1.0 - i / 10, f"K{i}") for i in range(10)]
        )
        merged = semantic.complement(keyword, k=10)
        ids = merged.table_ids()
        assert len(ids) == 10
        # Top 50% of both rankings present.
        for i in range(5):
            assert f"S{i}" in ids
            assert f"K{i}" in ids

    def test_deduplicates_shared_tables(self):
        a = ResultSet([ScoredTable(0.9, "X"), ScoredTable(0.8, "A")])
        b = ResultSet([ScoredTable(0.9, "X"), ScoredTable(0.8, "B")])
        merged = a.complement(b, k=4)
        assert merged.table_ids().count("X") == 1
        assert set(merged.table_ids()) == {"X", "A", "B"}

    def test_respects_k(self):
        a = ResultSet([ScoredTable(1.0 - i / 100, f"A{i}") for i in range(50)])
        b = ResultSet([ScoredTable(1.0 - i / 100, f"B{i}") for i in range(50)])
        assert len(a.complement(b, k=20)) == 20

    def test_fills_from_tails_when_heads_small(self):
        a = ResultSet([ScoredTable(0.9, "A0")])
        b = ResultSet([ScoredTable(0.9, "B0"), ScoredTable(0.8, "B1"),
                       ScoredTable(0.7, "B2")])
        merged = a.complement(b, k=4)
        assert set(merged.table_ids()) == {"A0", "B0", "B1", "B2"}

    def test_merged_scores_preserve_rank_order(self):
        a = ResultSet([ScoredTable(0.9, "A0"), ScoredTable(0.8, "A1")])
        b = ResultSet([ScoredTable(0.9, "B0")])
        merged = a.complement(b, k=3)
        scores = [merged.score_of(tid) for tid in merged.table_ids()]
        assert scores == sorted(scores, reverse=True)

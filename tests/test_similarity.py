"""Tests for entity similarity functions sigma (types and embeddings)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.embeddings import EmbeddingStore
from repro.exceptions import ConfigurationError
from repro.similarity import (
    EmbeddingCosineSimilarity,
    ExactMatchSimilarity,
    MappingTypeSimilarity,
    TypeJaccardSimilarity,
    WeightedCombination,
    jaccard,
)


class TestJaccard:
    def test_basic(self):
        assert jaccard(frozenset("ab"), frozenset("bc")) == pytest.approx(1 / 3)

    def test_identical(self):
        assert jaccard(frozenset("ab"), frozenset("ab")) == 1.0

    def test_disjoint_and_empty(self):
        assert jaccard(frozenset("a"), frozenset("b")) == 0.0
        assert jaccard(frozenset(), frozenset()) == 0.0
        assert jaccard(frozenset("a"), frozenset()) == 0.0

    @given(
        st.frozensets(st.integers(0, 20), max_size=10),
        st.frozensets(st.integers(0, 20), max_size=10),
    )
    def test_properties(self, a, b):
        value = jaccard(a, b)
        assert 0.0 <= value <= 1.0
        assert value == jaccard(b, a)  # symmetric
        if a and a == b:
            assert value == 1.0


class TestTypeJaccardSimilarity:
    def test_identity_is_one(self, sports_graph):
        sigma = TypeJaccardSimilarity(sports_graph)
        assert sigma.similarity("kg:player0", "kg:player0") == 1.0

    def test_same_type_entities_capped(self, sports_graph):
        sigma = TypeJaccardSimilarity(sports_graph)
        # Two baseball players share the full type set -> capped at 0.95.
        assert sigma.similarity("kg:player0", "kg:player1") == 0.95

    def test_related_types_partial(self, sports_graph):
        sigma = TypeJaccardSimilarity(sports_graph)
        # Player vs team share {Thing, Agent} of 8 total types.
        score = sigma.similarity("kg:player0", "kg:team0")
        assert 0.0 < score < 0.95

    def test_unrelated_types_low(self, sports_graph):
        sigma = TypeJaccardSimilarity(sports_graph)
        player_city = sigma.similarity("kg:player0", "kg:city0")
        player_team = sigma.similarity("kg:player0", "kg:team0")
        assert player_city < player_team

    def test_unknown_entity_scores_zero(self, sports_graph):
        sigma = TypeJaccardSimilarity(sports_graph)
        assert sigma.similarity("kg:player0", "kg:ghost") == 0.0
        assert sigma.similarity("kg:ghost", "kg:ghost") == 1.0  # identity

    def test_type_filter_changes_score(self, sports_graph):
        plain = TypeJaccardSimilarity(sports_graph)
        filtered = TypeJaccardSimilarity(
            sports_graph, type_filter=frozenset({"Thing", "Agent"})
        )
        pair = ("kg:player0", "kg:city0")
        # City shares only {Thing} with players; filtering Thing removes
        # the overlap entirely.
        assert plain.similarity(*pair) > 0.0
        assert filtered.similarity(*pair) == 0.0

    def test_name(self, sports_graph):
        assert TypeJaccardSimilarity(sports_graph).name == "types"


class TestMappingTypeSimilarity:
    def test_backed_by_mapping(self):
        sigma = MappingTypeSimilarity(
            {"a": frozenset({"X", "Y"}), "b": frozenset({"Y", "Z"})}
        )
        assert sigma.similarity("a", "b") == pytest.approx(1 / 3)
        assert sigma.similarity("a", "a") == 1.0
        assert sigma.similarity("a", "unknown") == 0.0

    def test_cap_applies(self):
        sigma = MappingTypeSimilarity(
            {"a": frozenset({"X"}), "b": frozenset({"X"})}, cap=0.9
        )
        assert sigma.similarity("a", "b") == 0.9


class TestEmbeddingCosineSimilarity:
    @pytest.fixture()
    def sigma(self):
        store = EmbeddingStore(
            {
                "e1": np.array([1.0, 0.0]),
                "e2": np.array([1.0, 0.1]),
                "e3": np.array([-1.0, 0.0]),
            }
        )
        return EmbeddingCosineSimilarity(store)

    def test_identity(self, sigma):
        assert sigma.similarity("e1", "e1") == 1.0

    def test_close_vectors_high(self, sigma):
        assert sigma.similarity("e1", "e2") > 0.9

    def test_negative_cosine_clamped(self, sigma):
        assert sigma.similarity("e1", "e3") == 0.0

    def test_missing_embedding_zero(self, sigma):
        assert sigma.similarity("e1", "ghost") == 0.0
        assert sigma.similarity("ghost", "ghost") == 1.0

    def test_name(self, sigma):
        assert sigma.name == "embeddings"


class TestCombinators:
    def test_exact_match(self):
        sigma = ExactMatchSimilarity()
        assert sigma("a", "a") == 1.0
        assert sigma("a", "b") == 0.0

    def test_weighted_combination(self, sports_graph):
        types = TypeJaccardSimilarity(sports_graph)
        exact = ExactMatchSimilarity()
        combo = WeightedCombination([types, exact], [1.0, 1.0])
        pair = ("kg:player0", "kg:player1")
        assert combo.similarity(*pair) == pytest.approx(
            0.5 * types.similarity(*pair)
        )
        assert combo.similarity("kg:player0", "kg:player0") == 1.0

    def test_combination_validation(self):
        exact = ExactMatchSimilarity()
        with pytest.raises(ConfigurationError):
            WeightedCombination([], [])
        with pytest.raises(ConfigurationError):
            WeightedCombination([exact], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            WeightedCombination([exact], [-1.0])
        with pytest.raises(ConfigurationError):
            WeightedCombination([exact], [0.0])

    def test_combination_name(self, sports_graph):
        combo = WeightedCombination(
            [TypeJaccardSimilarity(sports_graph), ExactMatchSimilarity()],
            [1, 1],
        )
        assert combo.name == "combo(types+exact)"


class TestDepthWeightedTypeSimilarity:
    def test_identity(self, sports_graph):
        from repro.similarity.types import DepthWeightedTypeSimilarity

        sigma = DepthWeightedTypeSimilarity(sports_graph)
        assert sigma.similarity("kg:player0", "kg:player0") == 1.0

    def test_leaf_agreement_beats_root_agreement(self, sports_graph):
        from repro.similarity.types import DepthWeightedTypeSimilarity

        sigma = DepthWeightedTypeSimilarity(sports_graph)
        plain = TypeJaccardSimilarity(sports_graph)
        # Player vs player: full type-set agreement, capped for both.
        assert sigma.similarity("kg:player0", "kg:player1") == 0.95
        # Player vs city share only shallow types {Thing}: the
        # depth-weighted score penalizes that more than plain Jaccard.
        assert sigma.similarity("kg:player0", "kg:city0") <= \
            plain.similarity("kg:player0", "kg:city0")

    def test_player_vs_team_ordering_preserved(self, sports_graph):
        from repro.similarity.types import DepthWeightedTypeSimilarity

        sigma = DepthWeightedTypeSimilarity(sports_graph)
        assert sigma.similarity("kg:player0", "kg:team0") > \
            sigma.similarity("kg:player0", "kg:city0")

    def test_unknown_entity_zero(self, sports_graph):
        from repro.similarity.types import DepthWeightedTypeSimilarity

        sigma = DepthWeightedTypeSimilarity(sports_graph)
        assert sigma.similarity("kg:player0", "kg:ghost") == 0.0

    def test_name_and_engine_compatibility(self, sports_graph, sports_lake,
                                           sports_mapping):
        from repro.core import Query, TableSearchEngine
        from repro.similarity.types import DepthWeightedTypeSimilarity

        sigma = DepthWeightedTypeSimilarity(sports_graph)
        assert sigma.name == "types-depth"
        engine = TableSearchEngine(sports_lake, sports_mapping, sigma)
        results = engine.search(Query.single("kg:player0", "kg:team0"), k=3)
        assert len(results) == 3

"""Smoke tests: the fast examples must run end to end.

The two heavier examples (`data_discovery.py`, `robust_linking.py`)
build larger corpora and are exercised implicitly through the
benchmarks; here the quick ones run for real so the README's first
commands can never silently rot.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load_module(name):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart_runs(self, capsys):
        module = _load_module("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "Type-based semantic search" in out
        assert "rosters" in out
        # The paper's point: transfers outranks the off-topic films.
        lines = out.splitlines()
        transfer_rank = next(i for i, l in enumerate(lines)
                             if "transfers" in l)
        films_rank = next(i for i, l in enumerate(lines) if "films" in l)
        assert transfer_rank < films_rank

    def test_quickstart_builders_are_consistent(self):
        module = _load_module("quickstart")
        graph = module.build_graph()
        lake = module.build_lake()
        assert "kg:santo" in graph
        assert "rosters" in lake

    def test_dynamic_lake_runs(self, capsys):
        module = _load_module("dynamic_lake")
        module.main()  # asserts internally
        out = capsys.readouterr().out
        assert "Ingested" in out
        assert "no index rebuilds" in out

"""Tests for column-coherence entity disambiguation."""

import pytest

from repro.datalake import DataLake, Table
from repro.kg import Entity, KnowledgeGraph
from repro.linking.contextual import ContextualLinker


@pytest.fixture()
def graph():
    g = KnowledgeGraph()
    # "Springfield" is ambiguous: a city and a baseball team share it.
    g.add_entity(Entity("kg:springfield-city", "Springfield",
                        frozenset({"Thing", "Place", "City"})))
    g.add_entity(Entity("kg:springfield-team", "Springfield",
                        frozenset({"Thing", "Org", "BaseballTeam"})))
    g.add_entity(Entity("kg:boston", "Boston",
                        frozenset({"Thing", "Place", "City"})))
    g.add_entity(Entity("kg:cubs", "Chicago Cubs",
                        frozenset({"Thing", "Org", "BaseballTeam"})))
    g.add_entity(Entity("kg:santo", "Ron Santo",
                        frozenset({"Thing", "Person", "BaseballPlayer"})))
    return g


class TestCandidates:
    def test_candidates_for(self, graph):
        linker = ContextualLinker(graph)
        assert set(linker.candidates_for("Springfield")) == {
            "kg:springfield-city", "kg:springfield-team",
        }
        assert linker.candidates_for("Boston") == ["kg:boston"]
        assert linker.candidates_for(42) == []
        assert linker.candidates_for("nothing") == []


class TestDisambiguation:
    def test_city_column_pulls_city_sense(self, graph):
        table = Table("cities", ["City"],
                      [["Boston"], ["Springfield"]])
        mapping = ContextualLinker(graph).link_table(table)
        assert mapping.entity_at("cities", 1, 0) == "kg:springfield-city"

    def test_team_column_pulls_team_sense(self, graph):
        table = Table("teams", ["Team"],
                      [["Chicago Cubs"], ["Springfield"]])
        mapping = ContextualLinker(graph).link_table(table)
        assert mapping.entity_at("teams", 1, 0) == "kg:springfield-team"

    def test_same_label_different_columns_different_senses(self, graph):
        table = Table(
            "mixed", ["Team", "City"],
            [["Chicago Cubs", "Boston"],
             ["Springfield", "Springfield"]],
        )
        mapping = ContextualLinker(graph).link_table(table)
        assert mapping.entity_at("mixed", 1, 0) == "kg:springfield-team"
        assert mapping.entity_at("mixed", 1, 1) == "kg:springfield-city"

    def test_empty_column_profile_falls_back_to_first(self, graph):
        # No unambiguous anchors: earliest-registered candidate wins.
        table = Table("bare", ["X"], [["Springfield"]])
        mapping = ContextualLinker(graph).link_table(table)
        assert mapping.entity_at("bare", 0, 0) == "kg:springfield-city"

    def test_min_agreement_gate(self, graph):
        # With an impossible agreement bar, disambiguation falls back.
        table = Table("teams", ["Team"],
                      [["Chicago Cubs"], ["Springfield"]])
        strict = ContextualLinker(graph, min_agreement=1.1)
        mapping = strict.link_table(table)
        assert mapping.entity_at("teams", 1, 0) == "kg:springfield-city"

    def test_link_lake(self, graph):
        lake = DataLake(
            [
                Table("a", ["City"], [["Boston"], ["Springfield"]]),
                Table("b", ["Team"],
                      [["Chicago Cubs"], ["Springfield"]]),
            ]
        )
        mapping = ContextualLinker(graph).link_lake(lake)
        assert mapping.entity_at("a", 1, 0) == "kg:springfield-city"
        assert mapping.entity_at("b", 1, 0) == "kg:springfield-team"

    def test_matches_label_linker_on_unambiguous_corpus(
        self, sports_graph, sports_lake
    ):
        """Without ambiguity, contextual == plain label linking."""
        from repro.linking import LabelLinker

        contextual = ContextualLinker(sports_graph).link_lake(sports_lake)
        plain = LabelLinker(sports_graph).link_lake(sports_lake)
        assert dict(contextual.all_links()) == dict(plain.all_links())

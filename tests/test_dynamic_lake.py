"""Tests for dynamic data-lake updates across the whole stack.

The paper motivates semantic data lakes with "effortless addition of
new datasets" (Sections 2.3 / 3.2): adding or removing a table must
flow through the mapping, the engine caches, the LSEI postings, and
the informativeness weights.
"""

import pytest

from repro import Query, Table, Thetis
from repro.linking import EntityMapping
from repro.lsh import LSHConfig


@pytest.fixture()
def thetis(sports_graph):
    # Fresh mutable copies: the session fixtures must stay pristine.
    from tests.conftest import make_sports_lake
    from repro.linking import LabelLinker

    lake = make_sports_lake()
    mapping = LabelLinker(sports_graph).link_lake(lake)
    return Thetis(lake, sports_graph, mapping)


def _new_table(table_id="T99"):
    return Table(
        table_id,
        ["Player", "Team"],
        # A pairing no fixture table contains (players 31/23 never
        # co-occur with Team 0), so T99 is the unique exact match.
        [["Player 31", "Team 0"], ["Player 23", "Team 0"]],
    )


class TestMappingUnlinkTable:
    def test_unlink_table_removes_all(self):
        mapping = EntityMapping()
        mapping.link("A", 0, 0, "kg:x")
        mapping.link("A", 1, 0, "kg:y")
        mapping.link("B", 0, 0, "kg:x")
        removed = mapping.unlink_table("A")
        assert removed == 2
        assert mapping.entities_in_table("A") == frozenset()
        assert mapping.tables_with_entity("kg:x") == {"B"}
        assert len(mapping) == 1

    def test_unlink_unknown_table_noop(self):
        mapping = EntityMapping()
        assert mapping.unlink_table("nope") == 0


class TestThetisAddTable:
    def test_added_table_becomes_searchable(self, thetis):
        query = Query.single("kg:player31", "kg:team0")
        before = thetis.search(query, k=1)
        created = thetis.add_table(_new_table())
        assert created == 4  # both rows fully linkable
        after = thetis.search(query, k=1)
        assert after.table_ids()[0] == "T99"
        assert after.score_of("T99") == pytest.approx(1.0)
        assert before.score_of("T99") is None

    def test_added_table_reaches_lsh_prefilter(self, thetis):
        prefilter = thetis.prefilter("types", LSHConfig(32, 8))
        query = Query.single("kg:player31", "kg:team0")
        thetis.add_table(_new_table())
        candidates = prefilter.candidate_tables(query)
        assert "T99" in candidates
        results = thetis.search(query, k=1, use_lsh=True,
                                lsh_config=LSHConfig(32, 8))
        assert results.table_ids()[0] == "T99"

    def test_informativeness_refreshed(self, thetis):
        before = thetis.informativeness
        thetis.add_table(_new_table())
        assert thetis.informativeness is not before
        assert thetis.engine("types").informativeness is \
            thetis.informativeness

    def test_add_without_linking(self, thetis):
        created = thetis.add_table(_new_table("T98"), link=False)
        assert created == 0
        assert thetis.mapping.entities_in_table("T98") == frozenset()

    def test_add_rejects_non_table(self, thetis):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            thetis.add_table("not a table")


class TestThetisRemoveTable:
    def test_removed_table_vanishes_from_results(self, thetis):
        query = Query.single("kg:player0", "kg:team0", "kg:city0")
        assert thetis.search(query, k=1).table_ids() == ["T00"]
        thetis.remove_table("T00")
        results = thetis.search(query, k=5)
        assert "T00" not in results.table_ids()

    def test_removed_table_leaves_lsh_candidates(self, thetis):
        prefilter = thetis.prefilter("types", LSHConfig(32, 8))
        query = Query.single("kg:player0", "kg:team0")
        assert "T00" in prefilter.candidate_tables(query)
        thetis.remove_table("T00")
        assert "T00" not in prefilter.candidate_tables(query)

    def test_mapping_cleaned(self, thetis):
        thetis.remove_table("T05")
        assert thetis.mapping.entities_in_table("T05") == frozenset()
        assert "T05" not in thetis.lake

    def test_add_then_remove_round_trip(self, thetis):
        query = Query.single("kg:player31", "kg:team0")
        thetis.add_table(_new_table())
        assert thetis.search(query, k=1).table_ids() == ["T99"]
        thetis.remove_table("T99")
        assert "T99" not in thetis.search(query, k=12).table_ids()


class TestPrefilterColumnAggDynamic:
    def test_column_agg_add_and_remove(self, thetis):
        prefilter = thetis.prefilter(
            "types", LSHConfig(32, 8), column_aggregation=True
        )
        query = Query.single("kg:player31", "kg:team0")
        table = _new_table()
        thetis.lake.add(table)
        from repro.linking import LabelLinker

        LabelLinker(thetis.graph).link_table(table, thetis.mapping)
        prefilter.add_table("T99")
        assert "T99" in prefilter.candidate_tables(query)
        prefilter.remove_table("T99")
        assert "T99" not in prefilter.candidate_tables(query)

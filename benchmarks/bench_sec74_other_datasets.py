"""Section 7.4: WT2019 (low coverage) and GitTables (keyword-linked).

The paper shows that:

* on WT2019, whose entity-link coverage drops from 27.7% to 18.2%,
  Thetis's NDCG stays essentially unchanged versus WT2015;
* on GitTables, which ships no entity links at all, mentions resolved
  through a keyword (Lucene-like) index still support efficient search,
  with LSH pruning over 98% of the corpus.
"""

import time

import pytest

from benchmarks.conftest import print_header
from repro import Thetis
from repro.eval import ndcg_at_k, summarize
from repro.lsh import RECOMMENDED_CONFIG

K = 10


def _ndcg(bench, thetis, query_ids, truths):
    scores = []
    for qid in query_ids:
        query = bench.queries.all_queries()[qid]
        results = thetis.search(query, k=K)
        scores.append(ndcg_at_k(results.table_ids(K), truths[qid].gains, K))
    return summarize(scores)["mean"]


def test_sec74_wt2019_low_coverage(wt_bench, wt_thetis, wt_ground_truths,
                                   wt2019_bench, benchmark):
    thetis_2019 = Thetis(wt2019_bench.lake, wt2019_bench.graph,
                         wt2019_bench.mapping)
    truths_2019 = wt2019_bench.ground_truths()

    def run():
        print_header("Section 7.4 - WT2019: lower coverage, same quality")
        rows = {}
        for subset in ("one_tuple", "five_tuple"):
            ids_15 = list(getattr(wt_bench.queries, subset))
            ids_19 = list(getattr(wt2019_bench.queries, subset))
            n15 = _ndcg(wt_bench, wt_thetis, ids_15, wt_ground_truths)
            n19 = _ndcg(wt2019_bench, thetis_2019, ids_19, truths_2019)
            rows[subset] = (n15, n19)
            print(f"  {subset:<10} WT2015 NDCG={n15:.3f}   "
                  f"WT2019 NDCG={n19:.3f}")
        cov15 = wt_bench.statistics().mean_coverage
        cov19 = wt2019_bench.statistics().mean_coverage
        print(f"  coverage: WT2015 {cov15:.1%} vs WT2019 {cov19:.1%}")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for subset, (n15, n19) in rows.items():
        # Dropping coverage from ~28% to ~18% barely affects quality.
        assert n19 > 0.6 * n15, subset


def test_sec74_gittables_runtime(git_bench, benchmark):
    thetis = Thetis(git_bench.lake, git_bench.graph, git_bench.mapping)
    prefilter = thetis.prefilter("types", RECOMMENDED_CONFIG)

    def run():
        print_header("Section 7.4 - GitTables: keyword-linked mentions")
        rows = {}
        for subset, queries in (
            ("1-tuple", list(git_bench.queries.one_tuple.values())),
            ("5-tuple", list(git_bench.queries.five_tuple.values())),
        ):
            start = time.perf_counter()
            reductions = []
            for query in queries:
                candidates = prefilter.candidate_tables(query, votes=3)
                reductions.append(
                    prefilter.reduction(len(git_bench.lake), candidates)
                )
                thetis.search(query, k=K, use_lsh=True,
                              lsh_config=RECOMMENDED_CONFIG, votes=3)
            elapsed = (time.perf_counter() - start) / len(queries)
            reduction = sum(reductions) / len(reductions)
            rows[subset] = (elapsed, reduction)
            print(f"  {subset}: {elapsed:.3f} s/query   "
                  f"reduction {reduction:.1%}")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for subset, (elapsed, reduction) in rows.items():
        # LSH prunes a meaningful share of GitTables (the paper reports
        # >98% at 864k tables, where entities spread across far more
        # buckets; at bench scale the reduction is smaller but queries
        # stay comparable in cost to the small-table corpora).
        assert reduction > 0.1, subset
        assert elapsed < 10.0, subset

"""Section 7.3 (text): per-table scoring cost and the mapping fraction.

The paper measures the average wall-clock cost of scoring one table
(2.2 ms / 8.6 ms for 1-/5-tuple queries on WT2015; 3.8 ms / 16.6 ms on
GitTables) and finds that 58-78 % of it is spent computing the
query-to-column mapping (the Hungarian step).  This bench reproduces
both measurements using the engine's built-in profile instrumentation.

With the persistent similarity cache, the profile distinguishes
``similarity_calls`` (every pairwise lookup — the work Algorithm 1
*demands*) from ``similarity_misses`` (the lookups that actually ran
``sigma`` — the work that was *paid*); the report prints both so the
cost statement stays accurate under caching.
"""

import pytest

from benchmarks.conftest import print_header
from repro import Thetis


def _profile(thetis, queries, method="types", cold=True):
    engine = thetis.engine(method)
    if cold:
        # Measure the per-table cost the paper measures: no amortization
        # from earlier benchmark runs against the same corpus.
        engine.invalidate_cache(include_similarities=True)
    engine.profile.reset()
    for query in queries:
        engine.search(query, k=10)
    return engine.profile


def _print_similarity_split(profile, indent="  "):
    print(
        f"{indent}similarity lookups {profile.similarity_calls:>9,}   "
        f"misses {profile.similarity_misses:>9,}   "
        f"cache hit rate {profile.similarity_hit_rate:5.1%}"
    )


def test_sec73_scoring_cost_wt(wt_bench, wt_thetis, benchmark):
    def run():
        print_header("Section 7.3 - per-table scoring cost (WT profile)")
        rows = {}
        for subset, queries in (
            ("1-tuple", list(wt_bench.queries.one_tuple.values())),
            ("5-tuple", list(wt_bench.queries.five_tuple.values())),
        ):
            for method in ("types", "embeddings"):
                profile = _profile(wt_thetis, queries, method)
                rows[(subset, method)] = (
                    profile.mean_table_seconds, profile.mapping_fraction
                )
                print(
                    f"  {subset:<8} {method:<11} "
                    f"{profile.mean_table_seconds * 1000:7.3f} ms/table   "
                    f"mapping fraction {profile.mapping_fraction:5.1%}"
                )
                _print_similarity_split(profile, indent="           ")
                assert profile.similarity_calls >= \
                    profile.similarity_misses
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for (subset, method), (mean_seconds, fraction) in rows.items():
        # The column mapping dominates per-table cost (paper: 58-78%).
        assert fraction > 0.3, (subset, method)
        assert mean_seconds < 0.05  # stays in the low-millisecond range
    # 5-tuple scoring costs more than 1-tuple scoring (paper: ~4x).
    assert rows[("5-tuple", "types")][0] > rows[("1-tuple", "types")][0]


def test_sec73_scoring_cost_gittables(git_bench, benchmark):
    thetis = Thetis(git_bench.lake, git_bench.graph, git_bench.mapping)

    def run():
        print_header("Section 7.3 - per-table scoring cost (GitTables "
                      "profile, larger tables)")
        rows = {}
        for subset, queries in (
            ("1-tuple", list(git_bench.queries.one_tuple.values())),
            ("5-tuple", list(git_bench.queries.five_tuple.values())),
        ):
            profile = _profile(thetis, queries)
            rows[subset] = (profile.mean_table_seconds,
                            profile.mapping_fraction)
            print(
                f"  {subset:<8} types       "
                f"{profile.mean_table_seconds * 1000:7.3f} ms/table   "
                f"mapping fraction {profile.mapping_fraction:5.1%}"
            )
            _print_similarity_split(profile, indent="           ")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Larger tables cost more per table than the WT profile's (paper:
    # 3.8 vs 2.2 ms) but remain in the millisecond range.
    assert rows["5-tuple"][0] > rows["1-tuple"][0]
    assert rows["1-tuple"][1] > 0.3

"""Ablation: combined and alternative similarity functions.

The paper's conclusion proposes "using a combination of similarity
measures in Thetis" and Section 5.3 points at predicate-set similarity
as a further instantiation of sigma.  This bench evaluates:

* STST (types only) and STSE (embeddings only) — the paper's two;
* a 50/50 weighted combination of both (future work);
* predicate-set Jaccard (Section 5.3's pointer);
* exact matching (the degenerate control).
"""

import pytest

from benchmarks.conftest import print_header
from repro.core import TableSearchEngine
from repro.eval import ExperimentRunner, box_plot_figure
from repro.similarity import (
    DepthWeightedTypeSimilarity,
    EmbeddingCosineSimilarity,
    ExactMatchSimilarity,
    Informativeness,
    PredicateJaccardSimilarity,
    TypeJaccardSimilarity,
    WeightedCombination,
)

K = 10


def test_ablation_combined_similarity(wt_bench, wt_thetis,
                                      wt_ground_truths, benchmark):
    types = TypeJaccardSimilarity(wt_bench.graph)
    embeds = EmbeddingCosineSimilarity(wt_thetis.embeddings)
    sigmas = {
        "types (STST)": types,
        "embeddings (STSE)": embeds,
        "types+embeddings 50/50": WeightedCombination(
            [types, embeds], [1.0, 1.0]
        ),
        "predicates": PredicateJaccardSimilarity(wt_bench.graph),
        "types depth-weighted": DepthWeightedTypeSimilarity(wt_bench.graph),
        "exact-match control": ExactMatchSimilarity(),
    }
    informativeness = Informativeness.from_mapping(
        wt_bench.mapping, len(wt_bench.lake)
    )
    engines = {
        name: TableSearchEngine(
            wt_bench.lake, wt_bench.mapping, sigma,
            informativeness=informativeness,
        )
        for name, sigma in sigmas.items()
    }
    runner = ExperimentRunner(wt_bench.queries.all_queries(),
                              wt_ground_truths)

    def run():
        print_header("Ablation - similarity function instantiations "
                      f"(NDCG@{K}, 1-tuple queries)")
        ids = list(wt_bench.queries.one_tuple)
        series = {}
        means = {}
        for name, engine in engines.items():
            report = runner.run_system(
                name, lambda q, k, e=engine: e.search(q, k=k), K, ids
            )
            series[name] = [o.ndcg for o in report.outcomes]
            means[name] = report.ndcg_summary()["mean"]
        print(box_plot_figure(series, width=40))
        return means

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    # Semantic similarities beat the exact-match control: that gap IS
    # the value of semantic relatedness (irrelevant under keyword-only
    # retrieval, tables without matches are unreachable).
    assert means["types (STST)"] > means["exact-match control"]
    # The combination is competitive with its best component.
    best_single = max(means["types (STST)"], means["embeddings (STSE)"])
    assert means["types+embeddings 50/50"] > 0.75 * best_single
    # Predicate similarity is a usable sigma (> control).
    assert means["predicates"] >= means["exact-match control"]

"""Future-work bench: relaxing over-specialized 5-tuple queries.

Section 7.2 diagnoses the 5-tuple recall drop as over-specialization;
the conclusion promises improvements for that case.  This bench
measures the diagnosis (5-tuple recall < 1-tuple recall for the exact
engine) and evaluates both relaxation strategies of
``repro.core.relaxation`` against it.
"""

import pytest

from benchmarks.conftest import print_header
from repro.core import RelaxingSearcher
from repro.eval import recall_at_k, summarize

K = 100


def test_query_relaxation(wt_bench, wt_thetis, wt_ground_truths,
                          benchmark):
    engine = wt_thetis.engine("types")

    def run():
        print_header("Query relaxation for over-specialized queries "
                      f"(recall@{K})")
        one_recalls = []
        for qid in wt_bench.queries.one_tuple:
            query = wt_bench.queries.all_queries()[qid]
            gains = wt_ground_truths[qid].gains
            results = engine.search(query, k=K)
            one_recalls.append(
                recall_at_k(results.table_ids(K), gains, K)
            )
        strategies = {
            "no relaxation": None,
            "split + RRF": RelaxingSearcher(engine, threshold=0.95,
                                            strategy="split"),
            "drop weakest": RelaxingSearcher(engine, threshold=0.95,
                                             strategy="drop"),
        }
        five_recalls = {name: [] for name in strategies}
        relaxed_counts = {name: 0 for name in strategies}
        for qid in wt_bench.queries.five_tuple:
            query = wt_bench.queries.all_queries()[qid]
            gains = wt_ground_truths[qid].gains
            for name, searcher in strategies.items():
                if searcher is None:
                    ranked = engine.search(query, k=K).table_ids(K)
                else:
                    outcome = searcher.search(query, k=K)
                    ranked = outcome.results.table_ids(K)
                    if outcome.relaxed:
                        relaxed_counts[name] += 1
                five_recalls[name].append(
                    recall_at_k(ranked, gains, K)
                )
        one_mean = summarize(one_recalls)["mean"]
        print(f"  1-tuple queries (reference):      "
              f"recall mean = {one_mean:.3f}")
        means = {}
        for name, values in five_recalls.items():
            means[name] = summarize(values)["mean"]
            note = (f" ({relaxed_counts[name]} queries relaxed)"
                    if name != "no relaxation" else "")
            print(f"  5-tuple, {name:<16} recall mean = "
                  f"{means[name]:.3f}{note}")
        return one_mean, means

    one_mean, means = benchmark.pedantic(run, rounds=1, iterations=1)
    # Relaxation must never hurt (it only replaces weak-head queries)...
    assert means["split + RRF"] >= means["no relaxation"] - 0.02
    assert means["drop weakest"] >= means["no relaxation"] - 0.05
    # ...and the best strategy should close part of the gap to the
    # 1-tuple reference when a gap exists.
    if one_mean > means["no relaxation"] + 0.02:
        best = max(means["split + RRF"], means["drop weakest"])
        assert best > means["no relaxation"]
"""Statistical significance of the headline comparisons.

The paper reports means and medians over 50 queries without
significance tests; this bench adds paired randomization tests and
bootstrap confidence intervals for the main claims at bench scale:

* STST vs the exact-match control (the value of semantic similarity);
* STSTC (complemented) vs BM25 alone (the Figure 5 headline);
* STST with vs without LSH prefiltering (quality preservation).
"""

import pytest

from benchmarks.conftest import print_header
from repro.baselines import text_query_from_labels
from repro.core import TableSearchEngine
from repro.eval import compare_systems, ndcg_at_k, recall_at_k
from repro.lsh import RECOMMENDED_CONFIG
from repro.similarity import ExactMatchSimilarity, Informativeness


def test_significance_of_headline_claims(wt_bench, wt_thetis, wt_bm25,
                                         wt_ground_truths, benchmark):
    exact_engine = TableSearchEngine(
        wt_bench.lake, wt_bench.mapping, ExactMatchSimilarity(),
        informativeness=Informativeness.from_mapping(
            wt_bench.mapping, len(wt_bench.lake)
        ),
    )

    def run():
        print_header("Significance of headline comparisons "
                      "(paired tests over queries)")
        ids = list(wt_bench.queries.one_tuple) + \
            list(wt_bench.queries.five_tuple)
        stst_ndcg, lsh_ndcg = [], []
        stst_recall, control_recall = [], []
        merged_recall, bm25_recall = [], []
        for qid in ids:
            query = wt_bench.queries.all_queries()[qid]
            gains = wt_ground_truths[qid].gains
            stst = wt_thetis.search(query, k=100)
            control = exact_engine.search(query, k=100)
            lsh = wt_thetis.search(query, k=10, use_lsh=True,
                                   lsh_config=RECOMMENDED_CONFIG, votes=3)
            keyword = wt_bm25.search(
                text_query_from_labels(query, wt_bench.graph), k=100
            )
            merged = stst.complement(keyword, k=100)
            stst_ndcg.append(ndcg_at_k(stst.table_ids(10), gains, 10))
            lsh_ndcg.append(ndcg_at_k(lsh.table_ids(10), gains, 10))
            # Exact matching competes at the head (matching tables carry
            # the top gains) - the semantic win is in the long tail, so
            # the control comparison uses recall@100.
            stst_recall.append(
                recall_at_k(stst.table_ids(100), gains, 100)
            )
            control_recall.append(
                recall_at_k(control.table_ids(100), gains, 100)
            )
            merged_recall.append(
                recall_at_k(merged.table_ids(100), gains, 100)
            )
            bm25_recall.append(
                recall_at_k(keyword.table_ids(100), gains, 100)
            )
        comparisons = {
            "STST vs exact (recall)": compare_systems(
                stst_recall, control_recall
            ),
            "STSTC vs BM25 (recall)": compare_systems(
                merged_recall, bm25_recall
            ),
            "LSH vs brute (NDCG)": compare_systems(lsh_ndcg, stst_ndcg),
        }
        for label, result in comparisons.items():
            print("  " + result.format_row(label))
        return comparisons

    comparisons = benchmark.pedantic(run, rounds=1, iterations=1)
    # Semantic similarity retrieves more relevant tables than exact
    # matching; with the bench-scale query sample (20 pairs) the test
    # is underpowered for strict significance, so assert the direction
    # and a non-negative-leaning confidence interval.
    semantic = comparisons["STST vs exact (recall)"]
    assert semantic.mean_difference > 0.0
    assert semantic.p_value < 0.2
    assert semantic.ci_high > 0.0
    # Complementation does not significantly hurt BM25 recall (at scale
    # it significantly helps; see bench_fig5_recall).
    merged = comparisons["STSTC vs BM25 (recall)"]
    assert merged.mean_difference > -0.05
    # LSH prefiltering does not significantly degrade NDCG.
    lsh = comparisons["LSH vs brute (NDCG)"]
    assert lsh.ci_low > -0.1

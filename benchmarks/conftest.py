"""Shared fixtures for the benchmark harness.

One world and one WT2015-profile corpus back most experiments (as
WT2015 backs most of the paper's Section 7); the other corpora reuse
the same world, mirroring how all the paper's corpora share DBpedia.

Scale note: the paper's corpora hold 238k-1.7M tables on a 2TB server;
these benches default to a few thousand tables so the whole harness
runs on a laptop.  All reproduced claims are *relative* (speedups,
reduction percentages, method orderings), which are stable across
corpus scale (see Section 7.4's linear-scaling result, reproduced in
bench_sec74_scaling).
"""

from __future__ import annotations

import pytest

from repro import Thetis
from repro.baselines import BM25TableSearch
from repro.benchgen import (
    GITTABLES_PROFILE,
    WT2015_PROFILE,
    WT2019_PROFILE,
    build_benchmark,
)

#: Master seed for every benchmark corpus.
SEED = 17

#: Default corpus/query scale (override with care: runtimes grow ~linearly).
WT_TABLES = 2000
GIT_TABLES = 250
NUM_QUERY_PAIRS = 10

#: Reduced scale used by the --quick smoke run (scripts/ci.sh).
QUICK_WT_TABLES = 400
QUICK_GIT_TABLES = 80
QUICK_QUERY_PAIRS = 4


def pytest_addoption(parser):
    parser.addoption(
        "--workers", type=int, default=4,
        help="worker count for the parallel-search benchmarks",
    )
    parser.addoption(
        "--quick", action="store_true",
        help="shrink benchmark corpora for a CI smoke run",
    )
    parser.addoption(
        "--incremental", action="store_true",
        help="run the segmented-index incremental-update benchmarks "
             "(single-table add vs full recompile, memmap cold start)",
    )


def _scale(request):
    """(wt_tables, git_tables, query_pairs) for the selected mode."""
    if request.config.getoption("--quick"):
        return QUICK_WT_TABLES, QUICK_GIT_TABLES, QUICK_QUERY_PAIRS
    return WT_TABLES, GIT_TABLES, NUM_QUERY_PAIRS


@pytest.fixture(scope="session")
def wt_bench(request):
    """The primary WT2015-profile benchmark corpus."""
    wt_tables, _, query_pairs = _scale(request)
    return build_benchmark(
        WT2015_PROFILE,
        num_tables=wt_tables,
        num_query_pairs=query_pairs,
        seed=SEED,
    )


@pytest.fixture(scope="session")
def wt_thetis(wt_bench):
    """Thetis over the primary corpus with trained embeddings."""
    system = Thetis(wt_bench.lake, wt_bench.graph, wt_bench.mapping)
    system.train_embeddings(
        dimensions=32, epochs=3, walks_per_entity=10, walk_length=4, seed=0
    )
    return system


@pytest.fixture(scope="session")
def wt_ground_truths(wt_bench):
    """Graded ground truth for every query of the primary corpus."""
    return wt_bench.ground_truths()


@pytest.fixture(scope="session")
def wt_bm25(wt_bench):
    """BM25 index over the primary corpus."""
    return BM25TableSearch(wt_bench.lake)


@pytest.fixture(scope="session")
def wt2019_bench(request, wt_bench):
    """WT2019-profile corpus sharing the primary world (lower coverage)."""
    wt_tables, _, query_pairs = _scale(request)
    return build_benchmark(
        WT2019_PROFILE,
        num_tables=wt_tables,
        num_query_pairs=query_pairs,
        seed=SEED + 1,
        world=wt_bench.world,
    )


@pytest.fixture(scope="session")
def git_bench(request, wt_bench):
    """GitTables-profile corpus (large tables, label-linked at load)."""
    _, git_tables, query_pairs = _scale(request)
    return build_benchmark(
        GITTABLES_PROFILE,
        num_tables=git_tables,
        num_query_pairs=query_pairs,
        seed=SEED + 2,
        world=wt_bench.world,
    )


def print_header(title: str) -> None:
    """Uniform banner for bench output."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)

"""Optimization bench: early-terminating top-k vs full scan.

Not a paper table — an engineering ablation of this implementation's
threshold-algorithm top-k (``repro.core.topk``): identical rankings,
fewer full table scorings.
"""

import time

import pytest

from benchmarks.conftest import print_header
from repro.core import topk_search

K = 10


def test_topk_pruning(wt_bench, wt_thetis, benchmark):
    engine = wt_thetis.engine("types")
    queries = list(wt_bench.queries.one_tuple.values())

    def run():
        print_header("Optimization - early-terminating top-k "
                      f"(k={K}, types)")
        # Warm the engine caches so both measurements are comparable.
        engine.search(queries[0], k=K)
        start = time.perf_counter()
        brute = [engine.search(q, k=K) for q in queries]
        brute_seconds = (time.perf_counter() - start) / len(queries)
        engine.profile.reset()
        start = time.perf_counter()
        fast = [topk_search(engine, q, K) for q in queries]
        fast_seconds = (time.perf_counter() - start) / len(queries)
        scored_fraction = engine.profile.tables_scored / (
            len(queries) * len(wt_bench.lake)
        )
        matches = sum(
            1 for b, f in zip(brute, fast)
            if b.table_ids() == f.table_ids()
        )
        print(f"  brute force: {brute_seconds * 1000:7.1f} ms/query "
              f"({len(wt_bench.lake)} tables scored)")
        print(f"  top-k bound: {fast_seconds * 1000:7.1f} ms/query "
              f"({scored_fraction:.1%} of tables fully scored)")
        print(f"  identical rankings: {matches}/{len(queries)}")
        return brute_seconds, fast_seconds, scored_fraction, matches

    brute_s, fast_s, scored_fraction, matches = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    # Exactness is non-negotiable.
    assert matches == len(queries)
    # The bound must prune a large share of full scorings.
    assert scored_fraction < 0.7

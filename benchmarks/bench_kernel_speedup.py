"""Vectorized scoring kernel vs the scalar engine: speedup + parity.

Scores the Table 3 benchmark lake (the WT2015-profile corpus behind
Section 7.3) twice per similarity method — once with the scalar
per-cell engine, once with the vectorized kernel — on single-worker
brute-force search, and reports:

* the *cold* speedup: fresh engines, empty caches; the vectorized side
  pays its corpus-index compilation inside the measured window.  This
  is the Section 7.3 first-query cost the kernel attacks, and the
  headline assertion requires >= 5x;
* the *warm* speedup: the same engines re-running the same queries, so
  the scalar engine answers from its persistent similarity cache and
  the kernel from its row memo — the steady-state comparison;
* the max per-table score delta between the two engines across every
  query (must stay within the 1e-9 parity budget).

The report is written to ``BENCH_kernel.json`` in the working
directory (scripts/ci.sh runs this with ``--quick``).
"""

import json
import time

import pytest

from benchmarks.conftest import print_header
from repro.core.kernel import VectorizedTableSearchEngine
from repro.core.search import TableSearchEngine

TOLERANCE = 1e-9
REQUIRED_COLD_SPEEDUP = 5.0

#: Segmented-index gates (--incremental): a single-table add must beat
#: a full recompile by this factor, and a memmap cold start must beat
#: compile-from-scratch by this factor.
REQUIRED_ADD_SPEEDUP = 20.0
REQUIRED_LOAD_SPEEDUP = 5.0

REPORT_PATH = "BENCH_kernel.json"


def _queries(bench):
    return (
        list(bench.queries.one_tuple.values())
        + list(bench.queries.five_tuple.values())
    )


def _build(engine_cls, thetis, method):
    """A fresh, cold engine sharing the corpus and sigma of ``thetis``."""
    reference = thetis.engine(method)
    return engine_cls(
        thetis.lake,
        thetis.mapping,
        reference.sigma,
        informativeness=thetis.informativeness,
        row_aggregation=thetis.row_aggregation,
        query_aggregation=thetis.query_aggregation,
    )


def _timed_search(engine, queries):
    """Full brute-force rankings for every query, plus wall seconds."""
    rankings = []
    start = time.perf_counter()
    for query in queries:
        rankings.append(engine.search(query, k=None))
    return rankings, time.perf_counter() - start


def _max_delta(scalar_rankings, vector_rankings):
    """Largest per-table score difference across all rankings."""
    worst = 0.0
    for a, b in zip(scalar_rankings, vector_rankings):
        scores_a = {s.table_id: s.score for s in a}
        scores_b = {s.table_id: s.score for s in b}
        for table_id in scores_a.keys() | scores_b.keys():
            delta = abs(
                scores_a.get(table_id, 0.0) - scores_b.get(table_id, 0.0)
            )
            worst = max(worst, delta)
    return worst


def test_kernel_speedup(wt_bench, wt_thetis, benchmark):
    queries = _queries(wt_bench)

    def run():
        report = {}
        for method in ("types", "embeddings"):
            scalar = _build(TableSearchEngine, wt_thetis, method)
            vector = _build(VectorizedTableSearchEngine, wt_thetis, method)
            scalar_rankings, scalar_cold = _timed_search(scalar, queries)
            vector_rankings, vector_cold = _timed_search(vector, queries)
            _, scalar_warm = _timed_search(scalar, queries)
            _, vector_warm = _timed_search(vector, queries)
            report[method] = {
                "scalar_cold_seconds": scalar_cold,
                "vectorized_cold_seconds": vector_cold,
                "scalar_warm_seconds": scalar_warm,
                "vectorized_warm_seconds": vector_warm,
                "cold_speedup": scalar_cold / vector_cold,
                "warm_speedup": scalar_warm / vector_warm,
                "max_score_delta": _max_delta(
                    scalar_rankings, vector_rankings
                ),
                "corpus_entities": vector.index().num_entities,
            }
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        f"Vectorized kernel vs scalar engine "
        f"({len(wt_bench.lake)} tables, {len(queries)} queries)"
    )
    for method, row in report.items():
        print(f"  {method}:")
        print(f"    scalar cold     {row['scalar_cold_seconds']:8.2f} s")
        print(f"    vectorized cold {row['vectorized_cold_seconds']:8.2f} s"
              f"   -> {row['cold_speedup']:6.1f}x")
        print(f"    scalar warm     {row['scalar_warm_seconds']:8.2f} s")
        print(f"    vectorized warm {row['vectorized_warm_seconds']:8.2f} s"
              f"   -> {row['warm_speedup']:6.1f}x")
        print(f"    max score delta {row['max_score_delta']:.3e}")

    payload = {
        "corpus_tables": len(wt_bench.lake),
        "queries": len(queries),
        "tolerance": TOLERANCE,
        "methods": report,
    }
    with open(REPORT_PATH, "w", encoding="utf-8") as out:
        json.dump(payload, out, indent=2)
    print(f"  report -> {REPORT_PATH}")

    for method, row in report.items():
        # Parity is the contract: the kernel is an optimization, not an
        # approximation.
        assert row["max_score_delta"] <= TOLERANCE, (
            f"{method}: parity broken ({row['max_score_delta']:.3e})"
        )
        # The headline claim: >= 5x on the cold brute-force pass, per
        # method, even with index compilation inside the window.
        assert row["cold_speedup"] >= REQUIRED_COLD_SPEEDUP, (
            f"{method}: cold speedup {row['cold_speedup']:.1f}x < "
            f"{REQUIRED_COLD_SPEEDUP}x"
        )
        # Warm steady state must never regress behind the scalar cache.
        assert row["warm_speedup"] >= 1.0, (
            f"{method}: warm regression {row['warm_speedup']:.2f}x"
        )


def _merge_report(key, section):
    """Fold ``section`` into BENCH_kernel.json without clobbering it."""
    try:
        with open(REPORT_PATH, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        payload = {}
    payload[key] = section
    with open(REPORT_PATH, "w", encoding="utf-8") as out:
        json.dump(payload, out, indent=2)


def test_incremental_index_speedup(wt_bench, wt_thetis, benchmark,
                                   tmp_path, request):
    """O(delta) updates and zero-copy cold start vs full recompiles.

    Three timings over the Table 3 corpus with the types sigma:

    * ``full_compile``: ``SegmentedCorpusIndex.compile`` over the whole
      lake — the cost every ``add_table`` paid before segmentation;
    * ``single_add``: mean ``with_table`` on the compiled index — one
      single-table segment append plus a tombstone (gate: >= 20x
      cheaper than the recompile);
    * ``memmap_load``: ``load_index`` of the persisted index — header
      validation plus memmap setup, no array materialization (gate:
      >= 5x cheaper than compile-from-scratch).

    Parity rides along: the loaded index must rank bit-identically to
    a freshly compiled one (type Jaccard is integer popcount work).
    """
    if not request.config.getoption("--incremental"):
        pytest.skip("segmented-index bench runs only with --incremental")
    from repro.core.kernel import (
        SegmentedCorpusIndex,
        load_index,
        save_index,
    )

    lake, mapping = wt_bench.lake, wt_bench.mapping
    sigma = wt_thetis.engine("types").sigma
    queries = _queries(wt_bench)
    add_samples = [lake.get(tid) for tid in lake.table_ids()[:8]]

    def run():
        start = time.perf_counter()
        index = SegmentedCorpusIndex.compile(lake, mapping, sigma)
        full_compile = time.perf_counter() - start

        start = time.perf_counter()
        for table in add_samples:
            index.with_table(table)
        single_add = (time.perf_counter() - start) / len(add_samples)

        index_dir = str(tmp_path / "bench-index")
        save_index(index, index_dir)
        start = time.perf_counter()
        loaded = load_index(index_dir, sigma, mapping)
        memmap_load = time.perf_counter() - start

        return {
            "corpus_tables": len(lake),
            "full_compile_seconds": full_compile,
            "single_add_seconds": single_add,
            "memmap_load_seconds": memmap_load,
            "add_speedup": full_compile / single_add,
            "load_speedup": full_compile / memmap_load,
        }, index, loaded

    report, index, loaded = benchmark.pedantic(run, rounds=1, iterations=1)

    # Parity: the persisted index serves the exact rankings of the
    # in-memory one (bit-exact for the integer type-Jaccard kernel).
    compiled_engine = _build(VectorizedTableSearchEngine, wt_thetis, "types")
    compiled_engine.adopt_index(index)
    loaded_engine = _build(VectorizedTableSearchEngine, wt_thetis, "types")
    loaded_engine.adopt_index(loaded)
    parity_queries = queries[:4]
    compiled_rankings = [
        compiled_engine.search(q, k=None) for q in parity_queries
    ]
    loaded_rankings = [
        loaded_engine.search(q, k=None) for q in parity_queries
    ]
    report["max_score_delta"] = _max_delta(compiled_rankings, loaded_rankings)

    print_header(
        f"Segmented index: incremental update + memmap cold start "
        f"({len(lake)} tables)"
    )
    print(f"  full compile    {report['full_compile_seconds'] * 1e3:9.2f} ms")
    print(f"  single add      {report['single_add_seconds'] * 1e3:9.2f} ms"
          f"   -> {report['add_speedup']:7.1f}x")
    print(f"  memmap load     {report['memmap_load_seconds'] * 1e3:9.2f} ms"
          f"   -> {report['load_speedup']:7.1f}x")
    print(f"  max score delta {report['max_score_delta']:.3e}")

    _merge_report("incremental", report)
    print(f"  report -> {REPORT_PATH} (incremental)")

    assert report["max_score_delta"] == 0.0, (
        f"persisted-index parity broken ({report['max_score_delta']:.3e})"
    )
    assert report["add_speedup"] >= REQUIRED_ADD_SPEEDUP, (
        f"single-table add only {report['add_speedup']:.1f}x faster than a "
        f"full recompile (< {REQUIRED_ADD_SPEEDUP}x)"
    )
    assert report["load_speedup"] >= REQUIRED_LOAD_SPEEDUP, (
        f"memmap cold start only {report['load_speedup']:.1f}x faster than "
        f"compile-from-scratch (< {REQUIRED_LOAD_SPEEDUP}x)"
    )

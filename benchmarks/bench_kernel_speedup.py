"""Vectorized scoring kernel vs the scalar engine: speedup + parity.

Scores the Table 3 benchmark lake (the WT2015-profile corpus behind
Section 7.3) twice per similarity method — once with the scalar
per-cell engine, once with the vectorized kernel — on single-worker
brute-force search, and reports:

* the *cold* speedup: fresh engines, empty caches; the vectorized side
  pays its corpus-index compilation inside the measured window.  This
  is the Section 7.3 first-query cost the kernel attacks, and the
  headline assertion requires >= 5x;
* the *warm* speedup: the same engines re-running the same queries, so
  the scalar engine answers from its persistent similarity cache and
  the kernel from its row memo — the steady-state comparison;
* the max per-table score delta between the two engines across every
  query (must stay within the 1e-9 parity budget).

The report is written to ``BENCH_kernel.json`` in the working
directory (scripts/ci.sh runs this with ``--quick``).
"""

import json
import time

from benchmarks.conftest import print_header
from repro.core.kernel import VectorizedTableSearchEngine
from repro.core.search import TableSearchEngine

TOLERANCE = 1e-9
REQUIRED_COLD_SPEEDUP = 5.0

REPORT_PATH = "BENCH_kernel.json"


def _queries(bench):
    return (
        list(bench.queries.one_tuple.values())
        + list(bench.queries.five_tuple.values())
    )


def _build(engine_cls, thetis, method):
    """A fresh, cold engine sharing the corpus and sigma of ``thetis``."""
    reference = thetis.engine(method)
    return engine_cls(
        thetis.lake,
        thetis.mapping,
        reference.sigma,
        informativeness=thetis.informativeness,
        row_aggregation=thetis.row_aggregation,
        query_aggregation=thetis.query_aggregation,
    )


def _timed_search(engine, queries):
    """Full brute-force rankings for every query, plus wall seconds."""
    rankings = []
    start = time.perf_counter()
    for query in queries:
        rankings.append(engine.search(query, k=None))
    return rankings, time.perf_counter() - start


def _max_delta(scalar_rankings, vector_rankings):
    """Largest per-table score difference across all rankings."""
    worst = 0.0
    for a, b in zip(scalar_rankings, vector_rankings):
        scores_a = {s.table_id: s.score for s in a}
        scores_b = {s.table_id: s.score for s in b}
        for table_id in scores_a.keys() | scores_b.keys():
            delta = abs(
                scores_a.get(table_id, 0.0) - scores_b.get(table_id, 0.0)
            )
            worst = max(worst, delta)
    return worst


def test_kernel_speedup(wt_bench, wt_thetis, benchmark):
    queries = _queries(wt_bench)

    def run():
        report = {}
        for method in ("types", "embeddings"):
            scalar = _build(TableSearchEngine, wt_thetis, method)
            vector = _build(VectorizedTableSearchEngine, wt_thetis, method)
            scalar_rankings, scalar_cold = _timed_search(scalar, queries)
            vector_rankings, vector_cold = _timed_search(vector, queries)
            _, scalar_warm = _timed_search(scalar, queries)
            _, vector_warm = _timed_search(vector, queries)
            report[method] = {
                "scalar_cold_seconds": scalar_cold,
                "vectorized_cold_seconds": vector_cold,
                "scalar_warm_seconds": scalar_warm,
                "vectorized_warm_seconds": vector_warm,
                "cold_speedup": scalar_cold / vector_cold,
                "warm_speedup": scalar_warm / vector_warm,
                "max_score_delta": _max_delta(
                    scalar_rankings, vector_rankings
                ),
                "corpus_entities": vector.index().num_entities,
            }
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        f"Vectorized kernel vs scalar engine "
        f"({len(wt_bench.lake)} tables, {len(queries)} queries)"
    )
    for method, row in report.items():
        print(f"  {method}:")
        print(f"    scalar cold     {row['scalar_cold_seconds']:8.2f} s")
        print(f"    vectorized cold {row['vectorized_cold_seconds']:8.2f} s"
              f"   -> {row['cold_speedup']:6.1f}x")
        print(f"    scalar warm     {row['scalar_warm_seconds']:8.2f} s")
        print(f"    vectorized warm {row['vectorized_warm_seconds']:8.2f} s"
              f"   -> {row['warm_speedup']:6.1f}x")
        print(f"    max score delta {row['max_score_delta']:.3e}")

    payload = {
        "corpus_tables": len(wt_bench.lake),
        "queries": len(queries),
        "tolerance": TOLERANCE,
        "methods": report,
    }
    with open(REPORT_PATH, "w", encoding="utf-8") as out:
        json.dump(payload, out, indent=2)
    print(f"  report -> {REPORT_PATH}")

    for method, row in report.items():
        # Parity is the contract: the kernel is an optimization, not an
        # approximation.
        assert row["max_score_delta"] <= TOLERANCE, (
            f"{method}: parity broken ({row['max_score_delta']:.3e})"
        )
        # The headline claim: >= 5x on the cold brute-force pass, per
        # method, even with index compilation inside the window.
        assert row["cold_speedup"] >= REQUIRED_COLD_SPEEDUP, (
            f"{method}: cold speedup {row['cold_speedup']:.1f}x < "
            f"{REQUIRED_COLD_SPEEDUP}x"
        )
        # Warm steady state must never regress behind the scalar cache.
        assert row["warm_speedup"] >= 1.0, (
            f"{method}: warm regression {row['warm_speedup']:.2f}x"
        )

"""LSH auto-tuning bench: reproduce the paper's configuration choice.

Section 7.3 selects its LSH configurations "after testing various
configurations on a smaller subset of the corpus" and recommends
(30, 10).  The tuner automates that procedure; this bench runs it on a
query sample and checks that the recommended configuration filters
aggressively while keeping brute-force quality.
"""

import pytest

from benchmarks.conftest import print_header
from repro.lsh import (
    LSHConfig,
    LSHTuner,
    TypeSignatureScheme,
    frequent_types,
)

CONFIGS = (LSHConfig(32, 8), LSHConfig(128, 8), LSHConfig(30, 10),
           LSHConfig(16, 8), LSHConfig(60, 10))


def test_lsh_tuner(wt_bench, wt_thetis, benchmark):
    excluded = frequent_types(
        wt_bench.mapping, wt_bench.graph, wt_bench.lake.table_ids()
    )
    tuner = LSHTuner(
        wt_thetis.engine("types"),
        scheme_factory=lambda n: TypeSignatureScheme(
            wt_bench.graph, n, excluded_types=excluded, seed=0
        ),
        k=10,
    )
    sample = list(wt_bench.queries.one_tuple.values())[:5]

    def run():
        print_header("LSH auto-tuner - configuration sweep")
        outcomes = tuner.sweep(sample, CONFIGS, votes_options=(1, 3))
        for outcome in outcomes:
            print("  " + outcome.format_row())
        recommended = tuner.recommend(
            sample, CONFIGS, votes_options=(1, 3), min_retention=0.8
        )
        print(f"  recommended: {recommended.config} "
              f"votes={recommended.votes}")
        return outcomes, recommended

    outcomes, recommended = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(outcomes) == len(CONFIGS) * 2
    # The recommendation keeps quality while filtering meaningfully.
    assert recommended.ndcg_retention >= 0.8
    assert recommended.mean_reduction > 0.3

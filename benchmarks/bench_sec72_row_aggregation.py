"""Section 7.2 (text): row-score aggregation ablation (max vs avg).

The paper reports that aggregating per-row scores with the maximum
gives up to 5x better NDCG than averaging, because max amplifies the
relevance signal of the matching tuples while avg dilutes it across
every row of the table.  Also ablates the query-tuple aggregation of
Equation 1 (mean vs max over query tuples).
"""

import pytest

from benchmarks.conftest import print_header
from repro.core import (
    QueryAggregation,
    RowAggregation,
    TableSearchEngine,
    TupleSemantics,
)
from repro.eval import ExperimentRunner
from repro.similarity import Informativeness, TypeJaccardSimilarity

K = 10


def _engine(bench, row_agg, query_agg=QueryAggregation.MEAN,
            semantics=TupleSemantics.PER_ENTITY):
    return TableSearchEngine(
        bench.lake,
        bench.mapping,
        TypeJaccardSimilarity(bench.graph),
        informativeness=Informativeness.from_mapping(
            bench.mapping, len(bench.lake)
        ),
        row_aggregation=row_agg,
        query_aggregation=query_agg,
        tuple_semantics=semantics,
    )


def test_sec72_row_aggregation(wt_bench, wt_ground_truths, benchmark):
    engines = {
        "row=max (paper)": _engine(wt_bench, RowAggregation.MAX),
        "row=avg": _engine(wt_bench, RowAggregation.AVG),
        "row=max, query=max": _engine(
            wt_bench, RowAggregation.MAX, QueryAggregation.MAX
        ),
        "Eq.1 SemRel_MAX (per-row)": _engine(
            wt_bench, RowAggregation.MAX,
            semantics=TupleSemantics.PER_ROW,
        ),
        "Eq.1 SemRel_AVG (per-row)": _engine(
            wt_bench, RowAggregation.AVG,
            semantics=TupleSemantics.PER_ROW,
        ),
    }
    runner = ExperimentRunner(wt_bench.queries.all_queries(),
                              wt_ground_truths)

    def run():
        print_header("Section 7.2 - row aggregation ablation "
                      f"(NDCG@{K})")
        reports = {}
        for subset, ids in (
            ("1-tuple", list(wt_bench.queries.one_tuple)),
            ("5-tuple", list(wt_bench.queries.five_tuple)),
        ):
            print(f"  {subset} queries:")
            reports[subset] = {}
            for name, engine in engines.items():
                report = runner.run_system(
                    name, lambda q, k, e=engine: e.search(q, k=k), K, ids
                )
                mean = report.ndcg_summary()["mean"]
                reports[subset][name] = mean
                print(f"    {name:<22} NDCG mean = {mean:.4f}")
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    # Max amplifies the matching-row signal (paper: up to 5x better);
    # the effect concentrates where multiple rows matter, so the strict
    # ordering is asserted on 5-tuple queries and within noise on
    # 1-tuple (our topically-coherent synthetic tables leave avg much
    # closer to max than the paper's web tables do; EXPERIMENTS.md).
    assert reports["5-tuple"]["row=max (paper)"] >= \
        reports["5-tuple"]["row=avg"] - 1e-9
    assert reports["1-tuple"]["row=max (paper)"] >= \
        0.95 * reports["1-tuple"]["row=avg"]
    for subset, by_name in reports.items():
        ratio = (
            by_name["row=max (paper)"] / by_name["row=avg"]
            if by_name["row=avg"] > 0 else float("inf")
        )
        print(f"  {subset}: max/avg NDCG ratio = {ratio:.2f}x")

"""Serving-layer latency/throughput benchmark.

Boots a real :class:`~repro.serve.server.ServerThread` over the
WT2015-profile corpus and drives it with the closed-loop load
generator, reporting end-to-end throughput and p50/p95/p99 latency
through the full path (HTTP parse -> admission -> micro-batch ->
engine -> JSON response).  An open-loop run at a modest arrival rate
is included because it is the model that exposes queueing delay.

Before measuring, the bench asserts the serving invariant: a response
from ``POST /search`` is bit-identical to a direct ``Thetis.search``
over the same corpus.

The report is written to ``BENCH_serve.json`` in the working
directory (scripts/ci.sh runs this with ``--quick``).
"""

import http.client
import json

from benchmarks.conftest import print_header
from repro import Thetis
from repro.serve import LoadGenerator, ServeConfig, ServerThread

#: Closed-loop request volume (full / --quick).
TOTAL_REQUESTS = 400
QUICK_TOTAL_REQUESTS = 80
CONCURRENCY = 8

#: Open-loop arrival schedule (full / --quick).
OPEN_RATE = 40.0
OPEN_DURATION = 4.0
QUICK_OPEN_DURATION = 1.0

REPORT_PATH = "BENCH_serve.json"


def _query_payloads(bench, k=10):
    """Rotating /search payloads: all 1-tuple and 5-tuple queries."""
    payloads = []
    for queries in (bench.queries.one_tuple, bench.queries.five_tuple):
        for query in queries.values():
            payloads.append({
                "tuples": [list(t) for t in query.tuples],
                "k": k,
            })
    return payloads


def _assert_parity(port, reference, payloads):
    """POST /search must match direct Thetis.search bit-for-bit."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        for payload in payloads[:4]:
            connection.request(
                "POST", "/search",
                body=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = json.loads(response.read())
            assert response.status == 200, body
            from repro.core.query import Query
            query = Query(tuple(tuple(t) for t in payload["tuples"]))
            direct = reference.search(query, k=payload["k"])
            served = [(r["table_id"], r["score"]) for r in body["results"]]
            expected = [(s.table_id, s.score) for s in direct]
            assert served == expected, (
                f"served ranking diverged from direct search: "
                f"{served[:3]} vs {expected[:3]}"
            )
    finally:
        connection.close()


def test_serve_latency(wt_bench, benchmark, request):
    quick = request.config.getoption("--quick")
    total = QUICK_TOTAL_REQUESTS if quick else TOTAL_REQUESTS
    open_duration = QUICK_OPEN_DURATION if quick else OPEN_DURATION

    reference = Thetis(wt_bench.lake, wt_bench.graph, wt_bench.mapping)
    lake, mapping = reference.snapshot_inputs()
    served = Thetis(lake, wt_bench.graph, mapping)
    payloads = _query_payloads(wt_bench)

    handle = ServerThread(
        served,
        ServeConfig(port=0, max_batch_size=8, flush_interval=0.002),
    )
    handle.start().wait_ready(timeout=300)
    try:
        _assert_parity(handle.port, reference, payloads)
        generator = LoadGenerator("127.0.0.1", handle.port, payloads,
                                  timeout=120)

        def run():
            closed = generator.run_closed(
                concurrency=CONCURRENCY, total_requests=total
            )
            open_loop = generator.run_open(
                rate=OPEN_RATE, duration=open_duration
            )
            return closed, open_loop

        closed, open_loop = benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        handle.stop(timeout=120)

    print_header(
        f"Serving latency (closed loop, {CONCURRENCY} workers, "
        f"{total} requests)"
    )
    print(closed.format_report())
    print_header(f"Serving latency (open loop, {OPEN_RATE:.0f} req/s)")
    print(open_loop.format_report())

    report = {
        "corpus_tables": len(wt_bench.lake),
        "concurrency": CONCURRENCY,
        "closed": closed.to_json(),
        "open": open_loop.to_json(),
    }
    with open(REPORT_PATH, "w", encoding="utf-8") as out:
        json.dump(report, out, indent=2)
    print(f"  report -> {REPORT_PATH}")

    # The serving path must complete the whole closed-loop run without
    # shedding load (the queue bound is far above CONCURRENCY).
    assert closed.sent == total
    assert closed.ok == total, (
        f"closed loop lost requests: {closed.to_json()}"
    )
    assert closed.throughput > 0
    assert closed.percentile_ms(0.50) <= closed.percentile_ms(0.95) \
        <= closed.percentile_ms(0.99)
    # Open loop may legitimately shed (503) under queueing, but the
    # server must keep answering.
    assert open_loop.ok > 0

"""Serving-layer latency/throughput benchmark.

Boots a real :class:`~repro.serve.server.ServerThread` over the
WT2015-profile corpus and drives it with the closed-loop load
generator, reporting end-to-end throughput and p50/p95/p99 latency
through the full path (HTTP parse -> admission -> micro-batch ->
engine -> JSON response).  An open-loop run at a modest arrival rate
is included because it is the model that exposes queueing delay.

Before measuring, the bench asserts the serving invariant: a response
from ``POST /search`` is bit-identical to a direct ``Thetis.search``
over the same corpus.

The report is written to ``BENCH_serve.json`` in the working
directory (scripts/ci.sh runs this with ``--quick``).
"""

import http.client
import json
import threading
import time

from benchmarks.conftest import print_header
from repro import Thetis
from repro.serve import LoadGenerator, ServeConfig, ServerThread
from repro.serve.metrics import percentile_of

#: Closed-loop request volume (full / --quick).
TOTAL_REQUESTS = 400
QUICK_TOTAL_REQUESTS = 80
CONCURRENCY = 8

#: Open-loop arrival schedule (full / --quick).
OPEN_RATE = 40.0
OPEN_DURATION = 4.0
QUICK_OPEN_DURATION = 1.0

#: Mutation-under-load cycles (add + remove each) and the concurrent
#: query threads kept running across them (full / --quick).
MUTATION_CYCLES = 15
QUICK_MUTATION_CYCLES = 5
MUTATION_QUERY_THREADS = 4

REPORT_PATH = "BENCH_serve.json"


def _query_payloads(bench, k=10):
    """Rotating /search payloads: all 1-tuple and 5-tuple queries."""
    payloads = []
    for queries in (bench.queries.one_tuple, bench.queries.five_tuple):
        for query in queries.values():
            payloads.append({
                "tuples": [list(t) for t in query.tuples],
                "k": k,
            })
    return payloads


def _assert_parity(port, reference, payloads):
    """POST /search must match direct Thetis.search bit-for-bit."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        for payload in payloads[:4]:
            connection.request(
                "POST", "/search",
                body=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = json.loads(response.read())
            assert response.status == 200, body
            from repro.core.query import Query
            query = Query(tuple(tuple(t) for t in payload["tuples"]))
            direct = reference.search(query, k=payload["k"])
            served = [(r["table_id"], r["score"]) for r in body["results"]]
            expected = [(s.table_id, s.score) for s in direct]
            assert served == expected, (
                f"served ranking diverged from direct search: "
                f"{served[:3]} vs {expected[:3]}"
            )
    finally:
        connection.close()


def test_serve_latency(wt_bench, benchmark, request):
    quick = request.config.getoption("--quick")
    total = QUICK_TOTAL_REQUESTS if quick else TOTAL_REQUESTS
    open_duration = QUICK_OPEN_DURATION if quick else OPEN_DURATION

    # Vectorized on both sides: the server's micro-batches ride the
    # fused search_batch kernel, and the parity assert compares the
    # same engine kind bit for bit.
    reference = Thetis(wt_bench.lake, wt_bench.graph, wt_bench.mapping,
                       engine_kind="vectorized")
    lake, mapping = reference.snapshot_inputs()
    served = Thetis(lake, wt_bench.graph, mapping,
                    engine_kind="vectorized")
    payloads = _query_payloads(wt_bench)

    handle = ServerThread(
        served,
        ServeConfig(port=0, max_batch_size=8, flush_interval=0.002),
    )
    handle.start().wait_ready(timeout=300)
    try:
        _assert_parity(handle.port, reference, payloads)
        generator = LoadGenerator("127.0.0.1", handle.port, payloads,
                                  timeout=120)
        prefilter_payloads = [
            dict(payload, mode="prefilter") for payload in payloads
        ]
        prefilter_generator = LoadGenerator(
            "127.0.0.1", handle.port, prefilter_payloads, timeout=120
        )

        def run():
            closed = generator.run_closed(
                concurrency=CONCURRENCY, total_requests=total
            )
            closed_prefilter = prefilter_generator.run_closed(
                concurrency=CONCURRENCY, total_requests=total
            )
            open_loop = generator.run_open(
                rate=OPEN_RATE, duration=open_duration
            )
            return closed, closed_prefilter, open_loop

        closed, closed_prefilter, open_loop = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
    finally:
        handle.stop(timeout=120)

    print_header(
        f"Serving latency (closed loop, {CONCURRENCY} workers, "
        f"{total} requests)"
    )
    print(closed.format_report())
    print_header(
        f"Serving latency (closed loop, mode=prefilter, "
        f"{CONCURRENCY} workers, {total} requests)"
    )
    print(closed_prefilter.format_report())
    print_header(f"Serving latency (open loop, {OPEN_RATE:.0f} req/s)")
    print(open_loop.format_report())

    report = {
        "corpus_tables": len(wt_bench.lake),
        "concurrency": CONCURRENCY,
        "closed": closed.to_json(),
        "closed_prefilter": closed_prefilter.to_json(),
        "open": open_loop.to_json(),
    }
    with open(REPORT_PATH, "w", encoding="utf-8") as out:
        json.dump(report, out, indent=2)
    print(f"  report -> {REPORT_PATH}")

    # The serving path must complete the whole closed-loop run without
    # shedding load (the queue bound is far above CONCURRENCY).
    assert closed.sent == total
    assert closed.ok == total, (
        f"closed loop lost requests: {closed.to_json()}"
    )
    assert closed.throughput > 0
    assert closed.percentile_ms(0.50) <= closed.percentile_ms(0.95) \
        <= closed.percentile_ms(0.99)
    # The prefilter mode must sustain the same closed-loop volume.
    assert closed_prefilter.sent == total
    assert closed_prefilter.ok == total, (
        f"prefilter closed loop lost requests: {closed_prefilter.to_json()}"
    )
    # Open loop may legitimately shed (503) under queueing, but the
    # server must keep answering.
    assert open_loop.ok > 0


# ----------------------------------------------------------------------
# Mutation under load
# ----------------------------------------------------------------------
def _post_json(connection, method, path, payload=None):
    """One request; returns (status, parsed body, seconds)."""
    body = json.dumps(payload).encode("utf-8") if payload is not None else None
    start = time.perf_counter()
    connection.request(
        method, path, body=body,
        headers={"Content-Type": "application/json"} if body else {},
    )
    response = connection.getresponse()
    parsed = json.loads(response.read())
    return response.status, parsed, time.perf_counter() - start


def _query_worker(port, payloads, stop, out):
    """Closed-loop /search driver running until ``stop`` is set."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    latencies, errors = [], 0
    index = 0
    try:
        while not stop.is_set():
            payload = payloads[index % len(payloads)]
            index += 1
            try:
                status, _, seconds = _post_json(
                    connection, "POST", "/search", payload
                )
            except (OSError, http.client.HTTPException):
                errors += 1
                connection.close()
                connection = http.client.HTTPConnection(
                    "127.0.0.1", port, timeout=120
                )
                continue
            if status == 200:
                latencies.append(seconds)
            else:
                errors += 1
    finally:
        connection.close()
    out.append((latencies, errors))


def _upsert_payload(source_table, table_id):
    """A /tables body cloning an existing table under a fresh id."""
    return {
        "table": {
            "id": table_id,
            "attributes": list(source_table.attributes),
            "rows": [list(row) for row in source_table.rows],
            "metadata": dict(source_table.metadata),
        },
        "link": True,
    }


def test_serve_mutation_under_load(wt_bench, benchmark, request):
    """p50/p95 of add/remove table swaps while queries keep flowing.

    Exercises the O(delta) snapshot path end to end: the server runs
    the vectorized engine, each ``POST /tables`` / ``DELETE /tables``
    clones the current generation (sharing every unchanged segment),
    applies a one-segment delta, warms, and swaps — all while
    concurrent ``/search`` load keeps hitting whichever generation is
    current.  Reported into ``BENCH_serve.json`` under ``mutation``.
    """
    quick = request.config.getoption("--quick")
    cycles = QUICK_MUTATION_CYCLES if quick else MUTATION_CYCLES

    lake, mapping = Thetis(
        wt_bench.lake, wt_bench.graph, wt_bench.mapping
    ).snapshot_inputs()
    served = Thetis(
        lake, wt_bench.graph, mapping, engine_kind="vectorized"
    )
    payloads = _query_payloads(wt_bench)
    source_table = wt_bench.lake.get(wt_bench.lake.table_ids()[0])

    handle = ServerThread(
        served,
        ServeConfig(port=0, max_batch_size=8, flush_interval=0.002),
    )
    handle.start().wait_ready(timeout=300)
    stop = threading.Event()
    worker_out = []
    workers = [
        threading.Thread(
            target=_query_worker,
            args=(handle.port, payloads, stop, worker_out),
            daemon=True,
        )
        for _ in range(MUTATION_QUERY_THREADS)
    ]
    try:
        for worker in workers:
            worker.start()

        def run():
            add_seconds, remove_seconds = [], []
            connection = http.client.HTTPConnection(
                "127.0.0.1", handle.port, timeout=300
            )
            try:
                for cycle in range(cycles):
                    table_id = f"bench-mutation-{cycle}"
                    status, body, seconds = _post_json(
                        connection, "POST", "/tables",
                        _upsert_payload(source_table, table_id),
                    )
                    assert status == 200, body
                    add_seconds.append(seconds)
                    status, body, seconds = _post_json(
                        connection, "DELETE", f"/tables/{table_id}"
                    )
                    assert status == 200, body
                    remove_seconds.append(seconds)
            finally:
                connection.close()
            return add_seconds, remove_seconds

        add_seconds, remove_seconds = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
    finally:
        stop.set()
        for worker in workers:
            worker.join(timeout=120)
        handle.stop(timeout=120)

    query_latencies = [s for latencies, _ in worker_out for s in latencies]
    query_errors = sum(errors for _, errors in worker_out)
    report = {
        "corpus_tables": len(wt_bench.lake),
        "cycles": cycles,
        "query_threads": MUTATION_QUERY_THREADS,
        "add_p50_ms": percentile_of(add_seconds, 0.50) * 1e3,
        "add_p95_ms": percentile_of(add_seconds, 0.95) * 1e3,
        "remove_p50_ms": percentile_of(remove_seconds, 0.50) * 1e3,
        "remove_p95_ms": percentile_of(remove_seconds, 0.95) * 1e3,
        "query_ok": len(query_latencies),
        "query_errors": query_errors,
        "query_p50_ms": percentile_of(query_latencies, 0.50) * 1e3,
        "query_p95_ms": percentile_of(query_latencies, 0.95) * 1e3,
    }

    print_header(
        f"Mutation under load ({cycles} add/remove cycles, "
        f"{MUTATION_QUERY_THREADS} query threads)"
    )
    print(f"  add    p50 {report['add_p50_ms']:9.2f} ms   "
          f"p95 {report['add_p95_ms']:9.2f} ms")
    print(f"  remove p50 {report['remove_p50_ms']:9.2f} ms   "
          f"p95 {report['remove_p95_ms']:9.2f} ms")
    print(f"  /search during swaps: {report['query_ok']} ok, "
          f"{report['query_errors']} errors, "
          f"p50 {report['query_p50_ms']:.2f} ms, "
          f"p95 {report['query_p95_ms']:.2f} ms")

    try:
        with open(REPORT_PATH, "r", encoding="utf-8") as handle_in:
            payload = json.load(handle_in)
    except (OSError, json.JSONDecodeError):
        payload = {}
    payload["mutation"] = report
    with open(REPORT_PATH, "w", encoding="utf-8") as out:
        json.dump(payload, out, indent=2)
    print(f"  report -> {REPORT_PATH} (mutation)")

    # Every swap must land, and queries must keep succeeding across
    # them — the copy-and-swap contract under the segmented engine.
    assert len(add_seconds) == cycles
    assert len(remove_seconds) == cycles
    assert report["query_ok"] > 0, "no query completed during mutations"

"""Ablation: column-aggregated signatures and query aggregation (Sec 6.2).

The paper proposes aggregating the representations of all entities in
a table column into one signature (saving space) and aggregating the
whole query into a single lookup (saving time), noting that column
aggregation never improved NDCG beyond the per-entity index.  This
bench compares per-entity vs column-aggregated indexing and per-entity
vs aggregated-query lookups.
"""

import pytest

from benchmarks.conftest import print_header
from repro.eval import ndcg_at_k, summarize
from repro.lsh import RECOMMENDED_CONFIG

K = 10


def _evaluate(bench, thetis, truths, prefilter, query_ids,
              aggregate_query=False):
    engine = thetis.engine("types")
    reductions, scores = [], []
    for qid in query_ids:
        query = bench.queries.all_queries()[qid]
        candidates = prefilter.candidate_tables(
            query, aggregate_query=aggregate_query
        )
        reductions.append(prefilter.reduction(len(bench.lake), candidates))
        results = engine.search(query, k=K, candidates=candidates)
        scores.append(
            ndcg_at_k(results.table_ids(K), truths[qid].gains, K)
        )
    return summarize(reductions)["mean"], summarize(scores)["mean"]


def test_ablation_column_aggregation(wt_bench, wt_thetis, wt_ground_truths,
                                     benchmark):
    query_ids = list(wt_bench.queries.five_tuple)

    def run():
        print_header("Ablation - column-aggregated LSEI and query "
                      "aggregation")
        per_entity = wt_thetis.prefilter("types", RECOMMENDED_CONFIG)
        column_agg = wt_thetis.prefilter(
            "types", RECOMMENDED_CONFIG, column_aggregation=True
        )
        rows = {}
        rows["per-entity index"] = _evaluate(
            wt_bench, wt_thetis, wt_ground_truths, per_entity, query_ids
        )
        rows["column-agg index"] = _evaluate(
            wt_bench, wt_thetis, wt_ground_truths, column_agg, query_ids
        )
        # Query aggregation pairs with the column-aggregated index:
        # merged type-set signatures on both sides (Section 6.2).
        rows["column-agg + agg query"] = _evaluate(
            wt_bench, wt_thetis, wt_ground_truths, column_agg, query_ids,
            aggregate_query=True,
        )
        for name, (reduction, ndcg) in rows.items():
            print(f"  {name:<24} reduction {reduction:6.1%}   "
                  f"NDCG {ndcg:.3f}")
        print(f"  index keys: per-entity={per_entity.num_indexed_keys()}  "
              f"column-agg={column_agg.num_indexed_keys()}")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Column aggregation does not beat the per-entity index on NDCG
    # (paper: "did not provide any NDCG scores above" the per-entity
    # variants) ...
    assert rows["column-agg index"][1] <= rows["per-entity index"][1] + 0.05
    # ... while filtering at least as aggressively.
    assert rows["column-agg index"][0] >= rows["per-entity index"][0] - 0.05

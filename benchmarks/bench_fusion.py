"""Future-work bench: rank fusion of BM25 and semantic rankings.

The paper merges BM25 and Thetis rankings with a fixed top-50 %
interleave (STSTC) and defers "learning to rank" to future work.  This
bench compares the interleave against principled fusion: RRF, CombMNZ,
and the from-scratch logistic learning-to-rank model trained on a
held-out half of the queries.
"""

import pytest

from benchmarks.conftest import print_header
from repro.baselines import text_query_from_labels
from repro.core import LogisticFusion, comb_mnz, reciprocal_rank_fusion
from repro.eval import recall_at_k, summarize

K = 100


def test_fusion_methods(wt_bench, wt_thetis, wt_bm25, wt_ground_truths,
                        benchmark):
    query_ids = list(wt_bench.queries.five_tuple)
    half = len(query_ids) // 2
    train_ids, test_ids = query_ids[:half], query_ids[half:]

    def rankings_for(qid):
        query = wt_bench.queries.all_queries()[qid]
        keyword = wt_bm25.search(
            text_query_from_labels(query, wt_bench.graph), k=K
        )
        semantic = wt_thetis.search(query, k=K)
        return semantic, keyword

    def run():
        print_header(f"Fusion methods - recall@{K} on held-out "
                      "5-tuple queries")
        model = LogisticFusion(num_systems=2, seed=0)
        model.fit([
            (list(rankings_for(qid)), wt_ground_truths[qid].gains)
            for qid in train_ids
        ])
        recalls = {name: [] for name in
                   ("BM25", "STST", "interleave (paper)", "RRF",
                    "CombMNZ", "logistic LTR")}
        for qid in test_ids:
            gains = wt_ground_truths[qid].gains
            semantic, keyword = rankings_for(qid)
            fused = {
                "BM25": keyword,
                "STST": semantic,
                "interleave (paper)": semantic.complement(keyword, k=K),
                "RRF": reciprocal_rank_fusion([semantic, keyword]),
                "CombMNZ": comb_mnz([semantic, keyword]),
                "logistic LTR": model.fuse([semantic, keyword]),
            }
            for name, ranking in fused.items():
                recalls[name].append(
                    recall_at_k(ranking.table_ids(K), gains, K)
                )
        means = {}
        for name, values in recalls.items():
            means[name] = summarize(values)["mean"]
            print(f"  {name:<20} recall mean = {means[name]:.3f}")
        return means

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    components = max(means["BM25"], means["STST"])
    # At least one principled fusion method must be competitive with
    # the best single component and with the paper's interleave.
    best_fusion = max(means["RRF"], means["CombMNZ"],
                      means["logistic LTR"])
    assert best_fusion >= 0.9 * components
    assert best_fusion >= 0.9 * means["interleave (paper)"]
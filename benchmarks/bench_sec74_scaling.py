"""Section 7.4: runtime scales linearly with synthetic corpus size.

The paper expands WT2015 to 0.7M/1.2M/1.7M tables by row resampling
and observes linearly growing runtimes (the search-space reduction
percentage is stable across sizes).  This bench reproduces the
construction at laptop scale with three corpus sizes and checks the
linear trend.
"""

import time

import pytest

from benchmarks.conftest import print_header
from repro import Thetis
from repro.benchgen import expand_lake
from repro.lsh import RECOMMENDED_CONFIG

#: Synthetic corpus sizes (the paper uses 0.7M / 1.2M / 1.7M).
SIZES = (2000, 4000, 6000)


def test_sec74_scaling(wt_bench, benchmark):
    queries = list(wt_bench.queries.one_tuple.values())[:5]

    def run():
        print_header("Section 7.4 - runtime vs synthetic corpus size "
                      "(types, LSH (30,10))")
        rows = []
        for size in SIZES:
            lake, mapping = expand_lake(
                wt_bench.lake, wt_bench.mapping,
                num_new_tables=size - len(wt_bench.lake),
                seed=31,
            )
            thetis = Thetis(lake, wt_bench.graph, mapping)
            prefilter = thetis.prefilter("types", RECOMMENDED_CONFIG)
            start = time.perf_counter()
            reductions = []
            for query in queries:
                candidates = prefilter.candidate_tables(query, votes=3)
                reductions.append(
                    prefilter.reduction(len(lake), candidates)
                )
                thetis.search(query, k=10, use_lsh=True,
                              lsh_config=RECOMMENDED_CONFIG, votes=3)
            elapsed = (time.perf_counter() - start) / len(queries)
            reduction = sum(reductions) / len(reductions)
            rows.append((size, elapsed, reduction))
            print(f"  {size:>6} tables   {elapsed:7.3f} s/query   "
                  f"reduction {reduction:6.1%}")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    (s1, t1, r1), (_, t2, _), (s3, t3, r3) = rows
    # Runtime grows with corpus size ...
    assert t3 > t1
    # ... sub-quadratically: ~linear growth means time ratio tracks the
    # size ratio within a generous factor.
    assert t3 / t1 < 3.0 * (s3 / s1)
    # Reduction percentage is broadly stable across sizes (paper's
    # explanation for the linear trend).
    assert abs(r1 - r3) < 0.25

"""LSH candidate generation fused into the serve path (Section 6).

Measures the full prefilter pipeline over the WT2015-profile corpus:
LSEI votes produce a shortlist, the vectorized kernel rescoring is
restricted to candidate rows, and score-bound early termination stops
once no remaining candidate can enter the top-k.  Reports — and gates
— the two numbers the pipeline must deliver simultaneously:

* **work reduction**: tables actually scored per query must shrink by
  at least ``MIN_REDUCTION_FACTOR`` versus scoring the whole lake
  (LSH voting alone prunes ~2x at vote threshold 1; the bound-ordered
  early termination supplies the rest);
* **quality**: recall@10 of the prefiltered ranking against the exact
  one must stay at or above ``MIN_RECALL`` (at vote threshold 1 the
  shortlist provably contains every nonzero-score table, so recall is
  1.0 by construction — the gate guards the termination logic).

A short served section drives the same pipeline through a real
``ServerThread`` with ``{"mode": "prefilter"}`` bodies and scrapes the
``/metrics`` prefilter block.  Everything lands in ``BENCH_serve.json``
under ``"prefilter"`` (scripts/ci.sh runs this with ``--quick``).
"""

import http.client
import json
import time

from benchmarks.conftest import print_header
from repro import Thetis
from repro.core.kernel import PrefilterStats
from repro.eval.metrics import ndcg_at_k, recall_at_k, summarize
from repro.lsh import LSHConfig
from repro.serve import ServeConfig, ServerThread

#: Operating point of the serve path: the paper's recommended banding
#: at vote threshold 1 (Table 4 row with lossless candidate sets).
CONFIG = LSHConfig(32, 8)
VOTES = 1
K = 10

#: Quality/efficiency gates (quick and full mode alike).
MIN_REDUCTION_FACTOR = 5.0
MIN_RECALL = 0.95

REPORT_PATH = "BENCH_serve.json"


def _bench_queries(bench):
    """All 1-tuple and 5-tuple benchmark queries, keyed by id."""
    queries = {}
    queries.update(bench.queries.one_tuple)
    queries.update(bench.queries.five_tuple)
    return queries


def _merge_report(block):
    """Read-modify-write the shared serve report."""
    try:
        with open(REPORT_PATH, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        payload = {}
    payload["prefilter"] = block
    with open(REPORT_PATH, "w", encoding="utf-8") as out:
        json.dump(payload, out, indent=2)
    print(f"  report -> {REPORT_PATH} (prefilter)")


def _served_section(bench, queries):
    """Drive mode=prefilter through HTTP; return the /metrics block."""
    lake, mapping = Thetis(
        bench.lake, bench.graph, bench.mapping
    ).snapshot_inputs()
    served = Thetis(lake, bench.graph, mapping, engine_kind="vectorized")
    handle = ServerThread(
        served,
        ServeConfig(port=0, max_batch_size=8, flush_interval=0.002,
                    prefilter_guardrail_every=2),
    )
    handle.start().wait_ready(timeout=300)
    try:
        connection = http.client.HTTPConnection(
            "127.0.0.1", handle.port, timeout=120
        )
        try:
            for query in queries.values():
                body = json.dumps({
                    "tuples": [list(t) for t in query.tuples],
                    "k": K,
                    "mode": "prefilter",
                }).encode("utf-8")
                connection.request(
                    "POST", "/search", body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                payload = json.loads(response.read())
                assert response.status == 200, payload
                assert payload["mode"] == "prefilter"
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            metrics = json.loads(response.read())
        finally:
            connection.close()
    finally:
        handle.stop(timeout=120)
    return metrics["prefilter"]


def test_lsh_serve_pipeline(wt_bench, benchmark):
    thetis = Thetis(wt_bench.lake, wt_bench.graph, wt_bench.mapping,
                    engine_kind="vectorized")
    queries = _bench_queries(wt_bench)
    truths = wt_bench.ground_truths()
    total = len(wt_bench.lake)

    # Warm the engine and the LSEI outside the timed region.
    first = next(iter(queries.values()))
    thetis.search(first, k=K, mode="exact")
    thetis.search(first, k=K, mode="prefilter", lsh_config=CONFIG,
                  votes=VOTES)

    def run():
        thetis.prefilter_stats = PrefilterStats()
        start = time.perf_counter()
        exact = {
            qid: thetis.search(query, k=K, mode="exact")
            for qid, query in queries.items()
        }
        exact_seconds = time.perf_counter() - start
        start = time.perf_counter()
        approx = {
            qid: thetis.search(query, k=K, mode="prefilter",
                               lsh_config=CONFIG, votes=VOTES)
            for qid, query in queries.items()
        }
        prefilter_seconds = time.perf_counter() - start
        return exact, approx, exact_seconds, prefilter_seconds

    exact, approx, exact_seconds, prefilter_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    recalls, ndcg_deltas = [], []
    for qid, query in queries.items():
        gains = {
            tid: exact[qid].score_of(tid)
            for tid in exact[qid].table_ids()
        }
        recalls.append(recall_at_k(approx[qid].table_ids(), gains, K))
        truth = truths[qid].gains
        if truth:
            ndcg_deltas.append(
                ndcg_at_k(exact[qid].table_ids(), truth, K)
                - ndcg_at_k(approx[qid].table_ids(), truth, K)
            )

    stats = thetis.prefilter_stats.as_dict()
    mean_scored = stats["mean_shortlist"] * stats["scored_fraction"]
    scored_factor = (total / mean_scored) if mean_scored else float("inf")
    lsh_reduction = stats["candidate_reduction"]
    recall_summary = summarize(recalls)
    speedup = (exact_seconds / prefilter_seconds) if prefilter_seconds \
        else float("inf")

    served_block = _served_section(wt_bench, queries)

    block = {
        "corpus_tables": total,
        "queries": len(queries),
        "config": str(CONFIG),
        "votes": VOTES,
        "k": K,
        "lsh_reduction": lsh_reduction,
        "mean_candidates": stats["mean_candidates"],
        "mean_tables_scored": mean_scored,
        "scored_reduction_factor": scored_factor,
        "early_termination_rate": stats["early_termination_rate"],
        "recall_mean": recall_summary["mean"],
        "recall_min": min(recalls) if recalls else 0.0,
        "ndcg_delta_mean": (
            sum(ndcg_deltas) / len(ndcg_deltas) if ndcg_deltas else 0.0
        ),
        "exact_seconds": exact_seconds,
        "prefilter_seconds": prefilter_seconds,
        "speedup": speedup,
        "served": served_block,
    }

    print_header(
        f"LSH serve pipeline ({total} tables, {len(queries)} queries, "
        f"{CONFIG} v{VOTES})"
    )
    print(f"  LSH candidates      {stats['mean_candidates']:8.1f} / {total}"
          f"  ({lsh_reduction * 100:5.1f}% pruned by voting)")
    print(f"  tables scored       {mean_scored:8.1f} / {total}"
          f"  ({scored_factor:5.1f}x work reduction)")
    print(f"  early termination   {stats['early_termination_rate'] * 100:5.1f}%"
          f" of queries")
    print(f"  recall@{K}           mean {recall_summary['mean']:.3f}"
          f"  min {block['recall_min']:.3f}")
    print(f"  ndcg@{K} delta       {block['ndcg_delta_mean']:+.4f}"
          f"  (exact - prefiltered, vs ground truth)")
    print(f"  wall time           exact {exact_seconds:.2f}s  "
          f"prefilter {prefilter_seconds:.2f}s  ({speedup:.2f}x)")
    print(f"  served guardrail    checks {served_block['guardrail']['checks']}"
          f"  min recall {served_block['guardrail']['min_recall']:.3f}")

    _merge_report(block)

    # The two gates the pipeline must deliver simultaneously.
    assert scored_factor >= MIN_REDUCTION_FACTOR, (
        f"prefilter pipeline scored too much of the lake: "
        f"{scored_factor:.1f}x < {MIN_REDUCTION_FACTOR}x"
    )
    assert recall_summary["mean"] >= MIN_RECALL, (
        f"prefiltered recall@{K} fell below the guardrail: "
        f"{recall_summary['mean']:.3f} < {MIN_RECALL}"
    )
    # At vote threshold 1 the shortlist contains every scoring table,
    # so the prefiltered top-k must equal the exact top-k.
    for qid in queries:
        assert approx[qid].table_ids() == exact[qid].table_ids(), qid
    # The served pipeline observed the same quality.
    assert served_block["queries"] >= len(queries)
    assert served_block["guardrail"]["checks"] >= 1
    assert served_block["guardrail"]["min_recall"] >= MIN_RECALL

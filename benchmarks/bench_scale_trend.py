"""Scale trend: keyword search weakens with corpus size, semantic holds.

The paper's recall headline ("up to 5.4x") is measured on 238k-1.7M
table corpora.  At small scale BM25 is nearly saturated, so the gap
between keyword and semantic retrieval is a function of corpus size.
This bench makes that dependence explicit: the same query workload is
evaluated over growing corpora generated from the same world, and the
STST-minus-BM25 recall gap must not shrink as the corpus grows.
"""

import pytest

from benchmarks.conftest import SEED, print_header
from repro import Thetis
from repro.baselines import BM25TableSearch, text_query_from_labels
from repro.benchgen import WT2015_PROFILE, build_benchmark
from repro.eval import recall_at_k, summarize

K = 100
SIZES = (500, 1000, 2000)


def test_scale_trend(wt_bench, benchmark):
    def run():
        print_header("Scale trend - BM25 vs STST recall@100 as the "
                      "corpus grows")
        gaps = []
        for size in SIZES:
            bench = build_benchmark(
                WT2015_PROFILE, num_tables=size, num_query_pairs=8,
                seed=SEED + 7, world=wt_bench.world,
            )
            thetis = Thetis(bench.lake, bench.graph, bench.mapping)
            bm25 = BM25TableSearch(bench.lake)
            bm25_recalls, stst_recalls = [], []
            for qid, query in bench.queries.five_tuple.items():
                gains = bench.ground_truth(qid).gains
                keyword = bm25.search(
                    text_query_from_labels(query, bench.graph), k=K
                )
                semantic = thetis.search(query, k=K)
                bm25_recalls.append(
                    recall_at_k(keyword.table_ids(K), gains, K)
                )
                stst_recalls.append(
                    recall_at_k(semantic.table_ids(K), gains, K)
                )
            bm25_mean = summarize(bm25_recalls)["mean"]
            stst_mean = summarize(stst_recalls)["mean"]
            gaps.append((size, bm25_mean, stst_mean,
                         stst_mean - bm25_mean))
            print(f"  {size:>5} tables   BM25={bm25_mean:.3f}   "
                  f"STST={stst_mean:.3f}   gap={stst_mean - bm25_mean:+.3f}")
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    (s1, bm1, _, g1), _, (s3, bm3, _, g3) = gaps
    # Keyword recall declines as the haystack grows ...
    assert bm3 <= bm1 + 0.05
    # ... so the semantic advantage does not shrink with scale.
    assert g3 >= g1 - 0.05

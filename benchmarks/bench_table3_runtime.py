"""Table 3: search runtime per LSH configuration and vote threshold.

Regenerates the paper's Table 3: wall-clock runtime of semantic table
search without prefiltering (STST/STSE) and with each LSH configuration
at vote thresholds 1 and 3, on 1-tuple and 5-tuple queries.

Paper shape to reproduce:
* every type-LSH configuration is much faster than brute force (up to
  17x in the paper);
* embedding-LSH reduces less and is therefore slower than type-LSH;
* 3 votes is at least as fast as 1 vote;
* (30, 10) is the best or near-best configuration.
"""

import time

import pytest

from benchmarks.conftest import print_header
from repro.lsh import LSHConfig

LSH_CONFIGS = (LSHConfig(32, 8), LSHConfig(128, 8), LSHConfig(30, 10))


def _mean_runtime(thetis, queries, method, config=None, votes=1):
    total = 0.0
    for query in queries:
        start = time.perf_counter()
        if config is None:
            thetis.search(query, k=10, method=method)
        else:
            thetis.search(query, k=10, method=method, use_lsh=True,
                          lsh_config=config, votes=votes)
        total += time.perf_counter() - start
    return total / len(queries)


def test_table3_runtime(wt_bench, wt_thetis, benchmark):
    def run():
        rows = {}
        for subset, queries in (
            ("1-tuple", list(wt_bench.queries.one_tuple.values())),
            ("5-tuple", list(wt_bench.queries.five_tuple.values())),
        ):
            row = {
                "STST": _mean_runtime(wt_thetis, queries, "types"),
                "STSE": _mean_runtime(wt_thetis, queries, "embeddings"),
            }
            for votes in (1, 3):
                for config in LSH_CONFIGS:
                    row[f"T{config} v{votes}"] = _mean_runtime(
                        wt_thetis, queries, "types", config, votes
                    )
                    row[f"E{config} v{votes}"] = _mean_runtime(
                        wt_thetis, queries, "embeddings", config, votes
                    )
            rows[subset] = row
        print_header("Table 3 - mean per-query runtime (seconds)")
        for subset, row in rows.items():
            print(f"  {subset} queries:")
            for name, seconds in row.items():
                print(f"    {name:<18} {seconds * 1000:8.1f} ms")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for subset, row in rows.items():
        brute_types = row["STST"]
        for config in LSH_CONFIGS:
            for votes in (1, 3):
                # Type-LSH prefiltering must beat brute force clearly.
                assert row[f"T{config} v{votes}"] < brute_types, (
                    f"{subset} T{config} v{votes} not faster"
                )
        # 3 votes filters at least as hard as 1 vote (allow 20% noise).
        assert row[f"T{LSHConfig(30, 10)} v3"] <= \
            1.2 * row[f"T{LSHConfig(30, 10)} v1"]

    # Speedup headline (paper: up to 17x with types).
    speedup = rows["5-tuple"]["STST"] / rows["5-tuple"][
        f"T{LSHConfig(30, 10)} v3"
    ]
    print(f"\n  headline speedup (types, (30,10), 3 votes, 5-tuple): "
          f"{speedup:.1f}x")
    assert speedup > 2.0

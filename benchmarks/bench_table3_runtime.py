"""Table 3: search runtime per LSH configuration and vote threshold.

Regenerates the paper's Table 3: wall-clock runtime of semantic table
search without prefiltering (STST/STSE) and with each LSH configuration
at vote thresholds 1 and 3, on 1-tuple and 5-tuple queries.

Paper shape to reproduce:
* every type-LSH configuration is much faster than brute force (up to
  17x in the paper);
* embedding-LSH reduces less and is therefore slower than type-LSH;
* 3 votes is at least as fast as 1 vote;
* (30, 10) is the best or near-best configuration.

Beyond the paper's table, ``test_table3_parallel_cache_speedup``
measures the scaling layer this repo adds on top: sequential search
with the seed's per-query similarity memo vs sharded parallel search
over the persistent similarity cache at steady state (``--workers``
selects the pool size).  On a multi-core box both sharding and caching
contribute; on a single core the speedup is the cache amortization
alone, so the assertion holds either way.
"""

import time

import pytest

from benchmarks.conftest import print_header
from repro.core import ParallelSearchEngine
from repro.lsh import LSHConfig

LSH_CONFIGS = (LSHConfig(32, 8), LSHConfig(128, 8), LSHConfig(30, 10))


def _mean_runtime(thetis, queries, method, config=None, votes=1):
    total = 0.0
    for query in queries:
        start = time.perf_counter()
        if config is None:
            thetis.search(query, k=10, method=method)
        else:
            thetis.search(query, k=10, method=method, use_lsh=True,
                          lsh_config=config, votes=votes)
        total += time.perf_counter() - start
    return total / len(queries)


def test_table3_runtime(wt_bench, wt_thetis, benchmark):
    def run():
        rows = {}
        for subset, queries in (
            ("1-tuple", list(wt_bench.queries.one_tuple.values())),
            ("5-tuple", list(wt_bench.queries.five_tuple.values())),
        ):
            row = {
                "STST": _mean_runtime(wt_thetis, queries, "types"),
                "STSE": _mean_runtime(wt_thetis, queries, "embeddings"),
            }
            for votes in (1, 3):
                for config in LSH_CONFIGS:
                    row[f"T{config} v{votes}"] = _mean_runtime(
                        wt_thetis, queries, "types", config, votes
                    )
                    row[f"E{config} v{votes}"] = _mean_runtime(
                        wt_thetis, queries, "embeddings", config, votes
                    )
            rows[subset] = row
        print_header("Table 3 - mean per-query runtime (seconds)")
        for subset, row in rows.items():
            print(f"  {subset} queries:")
            for name, seconds in row.items():
                print(f"    {name:<18} {seconds * 1000:8.1f} ms")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for subset, row in rows.items():
        brute_types = row["STST"]
        for config in LSH_CONFIGS:
            for votes in (1, 3):
                # Type-LSH prefiltering must beat brute force clearly.
                assert row[f"T{config} v{votes}"] < brute_types, (
                    f"{subset} T{config} v{votes} not faster"
                )
        # 3 votes filters at least as hard as 1 vote (allow 20% noise).
        assert row[f"T{LSHConfig(30, 10)} v3"] <= \
            1.2 * row[f"T{LSHConfig(30, 10)} v1"]

    # Speedup headline (paper: up to 17x with types).
    speedup = rows["5-tuple"]["STST"] / rows["5-tuple"][
        f"T{LSHConfig(30, 10)} v3"
    ]
    print(f"\n  headline speedup (types, (30,10), 3 votes, 5-tuple): "
          f"{speedup:.1f}x")
    assert speedup > 2.0


def test_table3_parallel_cache_speedup(wt_bench, wt_thetis, request,
                                       benchmark):
    """Sequential cold cache vs sharded workers over a warm cache.

    Uses the embeddings engine: cosine similarity is the expensive
    sigma (one numpy reduction per entity pair), so it is where the
    Section 7.3 similarity cost — and hence the cache's amortization —
    actually shows up in wall-clock time.
    """
    workers = request.config.getoption("--workers")
    engine = wt_thetis.engine("embeddings")
    queries = (
        list(wt_bench.queries.one_tuple.values())
        + list(wt_bench.queries.five_tuple.values())
    )

    def phase_sequential_percall():
        # The seed engine's behavior: the similarity memo is dropped
        # before every query, so each query re-pays the full Section
        # 7.3 similarity cost.
        start = time.perf_counter()
        for query in queries:
            engine.similarity_cache.clear()
            engine.search(query, k=10)
        return time.perf_counter() - start

    def phase_parallel_persistent(parallel):
        start = time.perf_counter()
        for query in queries:
            parallel.search(query, k=10)
        return time.perf_counter() - start

    def run():
        # Warm the table-view caches once so both phases measure
        # scoring cost, not grid construction.
        engine.search(queries[0], k=10)

        # Interleave the phases and keep the per-phase minimum: single
        # back-to-back timings on a shared box flip on scheduler noise,
        # while minima of alternating reps compare best-case to
        # best-case.  Phase A clears the cache per query (seed
        # behavior); phase B is the steady state of the new substrate —
        # persistent cache, warmed by its own first pass, + sharded
        # workers.
        sequential_times, parallel_times = [], []
        with ParallelSearchEngine(engine, workers=workers) as parallel:
            for _ in range(3):
                sequential_times.append(phase_sequential_percall())
                # Phase A's per-query clears emptied the shared cache;
                # re-warm so phase B measures steady state.
                engine.similarity_cache.clear()
                engine.similarity_cache.reset_stats()
                engine.profile.reset()
                phase_parallel_persistent(parallel)
                parallel_times.append(phase_parallel_persistent(parallel))

        sequential_percall = min(sequential_times)
        parallel_persistent = min(parallel_times)
        stats = engine.cache_stats()["similarity"]
        speedup = sequential_percall / parallel_persistent
        print_header(
            "Table 3 extension - parallel sharding + persistent cache"
        )
        print(f"  queries                          {len(queries)}")
        print(f"  workers                          {workers}")
        print(f"  sequential, per-query memo       "
              f"{sequential_percall * 1000:8.1f} ms")
        print(f"  parallel,   persistent cache     "
              f"{parallel_persistent * 1000:8.1f} ms")
        print(f"  speedup                          {speedup:8.2f}x")
        print(f"  similarity cache                 {stats.format_row()}")
        print(f"  profile hit rate                 "
              f"{engine.profile.similarity_hit_rate:5.1%}")
        return speedup, stats.hit_rate

    speedup, hit_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    # The persistent cache plus sharding must beat the seed's
    # per-query-memo search; the cache alone guarantees this even on
    # one core.
    assert speedup > 1.0
    assert hit_rate > 0.5

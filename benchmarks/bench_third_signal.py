"""Future-work bench: metadata as a third relevance signal.

The conclusion notes that "incorporating available metadata as a third
signal in our relevance ranking is also a possibility to explore ...
but only when metadata is informative and consistent between tables".
This bench fuses three rankings — content BM25, semantic STST, and
metadata-only keyword search — and quantifies both halves of that
sentence: naively adding the (weak) metadata ranker via equal-weight
RRF dilutes the strong signals, while a learned fusion discovers the
metadata weight and keeps the two-signal quality; stripping metadata
from half the corpus erodes the signal further.
"""

import pytest

from benchmarks.conftest import print_header
from repro.baselines import MetadataKeywordSearch, text_query_from_labels
from repro.core import LogisticFusion, reciprocal_rank_fusion
from repro.datalake import DataLake, Table
from repro.eval import recall_at_k, summarize

K = 100


def _strip_metadata(lake, fraction=0.5):
    """A copy of the lake with metadata removed from every 2nd table."""
    stripped = DataLake()
    for index, table in enumerate(lake):
        metadata = dict(table.metadata) if index % 2 else {}
        stripped.add(
            Table(table.table_id, table.attributes,
                  [list(r) for r in table.rows], metadata=metadata)
        )
    return stripped


def test_third_signal(wt_bench, wt_thetis, wt_bm25, wt_ground_truths,
                      benchmark):
    metadata_search = MetadataKeywordSearch(wt_bench.lake)
    stripped_search = MetadataKeywordSearch(_strip_metadata(wt_bench.lake))

    query_ids = list(wt_bench.queries.five_tuple)
    half = len(query_ids) // 2
    train_ids, test_ids = query_ids[:half], query_ids[half:]

    def rankings_for(qid, meta_searcher):
        query = wt_bench.queries.all_queries()[qid]
        keywords = text_query_from_labels(query, wt_bench.graph)
        return [
            wt_bm25.search(keywords, k=K),
            wt_thetis.search(query, k=K),
            meta_searcher.search(keywords, k=K),
        ]

    def run():
        print_header("Future work - metadata as a third signal "
                      f"(recall@{K}, held-out 5-tuple queries)")
        # A learned fusion discovers how much the metadata ranker is
        # worth; naive equal-weight RRF cannot.
        model = LogisticFusion(num_systems=3, seed=0)
        model.fit([
            (rankings_for(qid, metadata_search),
             wt_ground_truths[qid].gains)
            for qid in train_ids
        ])
        recalls = {name: [] for name in
                   ("two signals, RRF (BM25+STST)",
                    "three signals, naive RRF",
                    "three signals, learned weights",
                    "three signals, 50% metadata stripped")}
        for qid in test_ids:
            gains = wt_ground_truths[qid].gains
            content, semantic, metadata = rankings_for(
                qid, metadata_search
            )
            stripped = rankings_for(qid, stripped_search)[2]
            fused = {
                "two signals, RRF (BM25+STST)": reciprocal_rank_fusion(
                    [content, semantic]
                ),
                "three signals, naive RRF": reciprocal_rank_fusion(
                    [content, semantic, metadata]
                ),
                "three signals, learned weights": model.fuse(
                    [content, semantic, metadata]
                ),
                "three signals, 50% metadata stripped":
                    reciprocal_rank_fusion(
                        [content, semantic, stripped]
                    ),
            }
            for name, ranking in fused.items():
                recalls[name].append(
                    recall_at_k(ranking.table_ids(K), gains, K)
                )
        means = {}
        for name, values in recalls.items():
            means[name] = summarize(values)["mean"]
            print(f"  {name:<38} recall mean = {means[name]:.3f}")
        print(f"  learned weights: BM25={model.weights[0]:+.2f} "
              f"STST={model.weights[1]:+.2f} "
              f"metadata={model.weights[2]:+.2f}")
        return means

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    two = means["two signals, RRF (BM25+STST)"]
    naive = means["three signals, naive RRF"]
    learned = means["three signals, learned weights"]
    # The paper's caveat, quantified: naively mixing in a weak metadata
    # ranker dilutes the strong signals...
    assert naive <= two + 0.02
    # ...while a learned weighting recovers (metadata is used "only
    # when informative").
    assert learned >= 0.9 * two

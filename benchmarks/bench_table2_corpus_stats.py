"""Table 2: benchmark corpus statistics.

Regenerates the paper's Table 2 (number of tables, mean rows, mean
columns, mean entity-link coverage) for all four corpus profiles.
Absolute table counts are scaled down (see conftest); rows, columns,
and coverage track the paper's targets directly.
"""

from benchmarks.conftest import print_header

# Paper's Table 2 for reference output.
PAPER_ROWS = {
    "wt2015": (238_038, 35.1, 5.8, 27.7),
    "wt2019": (457_714, 23.9, 6.3, 18.2),
    "gittables": (864_478, 142.0, 12.0, 29.6),
    "synthetic": (1_732_328, 9.6, 5.8, 34.8),
}


def _report(name, bench):
    stats = bench.statistics()
    paper = PAPER_ROWS[name]
    print(stats.format_row(name))
    print(
        f"{'  (paper)':<12} T={paper[0]:>9,}  R={paper[1]:>7.1f}  "
        f"C={paper[2]:>5.1f}  Cov={paper[3]:>5.1f}%"
    )
    return stats


def test_table2_wt2015(wt_bench, benchmark):
    print_header("Table 2 - WT2015 corpus statistics")
    stats = benchmark.pedantic(
        lambda: _report("wt2015", wt_bench), rounds=1, iterations=1
    )
    paper = PAPER_ROWS["wt2015"]
    assert abs(stats.mean_rows - paper[1]) < 10.0
    assert abs(stats.mean_columns - paper[2]) < 1.0
    assert abs(stats.mean_coverage * 100 - paper[3]) < 6.0


def test_table2_wt2019(wt2019_bench, benchmark):
    print_header("Table 2 - WT2019 corpus statistics")
    stats = benchmark.pedantic(
        lambda: _report("wt2019", wt2019_bench), rounds=1, iterations=1
    )
    paper = PAPER_ROWS["wt2019"]
    assert abs(stats.mean_columns - paper[2]) < 1.0
    assert abs(stats.mean_coverage * 100 - paper[3]) < 6.0


def test_table2_gittables(git_bench, benchmark):
    print_header("Table 2 - GitTables corpus statistics")
    stats = benchmark.pedantic(
        lambda: _report("gittables", git_bench), rounds=1, iterations=1
    )
    paper = PAPER_ROWS["gittables"]
    assert abs(stats.mean_rows - paper[1]) < 25.0
    assert abs(stats.mean_columns - paper[2]) < 1.5
    # GitTables coverage comes from label linking, not gold links, and
    # our wide-schema profile has ~2-3 entity columns of 12, capping the
    # reachable coverage near 20% (paper: 29.6%; see EXPERIMENTS.md).
    assert 10.0 < stats.mean_coverage * 100 < 32.0


def test_table2_synthetic(wt_bench, benchmark):
    """Synthetic corpus: row-resampled expansion of the base corpus."""
    from repro.benchgen import expand_lake
    from repro.datalake import corpus_statistics

    print_header("Table 2 - Synthetic corpus statistics")

    def build_and_report():
        lake, mapping = expand_lake(
            wt_bench.lake, wt_bench.mapping, num_new_tables=2000,
            mean_rows=9.6, seed=3,
        )
        stats = corpus_statistics(
            lake.subset(t for t in lake.table_ids() if t.startswith("syn-")),
            mapping,
        )
        print(stats.format_row("synthetic"))
        paper = PAPER_ROWS["synthetic"]
        print(
            f"{'  (paper)':<12} T={paper[0]:>9,}  R={paper[1]:>7.1f}  "
            f"C={paper[2]:>5.1f}  Cov={paper[3]:>5.1f}%"
        )
        return stats

    stats = benchmark.pedantic(build_and_report, rounds=1, iterations=1)
    assert abs(stats.mean_rows - 9.6) < 4.0

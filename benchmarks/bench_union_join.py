"""Vectorized union/join kernels vs scalar baselines: speedup + parity.

Two experiments over the Table 3 benchmark corpus:

* ``test_union_join_kernel_speedup`` — builds each scalar baseline and
  its vectorized counterpart, checks full-ranking parity, then times
  ranked retrieval (``k=10``, the serving shape) per query and through
  ``search_batch``.  Index build time is reported separately: both
  sides pay a one-time column-encoding pass, and folding it into the
  per-query window would only measure that shared constant.  Gates:

  - identical rankings with scores within 1e-9 for every variant;
  - union x {types, embeddings}: >= 5x sequential speedup — the
    scalar union baseline runs a pure-Python Hungarian assignment per
    table, which the kernel replaces with corpus-wide enumeration;
  - join x {containment, jaccard}: >= 1x batched speedup (a
    no-regression floor).  The scalar join baseline is already
    sublinear — a dict-postings probe touching only candidate
    columns, microseconds per query on entity-label value sets — so
    there is no per-table Python loop to vectorize away; the
    kernel's value for join is uniform task serving (shard
    restriction, batched lanes) at bit parity.  Measured speedups
    (~1.5x sequential, ~1.5-4.5x batched, growing with corpus size)
    are recorded honestly rather than gated at a bar the baseline's
    own efficiency makes unreachable.

* ``test_union_join_served_throughput`` — boots a real
  :class:`~repro.serve.server.ServerThread` and drives closed-loop
  load through ``POST /search`` with the ``task`` field set to
  ``union`` and ``join``, asserting served rankings match direct
  ``Thetis.search`` of the same task and recording throughput and
  latency percentiles.

Results land in ``BENCH_serve.json`` under ``"union_join"``
(scripts/ci.sh runs both with ``--quick``).
"""

import json
import time

from benchmarks.conftest import print_header
from repro.baselines import JoinTableSearch, UnionTableSearch
from repro.core.kernel import (
    VectorizedJoinSearchEngine,
    VectorizedUnionSearchEngine,
)
from repro.core.query import Query
from repro.serve import LoadGenerator, ServeConfig, ServerThread
from repro.system import Thetis

TOLERANCE = 1e-9
REQUIRED_UNION_SPEEDUP = 5.0
REQUIRED_JOIN_BATCH_SPEEDUP = 1.0
K_SERVE = 10
REPS = 3

CONCURRENCY = 6
TOTAL_REQUESTS = 240
QUICK_TOTAL_REQUESTS = 60

REPORT_PATH = "BENCH_serve.json"


def _queries(bench):
    return (
        list(bench.queries.one_tuple.values())
        + list(bench.queries.five_tuple.values())
    )


def _best_of(fn, reps=REPS):
    """Min-of-reps wall time: robust against scheduler noise."""
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _max_delta(scalar_rankings, vector_rankings):
    """Largest per-table score difference, plus an order check."""
    worst = 0.0
    for scalar_set, vector_set in zip(scalar_rankings, vector_rankings):
        scalar_ids = [s.table_id for s in scalar_set]
        vector_ids = [s.table_id for s in vector_set]
        assert scalar_ids == vector_ids, (
            f"ranking order diverged: {vector_ids[:3]} vs {scalar_ids[:3]}"
        )
        for scalar_entry, vector_entry in zip(scalar_set, vector_set):
            worst = max(
                worst, abs(scalar_entry.score - vector_entry.score)
            )
    return worst


def _merge_report(key, payload):
    """Read-modify-write ``BENCH_serve.json``'s ``union_join`` block."""
    try:
        with open(REPORT_PATH, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError):
        document = {}
    document.setdefault("union_join", {})[key] = payload
    with open(REPORT_PATH, "w", encoding="utf-8") as out:
        json.dump(document, out, indent=2)
    print(f"  report -> {REPORT_PATH} (union_join.{key})")


def test_union_join_kernel_speedup(wt_bench, wt_thetis, benchmark):
    queries = _queries(wt_bench)
    lake, graph, mapping = wt_bench.lake, wt_bench.graph, wt_bench.mapping
    store = wt_thetis.embeddings

    variants = [
        (
            "union_types",
            lambda: UnionTableSearch(lake, mapping, graph=graph),
            lambda: VectorizedUnionSearchEngine(lake, mapping, graph=graph),
            False,
        ),
        (
            "union_embeddings",
            lambda: UnionTableSearch(
                lake, mapping, store=store, column_encoder="embeddings"
            ),
            lambda: VectorizedUnionSearchEngine(
                lake, mapping, store=store, column_encoder="embeddings"
            ),
            False,
        ),
        (
            "join_containment",
            lambda: JoinTableSearch(lake),
            lambda: VectorizedJoinSearchEngine(lake, graph),
            True,
        ),
        (
            "join_jaccard",
            lambda: JoinTableSearch(lake, mode="jaccard"),
            lambda: VectorizedJoinSearchEngine(lake, graph, mode="jaccard"),
            True,
        ),
    ]

    def run():
        report = {}
        for name, make_scalar, make_vector, scalar_join in variants:
            # Build both indexes (one-time, shared encoding work) and
            # force the lazy paths so the timed windows are pure search.
            start = time.perf_counter()
            scalar = make_scalar()
            scalar.search(queries[0], graph) if scalar_join else None
            scalar_build = time.perf_counter() - start
            start = time.perf_counter()
            vector = make_vector()
            vector.prepare()
            vector_build = time.perf_counter() - start

            # Parity on full rankings: the kernels are optimizations,
            # not approximations.
            if scalar_join:
                scalar_rankings = [
                    scalar.search(q, graph, k=None) for q in queries
                ]
            else:
                scalar_rankings = [
                    scalar.search(q, k=None) for q in queries
                ]
            vector_rankings = [vector.search(q, k=None) for q in queries]
            delta = _max_delta(scalar_rankings, vector_rankings)

            # Ranked retrieval at k=10, the shape every served request
            # takes: scalar loop vs kernel loop vs one stacked batch.
            if scalar_join:
                scalar_seconds = _best_of(lambda: [
                    scalar.search(q, graph, k=K_SERVE) for q in queries
                ])
            else:
                scalar_seconds = _best_of(lambda: [
                    scalar.search(q, k=K_SERVE) for q in queries
                ])
            vector_seconds = _best_of(lambda: [
                vector.search(q, k=K_SERVE) for q in queries
            ])
            batch_seconds = _best_of(
                lambda: vector.search_batch(queries, k=K_SERVE)
            )
            report[name] = {
                "scalar_build_seconds": scalar_build,
                "vectorized_build_seconds": vector_build,
                "scalar_search_seconds": scalar_seconds,
                "vectorized_search_seconds": vector_seconds,
                "vectorized_batch_seconds": batch_seconds,
                "sequential_speedup": scalar_seconds / vector_seconds,
                "batch_speedup": scalar_seconds / batch_seconds,
                "max_score_delta": delta,
            }
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        f"Union/join kernels vs scalar baselines "
        f"({len(wt_bench.lake)} tables, {len(queries)} queries, "
        f"k={K_SERVE})"
    )
    for name, row in report.items():
        print(f"  {name}:")
        print(f"    build (scalar/vec) "
              f"{row['scalar_build_seconds']:7.2f} / "
              f"{row['vectorized_build_seconds']:.2f} s")
        print(f"    scalar search   {row['scalar_search_seconds']*1e3:8.1f} ms")
        print(f"    vec search      {row['vectorized_search_seconds']*1e3:8.1f} ms"
              f"   -> {row['sequential_speedup']:6.1f}x")
        print(f"    vec batch       {row['vectorized_batch_seconds']*1e3:8.1f} ms"
              f"   -> {row['batch_speedup']:6.1f}x")
        print(f"    max score delta {row['max_score_delta']:.3e}")

    _merge_report("kernel", {
        "corpus_tables": len(wt_bench.lake),
        "queries": len(queries),
        "k": K_SERVE,
        "tolerance": TOLERANCE,
        "required_union_speedup": REQUIRED_UNION_SPEEDUP,
        "required_join_batch_speedup": REQUIRED_JOIN_BATCH_SPEEDUP,
        "variants": report,
    })

    for name, row in report.items():
        assert row["max_score_delta"] <= TOLERANCE, (
            f"{name}: parity broken ({row['max_score_delta']:.3e})"
        )
        if name.startswith("union"):
            assert row["sequential_speedup"] >= REQUIRED_UNION_SPEEDUP, (
                f"{name}: speedup {row['sequential_speedup']:.1f}x < "
                f"{REQUIRED_UNION_SPEEDUP}x"
            )
        else:
            assert row["batch_speedup"] >= REQUIRED_JOIN_BATCH_SPEEDUP, (
                f"{name}: batched speedup {row['batch_speedup']:.1f}x "
                f"regressed below "
                f"{REQUIRED_JOIN_BATCH_SPEEDUP}x"
            )


def _task_payloads(bench, k=K_SERVE):
    return [
        {"tuples": [list(t) for t in query.tuples], "k": k}
        for query in _queries(bench)
    ]


def _assert_task_parity(port, reference, payloads, task):
    """POST /search {"task": ...} must match direct Thetis.search."""
    import http.client

    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        for payload in payloads[:4]:
            body = dict(payload, task=task)
            connection.request(
                "POST", "/search",
                body=json.dumps(body).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            decoded = json.loads(response.read())
            assert response.status == 200, decoded
            assert decoded["task"] == task
            query = Query(tuple(tuple(t) for t in payload["tuples"]))
            direct = reference.search(query, k=payload["k"], task=task)
            served = [
                (r["table_id"], r["score"]) for r in decoded["results"]
            ]
            expected = [(s.table_id, s.score) for s in direct]
            assert served == expected, (
                f"served {task} ranking diverged: "
                f"{served[:3]} vs {expected[:3]}"
            )
    finally:
        connection.close()


def test_union_join_served_throughput(wt_bench, benchmark, request):
    quick = request.config.getoption("--quick")
    total = QUICK_TOTAL_REQUESTS if quick else TOTAL_REQUESTS

    reference = Thetis(wt_bench.lake, wt_bench.graph, wt_bench.mapping)
    lake, mapping = reference.snapshot_inputs()
    served = Thetis(lake, wt_bench.graph, mapping)
    payloads = _task_payloads(wt_bench)

    handle = ServerThread(
        served,
        ServeConfig(port=0, max_batch_size=8, flush_interval=0.002),
    )
    handle.start().wait_ready(timeout=300)
    try:
        def run():
            reports = {}
            for task in ("union", "join"):
                _assert_task_parity(
                    handle.port, reference, payloads, task
                )
                generator = LoadGenerator(
                    "127.0.0.1", handle.port, payloads,
                    timeout=120, task=task,
                )
                reports[task] = generator.run_closed(
                    concurrency=CONCURRENCY, total_requests=total
                )
            return reports

        reports = benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        handle.stop()
        reference.close()

    print_header(
        f"Served union/join throughput (closed loop, "
        f"concurrency={CONCURRENCY}, {total} requests per task)"
    )
    section = {}
    for task, report in reports.items():
        print(f"  {task}:")
        print(f"    throughput  {report.throughput:8.1f} req/s")
        print(f"    p50         {report.percentile_ms(0.50):8.1f} ms")
        print(f"    p95         {report.percentile_ms(0.95):8.1f} ms")
        print(f"    ok/sent     {report.ok}/{report.sent}")
        section[task] = report.to_json()
        assert report.ok == total, (
            f"{task}: {report.errors} errors, {report.rejected} rejects, "
            f"{report.timeouts} timeouts"
        )

    _merge_report("served", {
        "concurrency": CONCURRENCY,
        "requests_per_task": total,
        "tasks": section,
    })

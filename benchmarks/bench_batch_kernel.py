"""Multi-query batched kernel vs a per-query loop: speedup + parity.

The serve micro-batcher hands whole batches to
``VectorizedTableSearchEngine.search_batch``, which stacks every query
tuple into one fused corpus pass per segment.  This bench replays a
batch of 8 mixed-width queries both ways on a warm engine and reports:

* the *batched* speedup: one ``search_batch`` call vs the equivalent
  ``search`` loop (headline gate: >= 2x at batch size 8);
* the *dedup* speedup: the same batch with only 2 distinct queries,
  showing the canonical-dedup fan-out scoring each job once;
* the max per-table score delta between the two paths (the contract is
  bit-identity, so the gate is exact equality, not a tolerance).

The report folds into ``BENCH_kernel.json`` under the ``batch`` key
(scripts/ci.sh runs this with ``--quick``).
"""

import time

import pytest

from benchmarks.bench_kernel_speedup import (
    REPORT_PATH,
    VectorizedTableSearchEngine,
    _build,
    _max_delta,
    _merge_report,
    _queries,
)
from benchmarks.conftest import print_header
from repro.core.kernel import BatchStats

BATCH_SIZE = 8
ROUNDS = 5
K = 10
REQUIRED_BATCH_SPEEDUP = 2.0


def _batch_queries(bench):
    """8 distinct mixed-width queries (one-tuple and five-tuple)."""
    queries = _queries(bench)
    if len(queries) < BATCH_SIZE:
        pytest.skip(f"corpus provides only {len(queries)} queries")
    return queries[:BATCH_SIZE]


def _timed_looped(engine, queries, rounds):
    rankings = []
    start = time.perf_counter()
    for _ in range(rounds):
        rankings = [engine.search(query, k=K) for query in queries]
    return rankings, (time.perf_counter() - start) / rounds


def _timed_batched(engine, queries, rounds, batch_stats=None):
    rankings = []
    start = time.perf_counter()
    for _ in range(rounds):
        rankings = engine.search_batch(
            queries, k=K, batch_stats=batch_stats
        )
    return rankings, (time.perf_counter() - start) / rounds


def test_batch_kernel_speedup(wt_bench, wt_thetis, benchmark):
    queries = _batch_queries(wt_bench)

    def run():
        engine = _build(VectorizedTableSearchEngine, wt_thetis, "types")
        # Warm both paths: index compilation, similarity-row and
        # assignment memos are steady-state serving costs, not part of
        # the batched-vs-looped comparison.
        engine.search_batch(queries, k=K)
        for query in queries:
            engine.search(query, k=K)
        looped_rankings, looped_seconds = _timed_looped(
            engine, queries, ROUNDS
        )
        stats = BatchStats()
        batched_rankings, batched_seconds = _timed_batched(
            engine, queries, ROUNDS, batch_stats=stats
        )
        # Dedup fan-out: 8 slots, 2 distinct queries -> 2 scored jobs.
        dedup_batch = [queries[index % 2] for index in range(BATCH_SIZE)]
        engine.search_batch(dedup_batch, k=K)
        _, dedup_seconds = _timed_batched(engine, dedup_batch, ROUNDS)
        return {
            "batch_size": BATCH_SIZE,
            "k": K,
            "rounds": ROUNDS,
            "looped_seconds_per_batch": looped_seconds,
            "batched_seconds_per_batch": batched_seconds,
            "batched_speedup": looped_seconds / batched_seconds,
            "dedup_seconds_per_batch": dedup_seconds,
            "dedup_speedup": looped_seconds / dedup_seconds,
            "queries_per_batched_pass":
                stats.as_dict()["queries_per_batched_pass"],
            "max_score_delta": _max_delta(
                looped_rankings, batched_rankings
            ),
            "bit_identical": all(
                [(s.score, s.table_id) for s in looped]
                == [(s.score, s.table_id) for s in batched]
                for looped, batched in zip(
                    looped_rankings, batched_rankings
                )
            ),
        }

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        f"Batched scoring kernel vs per-query loop "
        f"({len(wt_bench.lake)} tables, batch size {BATCH_SIZE})"
    )
    print(f"  looped  {report['looped_seconds_per_batch'] * 1e3:8.2f}"
          f" ms/batch")
    print(f"  batched {report['batched_seconds_per_batch'] * 1e3:8.2f}"
          f" ms/batch   -> {report['batched_speedup']:5.2f}x")
    print(f"  dedup   {report['dedup_seconds_per_batch'] * 1e3:8.2f}"
          f" ms/batch   -> {report['dedup_speedup']:5.2f}x"
          f"  (2 distinct of {BATCH_SIZE})")
    print(f"  max score delta {report['max_score_delta']:.3e}")

    _merge_report("batch", report)
    print(f"  report -> {REPORT_PATH} (batch)")

    # The contract is bit-identity, not a tolerance: the batched pass
    # is the same arithmetic in the same order.
    assert report["bit_identical"], (
        f"batched ranking diverged (max delta "
        f"{report['max_score_delta']:.3e})"
    )
    assert report["batched_speedup"] >= REQUIRED_BATCH_SPEEDUP, (
        f"batched speedup {report['batched_speedup']:.2f}x < "
        f"{REQUIRED_BATCH_SPEEDUP}x at batch size {BATCH_SIZE}"
    )
    # Dedup can only help: scoring 2 jobs must not be slower than 8.
    assert report["dedup_seconds_per_batch"] <= \
        report["batched_seconds_per_batch"] * 1.25

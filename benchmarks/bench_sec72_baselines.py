"""Section 7.2 (text): union/join/TURL baselines score near zero.

The paper reports NDCG ~1000x lower than Thetis for SANTOS and D3L,
and 0.004-0.005 for TURL with small entity-tuple queries - these
methods rank structural similarity, not topical relevance.  This bench
regenerates that comparison with the re-implemented ranking principles.

The task dimension runs the same workloads through the vectorized
kernels (``Thetis.search(..., task="union"|"join")``, the engines the
serve and cluster paths dispatch to) and asserts their NDCG is
*identical* to the scalar baselines' — the kernels change the speed of
the ranking, never the ranking.
"""

import pytest

from benchmarks.conftest import print_header
from repro.baselines import JoinTableSearch, TurlLikeTableSearch, UnionTableSearch
from repro.eval import ExperimentRunner

K = 10


def test_sec72_baselines(wt_bench, wt_thetis, wt_ground_truths, benchmark):
    santos_like = UnionTableSearch(
        wt_bench.lake, wt_bench.mapping, graph=wt_bench.graph,
        column_encoder="types",
    )
    d3l_like = JoinTableSearch(wt_bench.lake)
    turl_like = TurlLikeTableSearch(
        wt_bench.lake, wt_bench.mapping, wt_thetis.embeddings
    )
    systems = {
        "STST": lambda q, k: wt_thetis.search(q, k=k),
        "SANTOS-like union": lambda q, k: santos_like.search(q, k=k),
        "D3L-like join": lambda q, k: d3l_like.search(
            q, wt_bench.graph, k=k
        ),
        "TURL-like": lambda q, k: turl_like.search(q, k=k),
        # The vectorized task engines, exactly as serving runs them.
        "union task (vec)": lambda q, k: wt_thetis.search(
            q, k=k, task="union"
        ),
        "join task (vec)": lambda q, k: wt_thetis.search(
            q, k=k, task="join"
        ),
    }
    runner = ExperimentRunner(wt_bench.queries.all_queries(),
                              wt_ground_truths)

    def run():
        print_header("Section 7.2 - structural baselines vs Thetis "
                      f"(NDCG@{K})")
        reports = {}
        for subset, ids in (
            ("1-tuple", list(wt_bench.queries.one_tuple)),
            ("5-tuple", list(wt_bench.queries.five_tuple)),
        ):
            print(f"  {subset} queries:")
            reports[subset] = {}
            for name, system in systems.items():
                report = runner.run_system(name, system, K, ids)
                reports[subset][name] = report.ndcg_summary()["mean"]
                print(f"    {name:<20} NDCG mean = "
                      f"{reports[subset][name]:.4f}")
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    for subset, by_system in reports.items():
        stst = by_system["STST"]
        # Structural rankings fall below semantic relevance ranking.
        # The paper reports a ~1000x gap; our synthetic ground truth is
        # category-based, which correlates topicality with schema
        # similarity far more than Wikipedia relevance labels do, so
        # the reproduced gap is smaller (see EXPERIMENTS.md).
        assert by_system["SANTOS-like union"] < 0.95 * stst, subset
        assert by_system["D3L-like join"] < 0.8 * stst, subset
        assert by_system["TURL-like"] < 0.75 * stst, subset
        # The vectorized task engines must reproduce the scalar
        # baselines' NDCG to the last bit: same rankings, same metric.
        assert (
            by_system["union task (vec)"]
            == by_system["SANTOS-like union"]
        ), subset
        assert by_system["join task (vec)"] == by_system["D3L-like join"], \
            subset

"""Figure 6: NDCG@10 as entity-link coverage decreases.

Follows the paper's methodology: retrieve the top-1000 tables, keep
only those whose per-table link coverage is at most a given cap, and
evaluate NDCG@10 of the remaining ranking.  Low-coverage tables are
intrinsically harder to retrieve, so quality degrades as the cap drops
- yet stays well above zero even at 20-40 % coverage.
"""

import pytest

from benchmarks.conftest import print_header
from repro.eval import ndcg_at_k, summarize

CAPS = (1.0, 0.8, 0.6, 0.4, 0.2)


def _coverage(bench, table_id):
    table = bench.lake.get(table_id)
    if table.num_cells == 0:
        return 0.0
    return bench.mapping.linked_cell_count(table_id) / table.num_cells


def test_fig6_coverage(wt_bench, wt_thetis, wt_ground_truths, benchmark):
    def run():
        print_header("Figure 6 - NDCG@10 vs entity-link coverage cap")
        results = {}
        for subset, ids in (
            ("1-tuple", list(wt_bench.queries.one_tuple)),
            ("5-tuple", list(wt_bench.queries.five_tuple)),
        ):
            # One top-1000 retrieval per query, filtered per cap.
            rankings = {
                qid: wt_thetis.search(
                    wt_bench.queries.all_queries()[qid], k=1000
                ).table_ids()
                for qid in ids
            }
            per_cap = {}
            for cap in CAPS:
                scores = []
                for qid in ids:
                    filtered = [
                        tid for tid in rankings[qid]
                        if _coverage(wt_bench, tid) <= cap
                    ]
                    scores.append(
                        ndcg_at_k(filtered[:10],
                                  wt_ground_truths[qid].gains, 10)
                    )
                per_cap[cap] = summarize(scores)["mean"]
            results[subset] = per_cap
            row = "  ".join(
                f"<= {cap:.0%}: {v:.3f}" for cap, v in per_cap.items()
            )
            print(f"  {subset}:  {row}")
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for subset, per_cap in results.items():
        # Quality degrades (weakly) as coverage drops ...
        assert per_cap[1.0] >= per_cap[0.2] - 0.05, subset
        # ... but low-coverage tables are still retrievable (paper:
        # up to 0.8 NDCG even with few linked entities).
        assert per_cap[0.4] > 0.1, subset

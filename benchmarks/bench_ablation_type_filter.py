"""Ablation: the frequent-type filtering threshold (Section 6.1).

The paper filters types occurring in more than 50 % of tables before
building type signatures, noting that decreasing the threshold hurts
prefiltering efficacy.  This bench sweeps the threshold and reports
search-space reduction and NDCG for each setting.
"""

import pytest

from benchmarks.conftest import print_header
from repro.eval import ndcg_at_k, summarize
from repro.lsh import (
    RECOMMENDED_CONFIG,
    TablePrefilter,
    TypeSignatureScheme,
    frequent_types,
)

K = 10
THRESHOLDS = (0.25, 0.5, 0.9)


def test_ablation_type_filter(wt_bench, wt_thetis, wt_ground_truths,
                              benchmark):
    query_ids = list(wt_bench.queries.one_tuple)

    def run():
        print_header("Ablation - frequent-type filter threshold")
        rows = {}
        for threshold in THRESHOLDS:
            excluded = frequent_types(
                wt_bench.mapping, wt_bench.graph,
                wt_bench.lake.table_ids(), threshold=threshold,
            )
            scheme = TypeSignatureScheme(
                wt_bench.graph, RECOMMENDED_CONFIG.num_vectors,
                excluded_types=excluded,
            )
            prefilter = TablePrefilter(
                scheme, RECOMMENDED_CONFIG, wt_bench.mapping
            )
            engine = wt_thetis.engine("types")
            reductions, scores = [], []
            for qid in query_ids:
                query = wt_bench.queries.all_queries()[qid]
                candidates = prefilter.candidate_tables(query)
                reductions.append(
                    prefilter.reduction(len(wt_bench.lake), candidates)
                )
                results = engine.search(query, k=K, candidates=candidates)
                scores.append(
                    ndcg_at_k(results.table_ids(K),
                              wt_ground_truths[qid].gains, K)
                )
            rows[threshold] = (
                len(excluded),
                summarize(reductions)["mean"],
                summarize(scores)["mean"],
            )
            print(f"  threshold {threshold:4.2f}: "
                  f"{rows[threshold][0]:>3} types filtered   "
                  f"reduction {rows[threshold][1]:6.1%}   "
                  f"NDCG {rows[threshold][2]:.3f}")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Filtering more types (lower threshold) must not *improve* NDCG
    # dramatically, and the paper's 50% default keeps quality intact.
    baseline = rows[0.5]
    assert baseline[2] > 0.3
    # A stricter filter removes at least as many types.
    assert rows[0.25][0] >= rows[0.9][0]

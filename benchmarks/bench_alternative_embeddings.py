"""Future-work bench: alternative entity embeddings (RDF2Vec vs TransE).

The conclusion plans to "explore the impact of alternative embeddings
and more advanced structural graph embeddings".  This bench swaps the
embedding trainer under STSE: walk-based RDF2Vec (the paper's choice)
vs translation-based TransE, trained on the same KG, evaluated with
the same engine.
"""

import pytest

from benchmarks.conftest import print_header
from repro.core import TableSearchEngine
from repro.embeddings import train_transe
from repro.eval import ExperimentRunner
from repro.similarity import EmbeddingCosineSimilarity, Informativeness

K = 10


def test_alternative_embeddings(wt_bench, wt_thetis, wt_ground_truths,
                                benchmark):
    informativeness = Informativeness.from_mapping(
        wt_bench.mapping, len(wt_bench.lake)
    )

    def run():
        print_header("Future work - alternative embeddings under STSE "
                      f"(NDCG@{K})")
        transe_store = train_transe(
            wt_bench.graph, dimensions=32, epochs=40, seed=0
        )
        engines = {
            "RDF2Vec (paper)": TableSearchEngine(
                wt_bench.lake, wt_bench.mapping,
                EmbeddingCosineSimilarity(wt_thetis.embeddings),
                informativeness=informativeness,
            ),
            "TransE": TableSearchEngine(
                wt_bench.lake, wt_bench.mapping,
                EmbeddingCosineSimilarity(transe_store),
                informativeness=informativeness,
            ),
        }
        runner = ExperimentRunner(wt_bench.queries.all_queries(),
                                  wt_ground_truths)
        means = {}
        for subset, ids in (
            ("1-tuple", list(wt_bench.queries.one_tuple)),
            ("5-tuple", list(wt_bench.queries.five_tuple)),
        ):
            print(f"  {subset} queries:")
            for name, engine in engines.items():
                report = runner.run_system(
                    name, lambda q, k, e=engine: e.search(q, k=k), K, ids
                )
                means[(subset, name)] = report.ndcg_summary()["mean"]
                print(f"    {name:<18} NDCG mean = "
                      f"{means[(subset, name)]:.3f}")
        return means

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    for subset in ("1-tuple", "5-tuple"):
        rdf2vec = means[(subset, "RDF2Vec (paper)")]
        transe = means[(subset, "TransE")]
        # Both embedding families must deliver usable semantic search;
        # which one wins is corpus-dependent (that is the experiment).
        assert rdf2vec > 0.3, subset
        assert transe > 0.3, subset

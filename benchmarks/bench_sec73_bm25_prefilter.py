"""Section 7.3 (text): BM25 is not a valid prefilter.

The paper tests replacing the LSEI with naive BM25 keyword
prefiltering and observes quality drops of 13-30 % versus LSH
prefiltering — keyword filtering discards relevant tables that contain
no exact matches.  This bench reproduces the comparison: semantic
search restricted to BM25's top candidates vs restricted to the LSEI's
candidates, at NDCG@10 (head quality) and recall@100 (the long tail,
where keyword prefiltering loses the match-free relevant tables).
"""

import pytest

from benchmarks.conftest import print_header
from repro.baselines import text_query_from_labels
from repro.eval import ndcg_at_k, recall_at_k, summarize
from repro.lsh import RECOMMENDED_CONFIG

K_HEAD = 10
K_TAIL = 100
#: BM25 prefilter keeps this many keyword candidates per query —
#: comparable selectivity to the LSEI at 3 votes on this corpus.
BM25_CANDIDATES = 400


def test_sec73_bm25_prefilter(wt_bench, wt_thetis, wt_bm25,
                              wt_ground_truths, benchmark):
    prefilter = wt_thetis.prefilter("types", RECOMMENDED_CONFIG)
    engine = wt_thetis.engine("types")

    def run():
        print_header("Section 7.3 - LSH vs BM25 prefiltering (types)")
        results = {}
        for subset, ids in (
            ("1-tuple", list(wt_bench.queries.one_tuple)),
            ("5-tuple", list(wt_bench.queries.five_tuple)),
        ):
            metrics = {"lsh_ndcg": [], "bm25_ndcg": [],
                       "lsh_recall": [], "bm25_recall": []}
            for qid in ids:
                query = wt_bench.queries.all_queries()[qid]
                gains = wt_ground_truths[qid].gains
                lsh_candidates = prefilter.candidate_tables(query, votes=3)
                keyword_candidates = wt_bm25.search(
                    text_query_from_labels(query, wt_bench.graph),
                    k=BM25_CANDIDATES,
                ).table_ids()
                lsh_results = engine.search(
                    query, k=K_TAIL, candidates=lsh_candidates
                )
                bm25_results = engine.search(
                    query, k=K_TAIL, candidates=keyword_candidates
                )
                metrics["lsh_ndcg"].append(
                    ndcg_at_k(lsh_results.table_ids(K_HEAD), gains, K_HEAD)
                )
                metrics["bm25_ndcg"].append(
                    ndcg_at_k(bm25_results.table_ids(K_HEAD), gains, K_HEAD)
                )
                metrics["lsh_recall"].append(
                    recall_at_k(lsh_results.table_ids(K_TAIL), gains, K_TAIL)
                )
                metrics["bm25_recall"].append(
                    recall_at_k(bm25_results.table_ids(K_TAIL), gains,
                                K_TAIL)
                )
            means = {name: summarize(vals)["mean"]
                     for name, vals in metrics.items()}
            results[subset] = means
            print(f"  {subset}:")
            print(f"    NDCG@{K_HEAD}:    LSH={means['lsh_ndcg']:.3f}   "
                  f"BM25={means['bm25_ndcg']:.3f}")
            recall_drop = (
                (1.0 - means["bm25_recall"] / means["lsh_recall"]) * 100
                if means["lsh_recall"] else 0.0
            )
            print(f"    recall@{K_TAIL}: LSH={means['lsh_recall']:.3f}   "
                  f"BM25={means['bm25_recall']:.3f}   "
                  f"(drop {recall_drop:+.1f}%)")
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for subset, means in results.items():
        # Keyword prefiltering must not beat the LSEI on head quality...
        assert means["bm25_ndcg"] <= means["lsh_ndcg"] + 0.02, subset
        # ...and loses relevant match-free tables in the long tail.
        assert means["bm25_recall"] <= means["lsh_recall"] + 0.02, subset

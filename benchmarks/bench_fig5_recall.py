"""Figure 5: recall@100/@200 and the BM25-complemented variants.

Regenerates the paper's Figure 5: recall of BM25, STST, STSE, and the
complemented STSTC/STSEC (top 50 % of each method's ranking merged).

Paper shape to reproduce:
* semantic search and BM25 retrieve largely disjoint relevant tables;
* STSTC/STSEC recall exceeds BM25's (the headline "up to 5.4x recall"
  combines both signals);
* 5-tuple queries have lower recall than 1-tuple (over-specialization).
"""

import pytest

from benchmarks.conftest import print_header
from repro.baselines import text_query_from_labels
from repro.eval import recall_at_k, summarize


def _recalls(bench, thetis, bm25, truths, query_ids, k):
    by_system = {n: [] for n in ("BM25", "STST", "STSE", "STSTC", "STSEC")}
    differences = {"STST": [], "STSE": []}
    for qid in query_ids:
        query = bench.queries.all_queries()[qid]
        gains = truths[qid].gains
        keyword = bm25.search(
            text_query_from_labels(query, bench.graph), k=k
        )
        types = thetis.search(query, k=k, method="types")
        embeds = thetis.search(query, k=k, method="embeddings")
        results = {
            "BM25": keyword,
            "STST": types,
            "STSE": embeds,
            "STSTC": types.complement(keyword, k=k),
            "STSEC": embeds.complement(keyword, k=k),
        }
        for name, result in results.items():
            by_system[name].append(
                recall_at_k(result.table_ids(k), gains, k)
            )
        differences["STST"].append(len(types.difference(keyword, k=100)))
        differences["STSE"].append(len(embeds.difference(keyword, k=100)))
    return by_system, differences


@pytest.mark.parametrize("k", [100, 200])
def test_fig5_recall(wt_bench, wt_thetis, wt_bm25, wt_ground_truths,
                     benchmark, k):
    def run():
        print_header(f"Figure 5 - recall@{k}")
        summaries = {}
        for subset, ids in (
            ("1-tuple", list(wt_bench.queries.one_tuple)),
            ("5-tuple", list(wt_bench.queries.five_tuple)),
        ):
            by_system, differences = _recalls(
                wt_bench, wt_thetis, wt_bm25, wt_ground_truths, ids, k
            )
            print(f"  {subset} queries:")
            from repro.eval import box_plot_figure

            print(box_plot_figure(by_system))
            for name, values in by_system.items():
                s = summarize(values)
                print(f"    {name:<6} mean={s['mean']:.3f} "
                      f"median={s['median']:.3f}")
            med_diff = {
                name: summarize(vals)["median"]
                for name, vals in differences.items()
            }
            print(f"    median top-100 result-set difference vs BM25: "
                  f"STST={med_diff['STST']:.0f}  STSE={med_diff['STSE']:.0f}")
            summaries[subset] = (by_system, med_diff)
        return summaries

    summaries = benchmark.pedantic(run, rounds=1, iterations=1)
    for subset, (by_system, med_diff) in summaries.items():
        bm25_mean = summarize(by_system["BM25"])["mean"]
        merged_mean = summarize(by_system["STSTC"])["mean"]
        # The complement must at least hold BM25's recall (the paper
        # reports large gains; at bench scale we require no regression).
        assert merged_mean >= 0.85 * bm25_mean, subset
        # Disjointness: semantic search surfaces many tables BM25 missed.
        assert med_diff["STST"] > 20
        assert med_diff["STSE"] > 20

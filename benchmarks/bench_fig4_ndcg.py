"""Figure 4: NDCG@10 of semantic search vs baselines and LSH configs.

Regenerates the paper's Figure 4 panels: brute-force semantic search
with types (STST) and embeddings (STSE), the three LSH prefilter
configurations per similarity, BM25 on text queries, and Starmie-style
union search, on both 1-tuple and 5-tuple queries.

Paper shape to reproduce:
* STST/STSE achieve NDCG comparable to BM25;
* every LSH configuration matches its brute-force counterpart;
* union search scores clearly lower (relevant tables are often not
  unionable).
"""

import pytest

from benchmarks.conftest import print_header
from repro.baselines import UnionTableSearch, text_query_from_labels
from repro.eval import ExperimentRunner
from repro.lsh import LSHConfig

K = 10
LSH_CONFIGS = (LSHConfig(32, 8), LSHConfig(128, 8), LSHConfig(30, 10))


def _systems(bench, thetis, bm25):
    """All Figure 4 systems as (query, k) -> ResultSet callables."""
    systems = {
        "STST": lambda q, k: thetis.search(q, k=k, method="types"),
        "STSE": lambda q, k: thetis.search(q, k=k, method="embeddings"),
        "BM25text": lambda q, k: bm25.search(
            text_query_from_labels(q, bench.graph), k=k
        ),
    }
    for config in LSH_CONFIGS:
        for method, tag in (("types", "T"), ("embeddings", "E")):
            label = f"{tag}{config}"
            systems[label] = (
                lambda q, k, m=method, c=config: thetis.search(
                    q, k=k, method=m, use_lsh=True, lsh_config=c
                )
            )
    union = UnionTableSearch(
        bench.lake, bench.mapping, store=thetis.embeddings,
        column_encoder="embeddings",
    )
    systems["Starmie-union"] = lambda q, k: union.search(q, k=k)
    return systems


@pytest.fixture(scope="module")
def fig4_reports(wt_bench, wt_thetis, wt_bm25, wt_ground_truths):
    systems = _systems(wt_bench, wt_thetis, wt_bm25)
    runner = ExperimentRunner(wt_bench.queries.all_queries(),
                              wt_ground_truths)
    reports = {}
    for subset, ids in (
        ("1-tuple", list(wt_bench.queries.one_tuple)),
        ("5-tuple", list(wt_bench.queries.five_tuple)),
    ):
        reports[subset] = {
            name: runner.run_system(f"{name} [{subset}]", system, K, ids)
            for name, system in systems.items()
        }
    return reports


def test_fig4_report(fig4_reports, benchmark):
    from repro.eval import box_plot_figure

    def report():
        for subset, by_system in fig4_reports.items():
            print_header(f"Figure 4 - NDCG@{K} on {subset} queries")
            for name, rep in by_system.items():
                print("  " + rep.format_row())
            series = {
                name: [o.ndcg for o in rep.outcomes]
                for name, rep in by_system.items()
            }
            print()
            print(box_plot_figure(series, title=f"  NDCG@{K} ({subset})"))
        return fig4_reports

    reports = benchmark.pedantic(report, rounds=1, iterations=1)
    # Keep the headline shape assertions inside the benchmarked test so
    # they run under --benchmark-only as well.
    for subset, by_system in reports.items():
        stst = by_system["STST"].ndcg_summary()["mean"]
        stse = by_system["STSE"].ndcg_summary()["mean"]
        bm25 = by_system["BM25text"].ndcg_summary()["mean"]
        union = by_system["Starmie-union"].ndcg_summary()["mean"]
        assert stst > 0.3 and stse > 0.2
        assert stst > 0.5 * bm25
        assert union < 0.75 * stst
        for config in LSH_CONFIGS:
            for method, tag in (("STST", "T"), ("STSE", "E")):
                brute = by_system[method].ndcg_summary()["mean"]
                lsh = by_system[f"{tag}{config}"].ndcg_summary()["mean"]
                assert lsh >= 0.6 * brute, (subset, tag, str(config))


@pytest.mark.parametrize("subset", ["1-tuple", "5-tuple"])
def test_fig4_semantic_search_competitive_with_bm25(fig4_reports, subset):
    """Panel (a)/(g): STST/STSE in the same NDCG range as BM25."""
    by_system = fig4_reports[subset]
    bm25 = by_system["BM25text"].ndcg_summary()["mean"]
    stst = by_system["STST"].ndcg_summary()["mean"]
    stse = by_system["STSE"].ndcg_summary()["mean"]
    assert stst > 0.3
    assert stse > 0.2
    # "Similar ranking quality": within a factor-2 band of BM25.
    assert stst > 0.5 * bm25


@pytest.mark.parametrize("subset", ["1-tuple", "5-tuple"])
@pytest.mark.parametrize("config", LSH_CONFIGS, ids=str)
def test_fig4_lsh_preserves_ndcg(fig4_reports, subset, config):
    """Panels (b,c,e,f,...): LSH configs ~ brute force quality."""
    by_system = fig4_reports[subset]
    for method, tag in (("STST", "T"), ("STSE", "E")):
        brute = by_system[method].ndcg_summary()["mean"]
        lsh = by_system[f"{tag}{config}"].ndcg_summary()["mean"]
        assert lsh >= 0.6 * brute, (
            f"{tag}{config} on {subset}: NDCG {lsh:.3f} vs brute {brute:.3f}"
        )


@pytest.mark.parametrize("subset", ["1-tuple", "5-tuple"])
def test_fig4_union_search_much_worse(fig4_reports, subset):
    """Union search cannot rank by topical relevance (paper: ~1000x)."""
    by_system = fig4_reports[subset]
    stst = by_system["STST"].ndcg_summary()["mean"]
    union = by_system["Starmie-union"].ndcg_summary()["mean"]
    assert union < 0.75 * stst

"""Table 4: search-space reduction per LSH configuration and votes.

Regenerates the paper's Table 4: the percentage of the corpus pruned by
each LSEI configuration at vote thresholds 1 and 3.

Paper shape to reproduce:
* type-LSH prunes a large majority of the corpus (61-90 %);
* embedding-LSH prunes much less at 1 vote (0.01-35 %), far more at 3;
* more votes monotonically increase reduction;
* (30, 10) achieves the highest reduction among the three configs.
"""

import pytest

from benchmarks.conftest import print_header
from repro.eval import summarize
from repro.lsh import LSHConfig

LSH_CONFIGS = (LSHConfig(32, 8), LSHConfig(128, 8), LSHConfig(30, 10))


def _mean_reduction(thetis, total, queries, method, config, votes):
    prefilter = thetis.prefilter(method, config)
    values = []
    for query in queries:
        candidates = prefilter.candidate_tables(query, votes=votes)
        values.append(prefilter.reduction(total, candidates))
    return summarize(values)["mean"]


def test_table4_reduction(wt_bench, wt_thetis, benchmark):
    total = len(wt_bench.lake)

    def run():
        rows = {}
        for subset, queries in (
            ("1-tuple", list(wt_bench.queries.one_tuple.values())),
            ("5-tuple", list(wt_bench.queries.five_tuple.values())),
        ):
            row = {}
            for votes in (1, 3):
                for config in LSH_CONFIGS:
                    for method, tag in (("types", "T"), ("embeddings", "E")):
                        row[f"{tag}{config} v{votes}"] = _mean_reduction(
                            wt_thetis, total, queries, method, config, votes
                        )
            rows[subset] = row
        print_header("Table 4 - mean search-space reduction")
        for subset, row in rows.items():
            print(f"  {subset} queries:")
            for name, value in row.items():
                print(f"    {name:<18} {value * 100:6.1f}%")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    best = LSHConfig(30, 10)
    for subset, row in rows.items():
        # Types prune a large share of the corpus.
        assert row[f"T{best} v1"] > 0.4, subset
        # Votes monotonically increase reduction.
        for config in LSH_CONFIGS:
            for tag in ("T", "E"):
                assert row[f"{tag}{config} v3"] >= \
                    row[f"{tag}{config} v1"] - 1e-9
        # Types prune more than embeddings at 1 vote (paper Table 4).
        assert row[f"T{best} v1"] >= row[f"E{best} v1"]
        # (30, 10) is the best or near-best type configuration.
        t3010 = row[f"T{best} v1"]
        assert all(
            t3010 >= row[f"T{c} v1"] - 0.1 for c in LSH_CONFIGS
        ), subset

"""Section 7.5 (text): search quality under a realistic noisy linker.

The paper replaces WT2015's gold entity links with predictions from a
state-of-the-art linker (EMBLOOKUP, F1 = 0.21, coverage 20.3%) and
shows Thetis still returns meaningful results - better than the 40%
gold-coverage cap of Figure 6.  This bench corrupts the gold mapping
with the same recall/precision profile and compares.
"""

import pytest

from benchmarks.conftest import print_header
from repro import Thetis
from repro.eval import ndcg_at_k, summarize
from repro.linking import NoisyLinker

K = 10


def _mean_ndcg(bench, thetis, truths, subset):
    scores = []
    for qid in list(getattr(bench.queries, subset)):
        query = bench.queries.all_queries()[qid]
        results = thetis.search(query, k=K)
        scores.append(ndcg_at_k(results.table_ids(K), truths[qid].gains, K))
    return summarize(scores)["mean"]


def test_sec75_noisy_linking(wt_bench, wt_thetis, wt_ground_truths,
                             benchmark):
    def run():
        print_header("Section 7.5 - noisy entity linker")
        linker = NoisyLinker(wt_bench.graph, recall=0.6, precision=0.35,
                             seed=3)
        noisy_mapping = linker.corrupt(wt_bench.mapping)
        f1 = linker.f1(wt_bench.mapping, noisy_mapping)
        noisy_thetis = Thetis(wt_bench.lake, wt_bench.graph, noisy_mapping)
        rows = {}
        for subset in ("one_tuple", "five_tuple"):
            gold = _mean_ndcg(wt_bench, wt_thetis, wt_ground_truths, subset)
            noisy = _mean_ndcg(wt_bench, noisy_thetis, wt_ground_truths,
                               subset)
            rows[subset] = (gold, noisy)
            print(f"  {subset:<10} gold links NDCG={gold:.3f}   "
                  f"noisy linker NDCG={noisy:.3f}")
        print(f"  simulated linker F1 = {f1:.2f} "
              f"(paper's EMBLOOKUP: 0.21)")
        return rows, f1

    (rows, f1) = benchmark.pedantic(run, rounds=1, iterations=1)
    assert f1 < 0.5  # genuinely poor linker
    for subset, (gold, noisy) in rows.items():
        # Meaningful results survive the noise (paper: NDCG 0.14-0.29
        # at F1=0.21, i.e. a large fraction of gold-link quality).
        assert noisy > 0.25 * gold, subset

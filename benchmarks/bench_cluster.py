"""Cluster scatter-gather scaling and fail-over benchmark.

Boots whole in-process fleets — a coordinator plus N workers, each an
independent vectorized :class:`~repro.system.Thetis` over the same
corpus — and measures:

* **scaling** — closed-loop ``/search`` throughput at N in {1, 2, 4}
  workers.  Sharded scoring cuts per-worker work to ~1/N of the
  corpus, so throughput should rise with the fleet wherever the host
  actually has cores to run the workers on; the scaling *floors*
  (>=1.6x at 2 workers, >=2.5x at 4) are therefore asserted only when
  ``os.cpu_count()`` provides at least that many cores, while parity
  and zero-loss invariants are asserted unconditionally.
* **fail-over** — a worker is killed abruptly mid-load; the bench
  records the crash-window p95, demands zero non-2xx responses (a
  degraded 200 is the contract; a 500 is a bug), counts the explicit
  ``"degraded": true`` responses, and requires convergence back to
  clean responses after the heartbeat loop promotes replicas.

Results land in ``BENCH_serve.json`` under ``"cluster"``.
"""

import http.client
import json
import os
import threading
import time

from benchmarks.conftest import print_header
from repro import Thetis
from repro.cluster import ClusterConfig, ClusterHarness
from repro.serve import LoadGenerator
from repro.serve.metrics import percentile_of

#: Closed-loop request volume per fleet size (full / --quick).
TOTAL_REQUESTS = 120
QUICK_TOTAL_REQUESTS = 36
CONCURRENCY = 4

#: Fleet sizes of the scaling sweep.
FLEET_SIZES = (1, 2, 4)

#: Throughput floors relative to the 1-worker fleet, enforced only
#: when the host has at least that many cores.
SCALING_FLOORS = {2: 1.6, 4: 2.5}

#: Fail-over drive parameters (full / --quick).
FAILOVER_THREADS = 3
FAILOVER_TAIL_SECONDS = 1.0

REPORT_PATH = "BENCH_serve.json"


def _query_payloads(bench, k=10):
    payloads = []
    for queries in (bench.queries.one_tuple, bench.queries.five_tuple):
        for query in queries.values():
            payloads.append({
                "tuples": [list(t) for t in query.tuples],
                "k": k,
            })
    return payloads


def _make_factory(bench):
    def factory(index):
        return Thetis(
            bench.lake, bench.graph, bench.mapping,
            engine_kind="vectorized",
        )

    return factory


def _post_search(port, payload, timeout=120.0):
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=timeout)
    try:
        connection.request(
            "POST", "/search", body=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _assert_parity(port, reference, payloads):
    """Coordinator responses must equal direct search bit-for-bit."""
    from repro.core.query import Query

    for payload in payloads[:3]:
        status, body = _post_search(port, payload)
        assert status == 200, (status, body)
        query = Query(tuple(tuple(t) for t in payload["tuples"]))
        direct = reference.search(query, k=payload["k"])
        served = [(r["table_id"], r["score"]) for r in body["results"]]
        expected = [(s.table_id, s.score) for s in direct]
        assert served == expected, (
            f"cluster ranking diverged: {served[:3]} vs {expected[:3]}"
        )


# ----------------------------------------------------------------------
# Scaling sweep
# ----------------------------------------------------------------------
def test_cluster_scaling(wt_bench, benchmark, request):
    quick = request.config.getoption("--quick")
    total = QUICK_TOTAL_REQUESTS if quick else TOTAL_REQUESTS

    reference = Thetis(
        wt_bench.lake, wt_bench.graph, wt_bench.mapping,
        engine_kind="vectorized",
    )
    payloads = _query_payloads(wt_bench)
    factory = _make_factory(wt_bench)
    config = ClusterConfig(heartbeat_interval=0.5)

    def run():
        reports = {}
        for fleet_size in FLEET_SIZES:
            with ClusterHarness(factory, workers=fleet_size,
                                config=config) as fleet:
                _assert_parity(fleet.port, reference, payloads)
                generator = LoadGenerator(
                    "127.0.0.1", fleet.port, payloads, timeout=120
                )
                reports[fleet_size] = generator.run_closed(
                    concurrency=CONCURRENCY, total_requests=total
                )
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    reference.close()

    base = reports[FLEET_SIZES[0]].throughput
    speedups = {
        fleet_size: (reports[fleet_size].throughput / base if base else 0.0)
        for fleet_size in FLEET_SIZES
    }
    cores = os.cpu_count() or 1

    print_header(
        f"Cluster scaling (closed loop, {CONCURRENCY} clients, "
        f"{total} requests/fleet, {cores} cores)"
    )
    for fleet_size in FLEET_SIZES:
        report = reports[fleet_size]
        print(f"  {fleet_size} worker(s): "
              f"{report.throughput:8.1f} req/s   "
              f"p95 {report.percentile_ms(0.95):8.1f} ms   "
              f"({speedups[fleet_size]:.2f}x vs 1 worker)")

    scaling = {
        str(fleet_size): dict(
            reports[fleet_size].to_json(),
            speedup_vs_one_worker=speedups[fleet_size],
        )
        for fleet_size in FLEET_SIZES
    }
    _merge_report("scaling", {
        "corpus_tables": len(wt_bench.lake),
        "concurrency": CONCURRENCY,
        "requests_per_fleet": total,
        "host_cores": cores,
        "fleets": scaling,
    })

    # Correctness invariants hold on any host: every request of every
    # fleet completes OK (degraded 200s would still count as OK, but
    # the parity pre-check already proved responses are clean).
    for fleet_size in FLEET_SIZES:
        report = reports[fleet_size]
        assert report.sent == total, report.to_json()
        assert report.ok == total, (
            f"{fleet_size}-worker fleet lost requests: {report.to_json()}"
        )
    # Scaling floors only where the host can physically run the fleet
    # in parallel (CI containers are often single-core; the numbers
    # above are still recorded for inspection).
    for fleet_size, floor in SCALING_FLOORS.items():
        if cores >= fleet_size:
            assert speedups[fleet_size] >= floor, (
                f"{fleet_size}-worker speedup {speedups[fleet_size]:.2f}x "
                f"below the {floor}x floor on a {cores}-core host"
            )
        else:
            print(f"  ({fleet_size}-worker floor {floor}x not enforced: "
                  f"only {cores} core(s))")


# ----------------------------------------------------------------------
# Kill-a-worker fail-over
# ----------------------------------------------------------------------
def _drive(port, payloads, stop, out):
    """Closed-loop driver recording (status, degraded, seconds)."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    samples = []
    index = 0
    try:
        while not stop.is_set():
            payload = payloads[index % len(payloads)]
            index += 1
            start = time.perf_counter()
            try:
                connection.request(
                    "POST", "/search",
                    body=json.dumps(payload).encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                body = json.loads(response.read())
            except (OSError, http.client.HTTPException):
                connection.close()
                connection = http.client.HTTPConnection(
                    "127.0.0.1", port, timeout=120
                )
                continue
            samples.append((
                response.status,
                bool(body.get("degraded")),
                time.perf_counter() - start,
            ))
    finally:
        connection.close()
    out.append(samples)


def test_cluster_failover(wt_bench, benchmark, request):
    payloads = _query_payloads(wt_bench)
    factory = _make_factory(wt_bench)
    config = ClusterConfig(heartbeat_interval=0.2, dead_after=2)

    def run():
        stop = threading.Event()
        collected = []
        with ClusterHarness(factory, workers=3, config=config) as fleet:
            drivers = [
                threading.Thread(
                    target=_drive,
                    args=(fleet.port, payloads, stop, collected),
                    daemon=True,
                )
                for _ in range(FAILOVER_THREADS)
            ]
            for driver in drivers:
                driver.start()
            time.sleep(FAILOVER_TAIL_SECONDS)  # steady state
            fleet.crash_worker(0)
            # Wait until the fleet answers clean again (replica
            # promotion), then keep load running a little longer.
            deadline = time.monotonic() + 60
            recovered = False
            while time.monotonic() < deadline:
                status, body = _post_search(fleet.port, payloads[0])
                if status == 200 and not body["degraded"]:
                    recovered = True
                    break
                time.sleep(0.1)
            time.sleep(FAILOVER_TAIL_SECONDS)
            stop.set()
            for driver in drivers:
                driver.join(timeout=120)
        return collected, recovered

    collected, recovered = benchmark.pedantic(run, rounds=1, iterations=1)

    samples = [sample for batch in collected for sample in batch]
    statuses = [status for status, _, _ in samples]
    degraded = sum(1 for _, flag, _ in samples if flag)
    latencies = [seconds for status, _, seconds in samples if status == 200]
    non_ok = [status for status in statuses if status != 200]

    print_header(
        f"Cluster fail-over ({FAILOVER_THREADS} drivers, kill 1 of 3 "
        f"workers mid-load)"
    )
    print(f"  responses     {len(samples)} "
          f"(degraded: {degraded}, non-200: {len(non_ok)})")
    print(f"  p50           {percentile_of(latencies, 0.50) * 1e3:8.1f} ms")
    print(f"  p95           {percentile_of(latencies, 0.95) * 1e3:8.1f} ms")
    print(f"  recovered     {recovered}")

    _merge_report("failover", {
        "drivers": FAILOVER_THREADS,
        "responses": len(samples),
        "degraded_responses": degraded,
        "non_200": len(non_ok),
        "p50_ms": percentile_of(latencies, 0.50) * 1e3,
        "p95_ms": percentile_of(latencies, 0.95) * 1e3,
        "recovered": recovered,
    })

    assert samples, "no load completed"
    # The fail-over contract: the front door never 500s; the crash
    # window is visible as explicit degraded 200s instead.
    assert not non_ok, f"non-200 responses during fail-over: {non_ok[:5]}"
    assert recovered, "fleet never converged back to clean responses"


def _merge_report(key, payload):
    """Read-modify-write ``BENCH_serve.json``'s ``cluster`` block."""
    try:
        with open(REPORT_PATH, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError):
        document = {}
    document.setdefault("cluster", {})[key] = payload
    with open(REPORT_PATH, "w", encoding="utf-8") as out:
        json.dump(document, out, indent=2)
    print(f"  report -> {REPORT_PATH} (cluster.{key})")
